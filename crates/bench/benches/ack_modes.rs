//! Ablation A timing: global vs local acknowledgment on circuits where
//! the policies diverge.

use criterion::{criterion_group, criterion_main, Criterion};
use simap_bench::benchmark_sg;
use simap_bench::reexports::{decompose, AckMode, DecomposeConfig};

fn bench_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("ack_modes");
    group.sample_size(10);
    for name in ["hazard", "ebergen", "chu150"] {
        let sg = benchmark_sg(name);
        for (label, mode) in [("global", AckMode::Global), ("local", AckMode::Local)] {
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    let mut config = DecomposeConfig::with_limit(2);
                    config.ack_mode = mode;
                    decompose(std::hint::black_box(&sg), &config)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ack);
criterion_main!(benches);
