//! Throughput of `simap serve` with a warm elaboration cache: wall time
//! for a burst of concurrent synthesize requests against a server with
//! 1 worker vs several. The per-request flow cost is identical (the
//! cache is warm), so the jobs=N column shows how far the bounded queue
//! + worker pool actually parallelizes the service.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simap_serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

// Mid-size circuits whose per-request flow cost (tens of ms in release)
// dwarfs connection handling, so the jobs=1 vs jobs=N ratio measures the
// worker pool rather than the accept loop.
const BENCHES: [&str; 2] = ["master-read", "trimos-send"];
const CLIENTS: usize = 8;

fn request(addr: SocketAddr, name: &str) {
    let body = format!("{{\"bench\":\"{name}\"}}");
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /synthesize HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    assert!(response.starts_with(b"HTTP/1.1 200"), "request failed");
}

fn start(jobs: usize) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        queue_limit: 256,
        ..ServeConfig::default()
    })
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        let (handle, join) = start(jobs);
        let addr = handle.addr();
        // Warm the shared engine: every benchmark elaborated once.
        for name in BENCHES {
            request(addr, name);
        }
        // One iteration = a burst of CLIENTS concurrent clients, each
        // issuing one warm-cache request (requests/sec = CLIENTS / time).
        group.bench_with_input(BenchmarkId::new("warm_burst8", jobs), &jobs, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for i in 0..CLIENTS {
                        scope.spawn(move || request(addr, BENCHES[i % BENCHES.len()]));
                    }
                });
            });
        });
        handle.shutdown();
        join.join().expect("server thread").expect("clean shutdown");
    }
    group.finish();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
