//! Throughput of the parallel `Batch` executor: the same benchmark
//! subset driven at jobs=1 vs jobs=N (N = available cores, capped), plus
//! a warm-cache column showing what the memoized elaboration saves when a
//! long-lived `Engine` is reused, and a packed-vs-explicit column
//! isolating the reachability engine itself on the largest registry
//! specification. Results are byte-identical across the columns — only
//! the wall clock moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simap_bench::reexports::{
    benchmark, elaborate_with, Config, Engine, ReachConfig, ReachStrategy,
};

/// Medium-cost circuits, heaviest first (the work queue hands out names
/// in order, so a descending sort balances the pool): enough per-row work
/// for the pool to beat its spawn overhead, no single row dominating the
/// critical path (which is why `mr0` is excluded), small enough for a
/// bench harness.
const SUITE: [&str; 8] =
    ["tsend-bm", "mr1", "trimos-send", "mmu", "master-read", "pe-rcv-ifc", "nak-pa", "seq4"];

fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 8)
}

fn config() -> Config {
    // Verification off: the bench tracks synthesis throughput, and the
    // verifier's composed-state exploration would dominate the timing.
    Config::builder().verify(false).build().expect("valid config")
}

fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/cold");
    group.sample_size(10);
    for jobs in [1, worker_count()] {
        group.bench_function(BenchmarkId::new("jobs", jobs), |b| {
            b.iter(|| {
                // A fresh engine per run: every elaboration is computed,
                // so the column isolates the worker-pool speedup.
                let engine = Engine::new(config());
                engine.batch(SUITE).limits([2]).jobs(jobs).run().expect("batch")
            })
        });
    }
    group.finish();
}

fn bench_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/warm_cache");
    group.sample_size(10);
    let jobs = worker_count();
    let engine = Engine::new(config());
    // Prime the elaboration cache once; every measured run then skips
    // STG→state-graph reachability entirely.
    engine.batch(SUITE).limits([2]).run().expect("warmup batch");
    group.bench_function(BenchmarkId::new("jobs", jobs), |b| {
        b.iter(|| engine.batch(SUITE).limits([2]).jobs(jobs).run().expect("batch"))
    });
    group.finish();
}

/// The memoization win in isolation: elaborating the widest Table 1
/// specifications (thousands of states) from scratch vs through a primed
/// engine cache. Unlike the pool columns this speedup is visible even on
/// a single-core host.
fn bench_elaborate(c: &mut Criterion) {
    let wide = ["mr0", "vbe10b", "wrdatab", "mmu"];
    let mut group = c.benchmark_group("elaborate/cold");
    group.sample_size(10);
    group.bench_function("wide4", |b| {
        b.iter(|| {
            let engine = Engine::new(config());
            for name in wide {
                engine.benchmark(name).elaborate().expect("elaborates");
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("elaborate/cached");
    group.sample_size(10);
    let engine = Engine::new(config());
    for name in wide {
        engine.benchmark(name).elaborate().expect("elaborates");
    }
    group.bench_function("wide4", |b| {
        b.iter(|| {
            for name in wide {
                engine.benchmark(name).elaborate().expect("cache hit");
            }
        })
    });
    group.finish();
}

/// The reachability engine itself, isolated from the rest of the flow:
/// cold elaboration of `mr0` — the largest registry specification (4096
/// states, 20800 arcs) — under the packed-state engine vs the explicit
/// oracle vs the symbolic BDD engine. The packed arena + mask-compiled
/// token game is the whole packed-vs-explicit difference (acceptance bar
/// 2x or better); the symbolic column prices the BDD safety/count
/// pre-pass that buys the beyond-StateLimit workload.
fn bench_strategy(c: &mut Criterion) {
    let largest = "mr0";
    let stg = benchmark(largest).expect("known benchmark");
    let mut group = c.benchmark_group("elaborate/strategy");
    group.sample_size(10);
    for strategy in [ReachStrategy::Packed, ReachStrategy::Explicit, ReachStrategy::Symbolic] {
        let config = ReachConfig { strategy, ..ReachConfig::default() };
        group.bench_function(BenchmarkId::new(strategy.to_string(), largest), |b| {
            b.iter(|| elaborate_with(std::hint::black_box(&stg), &config).expect("elaborates"))
        });
    }
    group.finish();
}

/// The symbolic engine on its home turf: exact counting of a state space
/// (4^14 ≈ 268M markings) no enumerative engine can touch.
fn bench_symbolic_count(c: &mut Criterion) {
    let parts: Vec<simap_bench::reexports::Stg> =
        (0..14).map(|_| simap_bench::reexports::patterns::sequencer(2, None)).collect();
    let grid = simap_bench::reexports::patterns::parallel("grid", &parts);
    let config = ReachConfig::default();
    let mut group = c.benchmark_group("elaborate/symbolic-count");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("grid14"), |b| {
        b.iter(|| {
            let sym = simap_bench::reexports::reach_symbolic(std::hint::black_box(&grid), &config)
                .expect("counts");
            assert_eq!(sym.states, 4u64.pow(14));
            sym.states
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold,
    bench_warm,
    bench_elaborate,
    bench_strategy,
    bench_symbolic_count
);
criterion_main!(benches);
