//! Criterion timing for the Table 1 flow on representative circuits
//! (small / medium / concurrency-heavy). The full table is produced by
//! the `table1` binary; this bench tracks the runtime of its core loop.

use criterion::{criterion_group, criterion_main, Criterion};
use simap_bench::benchmark_sg;
use simap_bench::reexports::{Config, Synthesis};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_flow");
    group.sample_size(10);
    let config = Config::builder().verify(false).build().expect("valid config");
    for name in ["hazard", "dff", "chu150", "nowick", "rdft", "vbe5b"] {
        let sg = benchmark_sg(name);
        group.bench_function(name, |b| {
            b.iter(|| {
                Synthesis::from_state_graph(std::hint::black_box(&sg).clone())
                    .config(&config)
                    .run()
                    .expect("flow")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
