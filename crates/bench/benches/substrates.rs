//! Micro-benchmarks of the substrates: STG reachability, monotonous-cover
//! synthesis, two-level minimization, kernel extraction and SI
//! verification. These are the building blocks whose cost dominates the
//! Table 1 runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use simap_bench::benchmark_sg;
use simap_bench::reexports::{build_circuit, elaborate, patterns, synthesize_mc};
use simap_boolean::{kernels, Cover, Cube, Literal, MinimizeProblem};
use simap_netlist::{verify_speed_independence, VerifyConfig};

fn bench_reachability(c: &mut Criterion) {
    let stg = patterns::celement(6);
    c.bench_function("reachability/celement6", |b| {
        b.iter(|| elaborate(std::hint::black_box(&stg)).expect("elaborates"))
    });
}

fn bench_mc(c: &mut Criterion) {
    let sg = benchmark_sg("mr1");
    c.bench_function("mc_synthesis/mr1", |b| {
        b.iter(|| synthesize_mc(std::hint::black_box(&sg)).expect("CSC holds"))
    });
}

fn bench_minimize(c: &mut Criterion) {
    // A 10-variable split: even-parity-ish partition with don't-cares.
    let on: Vec<u64> = (0..1024u64).filter(|v| v.count_ones() % 3 == 0).collect();
    let off: Vec<u64> = (0..1024u64).filter(|v| v.count_ones() % 3 == 1).collect();
    let problem = MinimizeProblem::new(10, on, off).expect("disjoint");
    c.bench_function("minimize/10var", |b| b.iter(|| std::hint::black_box(&problem).minimize()));
}

fn bench_kernels(c: &mut Criterion) {
    let cube = |vs: &[usize]| Cube::from_literals(vs.iter().map(|&v| Literal::pos(v))).expect("ok");
    let cover = Cover::from_cubes([
        cube(&[0, 3, 5]),
        cube(&[0, 4, 5]),
        cube(&[1, 3, 5]),
        cube(&[1, 4, 5]),
        cube(&[2, 3, 5]),
        cube(&[2, 4, 5]),
        cube(&[6]),
        cube(&[0, 7]),
        cube(&[1, 7]),
    ]);
    c.bench_function("kernels/9cube", |b| b.iter(|| kernels(std::hint::black_box(&cover))));
}

fn bench_verify(c: &mut Criterion) {
    let sg = benchmark_sg("chu150");
    let mc = synthesize_mc(&sg).expect("CSC holds");
    let circuit = build_circuit(&sg, &mc);
    c.bench_function("si_verify/chu150", |b| {
        b.iter(|| {
            verify_speed_independence(std::hint::black_box(&circuit), &sg, &VerifyConfig::default())
                .expect("SI")
        })
    });
}

criterion_group!(
    benches,
    bench_reachability,
    bench_mc,
    bench_minimize,
    bench_kernels,
    bench_verify
);
criterion_main!(benches);
