//! Overhead of the staged `Synthesis` pipeline over the classic one-shot
//! `run_flow` entry point, on three Table 1 circuits. The pipeline is a
//! reorganization of the same flow — staged artifacts are moved, not
//! recomputed — so the two columns must coincide up to noise.

#![allow(deprecated)] // run_flow is the deprecated baseline under test

use criterion::{criterion_group, criterion_main, Criterion};
use simap_bench::benchmark_sg;
use simap_bench::reexports::{run_flow, Config, FlowConfig, Synthesis};

const CIRCUITS: [&str; 3] = ["hazard", "dff", "chu150"];

fn bench_one_shot(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/one_shot_run_flow");
    group.sample_size(10);
    for name in CIRCUITS {
        let sg = benchmark_sg(name);
        group.bench_function(name, |b| {
            b.iter(|| {
                run_flow(std::hint::black_box(&sg), &FlowConfig::with_limit(2)).expect("flow")
            })
        });
    }
    group.finish();
}

fn bench_staged(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/staged_pipeline");
    group.sample_size(10);
    let config = Config::default();
    for name in CIRCUITS {
        let sg = benchmark_sg(name);
        group.bench_function(name, |b| {
            b.iter(|| {
                Synthesis::from_state_graph(std::hint::black_box(&sg).clone())
                    .config(&config)
                    .elaborate()
                    .expect("elaborates")
                    .covers()
                    .expect("CSC holds")
                    .decompose()
                    .expect("decomposes")
                    .map()
                    .verify()
                    .expect("speed-independent")
                    .into_report()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_shot, bench_staged);
criterion_main!(benches);
