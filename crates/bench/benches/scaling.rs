//! Scaling sweep (DESIGN.md §4): decomposition of k-input C-element
//! specifications (the mr0/vbe10b family) into 2-input gates as k grows.
//! Tracks the wall-clock of the full decomposition loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simap_bench::reexports::{decompose, elaborate, patterns, DecomposeConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("celement_scaling");
    group.sample_size(10);
    for k in [2usize, 3, 4, 5] {
        let stg = patterns::celement(k);
        let sg = elaborate(&stg).expect("celement elaborates");
        group.bench_with_input(BenchmarkId::from_parameter(k), &sg, |b, sg| {
            b.iter(|| decompose(std::hint::black_box(sg), &DecomposeConfig::with_limit(2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
