//! **Ablation B** (§3.3): the Property 3.1/3.2 progress filter. Compares
//! runtime and insertion counts with the filter ranking candidates versus
//! exhaustive trial in generation order.

use simap_bench::benchmark_sg;
use simap_core::{decompose, DecomposeConfig};

fn main() {
    let names = ["hazard", "chu150", "ebergen", "mr1", "sbuf-send-ctl", "trimos-send"];
    println!("{:15} | {:>20} | {:>20}", "circuit", "with filter", "without filter");
    println!("{}", "-".repeat(64));
    for name in names {
        let sg = benchmark_sg(name);
        let run = |filter: bool| {
            let mut config = DecomposeConfig::with_limit(2);
            config.use_progress_filter = filter;
            let t = std::time::Instant::now();
            let r = decompose(&sg, &config).expect("CSC holds");
            (r.implementable, r.inserted.len(), t.elapsed())
        };
        let (fi, fn_, ft) = run(true);
        let (ni, nn, nt) = run(false);
        println!(
            "{:15} | {:>6} ins={} {:>9.1?} | {:>6} ins={} {:>9.1?}",
            name,
            if fi { "ok" } else { "n.i." },
            fn_,
            ft,
            if ni { "ok" } else { "n.i." },
            nn,
            nt
        );
    }
}
