//! Regenerates **Table 1** of the paper: for each of the 32 benchmarks,
//! the initial gate-complexity histogram, the number of signals inserted
//! to reach i = 2, 3, 4 literal gates, the local-acknowledgment baseline's
//! 2-input implementability, and the non-SI vs SI decomposition cost
//! (literals / C elements).
//!
//! Usage: `table1 [--no-verify] [--quick] [name ...]`
//! `--quick` limits the run to the circuits whose state graphs have at
//! most 1500 states.

use simap_bench::reexports::Engine;
use simap_bench::{batch_rows, benchmark_sg, format_histogram, format_inserted, table1_row};
use simap_stg::benchmark_names;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let explicit: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let engine = Engine::default();

    let names: Vec<&str> = if explicit.is_empty() {
        benchmark_names().to_vec()
    } else {
        explicit.iter().map(|s| s.as_str()).collect()
    };

    println!(
        "{:15} | {:>6} | {:17} | {:>4} {:>4} {:>4} | {:>9} | {:>8} | {:>8} | {:>8}",
        "circuit",
        "states",
        "gates n=2..7",
        "i=2",
        "i=3",
        "i=4",
        "siegel-2in",
        "non-SI",
        "SI",
        "verified"
    );
    println!("{}", "-".repeat(110));

    let mut totals_non_si = (0usize, 0usize);
    let mut totals_si = (0usize, 0usize);
    let mut implemented = 0usize;
    let mut collected: Vec<simap_bench::Table1Row> = Vec::new();

    for name in names {
        let sg = benchmark_sg(name);
        if quick && sg.state_count() > 1500 {
            println!("{name:15} | {:>6} | (skipped by --quick)", sg.state_count());
            continue;
        }
        let t = std::time::Instant::now();
        let row = table1_row(&engine, name, verify);
        println!(
            "{:15} | {:>6} | {:17} | {:>4} {:>4} {:>4} | {:>9} | {:>8} | {:>8} | {:>8}  [{:.1?}]",
            row.name,
            sg.state_count(),
            format_histogram(&row.histogram),
            format_inserted(row.inserted[0]),
            format_inserted(row.inserted[1]),
            format_inserted(row.inserted[2]),
            if row.siegel_two_input { "yes" } else { "no" },
            row.non_si.to_string(),
            row.si.to_string(),
            match row.verified {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
            t.elapsed(),
        );
        collected.push(row.clone());
        totals_non_si.0 += row.non_si.literals;
        totals_non_si.1 += row.non_si.c_elements;
        totals_si.0 += row.si.literals;
        totals_si.1 += row.si.c_elements;
        if row.inserted[0].is_some() {
            implemented += 1;
        }
    }

    println!("{}", "-".repeat(110));
    if csv {
        print!("{}", simap_core::to_csv(&[2, 3, 4], &batch_rows(&collected)));
    }
    if markdown {
        print!("{}", simap_core::to_markdown(&[2, 3, 4], &batch_rows(&collected)));
    }
    println!(
        "totals: non-SI {}/{}  SI {}/{}  (area ratio {:.2}); {} circuits 2-input implementable",
        totals_non_si.0,
        totals_non_si.1,
        totals_si.0,
        totals_si.1,
        (totals_si.0 + 3 * totals_si.1) as f64
            / (totals_non_si.0 + 3 * totals_non_si.1).max(1) as f64,
        implemented,
    );
}
