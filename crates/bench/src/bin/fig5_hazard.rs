//! Regenerates **Figure 5**: the `hazard` running example's circuit
//! before and after decomposition into 2-input gates.

use simap_bench::{benchmark_sg, summarize_flow};
use simap_core::{build_circuit, synthesize_mc, Config, Synthesis};

fn main() {
    let sg = benchmark_sg("hazard");
    let mc = synthesize_mc(&sg).expect("hazard has CSC");
    println!("== before decomposition (Fig. 5a) ==");
    print!("{}", build_circuit(&sg, &mc).render());

    let verified = Synthesis::from_state_graph(sg)
        .config(&Config::default())
        .elaborate()
        .and_then(|e| e.covers())
        .and_then(|c| c.decompose())
        .map(|d| d.map())
        .and_then(|m| m.verify())
        .expect("flow");
    println!("\n== after decomposition into 2-input gates (Fig. 5b) ==");
    print!("{}", verified.circuit().render());
    println!("\n{}", summarize_flow(verified.report()));
}
