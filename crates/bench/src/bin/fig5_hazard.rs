//! Regenerates **Figure 5**: the `hazard` running example's circuit
//! before and after decomposition into 2-input gates.

use simap_bench::{benchmark_sg, summarize_flow};
use simap_core::{build_circuit, run_flow, synthesize_mc, FlowConfig};

fn main() {
    let sg = benchmark_sg("hazard");
    let mc = synthesize_mc(&sg).expect("hazard has CSC");
    println!("== before decomposition (Fig. 5a) ==");
    print!("{}", build_circuit(&sg, &mc).render());

    let report = run_flow(&sg, &FlowConfig::with_limit(2)).expect("flow");
    println!("\n== after decomposition into 2-input gates (Fig. 5b) ==");
    print!("{}", build_circuit(&report.outcome.sg, &report.outcome.mc).render());
    println!("\n{}", summarize_flow(&report));
}
