//! Regenerates **Figure 3**: the event insertion scheme. Inserts a signal
//! into a sequencer and prints how states at the entrance / inside / exit
//! of ER(x) are split, with exit events delayed until x fires.

use simap_bench::benchmark_sg;
use simap_boolean::{Cover, Cube, Literal};
use simap_core::{compute_insertion, insert_signal};
use simap_sg::SignalKind;

fn main() {
    let sg = benchmark_sg("rdft"); // the 5-signal sequencer
    let (a, b) = (0usize, 1usize);
    let f = Cover::from_cube(
        Cube::from_literals([Literal::pos(a), Literal::pos(b)]).expect("consistent"),
    );
    println!(
        "inserting x realizing f = {} into {}",
        f.display_with(|v| sg.signals()[v].name.clone()),
        sg.name()
    );
    let ins = compute_insertion(&sg, &f).expect("legal I-partition");
    let show = |label: &str, set: &simap_sg::StateSet| {
        println!(
            "  {label}: {}",
            set.iter().map(|s| sg.state_label(s)).collect::<Vec<_>>().join(", ")
        );
    };
    show("S1 (f=1)", &ins.s1);
    show("S0 (f=0)", &ins.s0);
    show("ER(x+)", &ins.er_plus);
    show("ER(x-)", &ins.er_minus);

    let new_sg = insert_signal(&sg, &ins, "x", SignalKind::Internal).expect("split");
    println!("\nA' ({} states, was {}):", new_sg.state_count(), sg.state_count());
    for s in new_sg.states() {
        let succ: Vec<String> = new_sg
            .succ(s)
            .iter()
            .map(|&(e, t)| format!("{}->{}", new_sg.event_name(e), t.0))
            .collect();
        println!("  {:10} {}", new_sg.state_label(s), succ.join(" "));
    }
}
