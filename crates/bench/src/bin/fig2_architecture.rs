//! Regenerates **Figure 2**: the standard-C architecture. Shows (a) a
//! state-holding signal implemented with set/reset cover gates and a C
//! element, and (b/c) complete covers where the C element degenerates to
//! a wire (one combinational gate).

use simap_bench::benchmark_sg;
use simap_core::{build_circuit, synthesize_mc, SignalBody};

fn main() {
    for name in ["dff", "hazard", "converta"] {
        let sg = benchmark_sg(name);
        let mc = synthesize_mc(&sg).expect("benchmark has CSC");
        println!("== {name} ==");
        for s in &mc.signals {
            let signal = &sg.signals()[s.signal.0].name;
            match &s.body {
                SignalBody::Combinational { cover, complexity } => println!(
                    "  {signal}: complete cover (C element is a wire): {} [{} lits]",
                    cover.display_with(|v| sg.signals()[v].name.clone()),
                    complexity
                ),
                SignalBody::StandardC { set, reset } => {
                    println!("  {signal}: standard-C (set/reset + C element)");
                    for c in set {
                        println!(
                            "    set   {} [{} lits]",
                            c.cover.display_with(|v| sg.signals()[v].name.clone()),
                            c.complexity
                        );
                    }
                    for c in reset {
                        println!(
                            "    reset {} [{} lits]",
                            c.cover.display_with(|v| sg.signals()[v].name.clone()),
                            c.complexity
                        );
                    }
                }
            }
        }
        println!("  netlist:");
        for line in build_circuit(&sg, &mc).render().lines() {
            println!("    {line}");
        }
        println!();
    }
}
