//! **Ablation A** (design choice, §3/Fig. 4): acknowledgment policies.
//!
//! Three policies per benchmark, 2-input target:
//! * **global** — the paper's method: any cover may acknowledge an
//!   inserted signal (sharing);
//! * **local** — the inserted signal's support is confined to the covers
//!   of the signal being decomposed (fanout stays inside one signal);
//! * **siegel** — the Siegel/De Micheli-style baseline: *syntactic* gate
//!   splitting with no state-graph insertion at all, accepted only when
//!   the split circuit happens to verify speed-independent.

use simap_bench::benchmark_sg;
use simap_core::{build_decomposed_circuit, decompose, synthesize_mc, AckMode, DecomposeConfig};
use simap_netlist::{verify_speed_independence, VerifyConfig};
use simap_stg::benchmark_names;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{:15} | {:>12} | {:>12} | {:>12}", "circuit", "global", "local", "siegel");
    println!("{}", "-".repeat(62));
    let mut ok = [0usize; 3];
    let mut rows = 0usize;
    for name in benchmark_names() {
        let sg = benchmark_sg(name);
        if quick && sg.state_count() > 1500 {
            continue;
        }
        rows += 1;
        let run = |mode: AckMode| {
            let mut config = DecomposeConfig::with_limit(2);
            config.ack_mode = mode;
            let r = decompose(&sg, &config).expect("CSC holds");
            (r.implementable, r.inserted.len())
        };
        let (gi, gn) = run(AckMode::Global);
        let (li, ln) = run(AckMode::Local);
        let siegel = synthesize_mc(&sg)
            .map(|mc| {
                let circuit = build_decomposed_circuit(&sg, &mc, 2);
                verify_speed_independence(&circuit, &sg, &VerifyConfig { max_states: 1_500_000 })
                    .is_ok()
            })
            .unwrap_or(false);
        ok[0] += usize::from(gi);
        ok[1] += usize::from(li);
        ok[2] += usize::from(siegel);
        println!(
            "{:15} | {:>8} ({}) | {:>8} ({}) | {:>12}",
            name,
            if gi { "yes" } else { "n.i." },
            gn,
            if li { "yes" } else { "n.i." },
            ln,
            if siegel { "yes" } else { "n.i." },
        );
    }
    println!("{}", "-".repeat(62));
    println!(
        "2-input implementable over {rows} circuits: global {}, local {}, siegel {}",
        ok[0], ok[1], ok[2]
    );
}
