//! Regenerates **Figure 6**: `vbe10b` (whose monotonous covers contain
//! 7-literal gates) before and after logic decomposition into 2-literal
//! gates — the paper's showcase that global acknowledgment decomposes
//! high-fanin C-element covers ("examples such as vbe10 ... have been
//! decomposed for the first time into two-input AND gates by a software
//! tool").

use simap_bench::{benchmark_sg, summarize_flow};
use simap_core::{build_circuit, synthesize_mc, Config, Synthesis};

fn main() {
    let sg = benchmark_sg("vbe10b");
    let mc = synthesize_mc(&sg).expect("vbe10b has CSC");
    println!("== before decomposition (max gate = {} literals) ==", mc.max_complexity());
    print!("{}", build_circuit(&sg, &mc).render());

    let config = Config::builder()
        .literal_limit(2)
        .verify_max_states(3_000_000)
        .build()
        .expect("valid config");
    let mapped = Synthesis::from_state_graph(sg)
        .config(&config)
        .elaborate()
        .and_then(|e| e.covers())
        .and_then(|c| c.decompose())
        .expect("flow")
        .map();
    println!(
        "\n== after decomposition into 2-literal gates (max gate = {} literals) ==",
        mapped.mc().max_complexity()
    );
    print!("{}", mapped.circuit().render());
    let verified = mapped.verify().expect("speed-independent");
    println!("\n{}", summarize_flow(verified.report()));
    for step in &verified.report().outcome.steps {
        println!("  step: {} = {} (targeting {})", step.signal, step.divisor, step.target);
    }
}
