//! Regenerates **Figure 6**: `vbe10b` (whose monotonous covers contain
//! 7-literal gates) before and after logic decomposition into 2-literal
//! gates — the paper's showcase that global acknowledgment decomposes
//! high-fanin C-element covers ("examples such as vbe10 ... have been
//! decomposed for the first time into two-input AND gates by a software
//! tool").

use simap_bench::{benchmark_sg, summarize_flow};
use simap_core::{build_circuit, run_flow, synthesize_mc, FlowConfig};
use simap_netlist::VerifyConfig;

fn main() {
    let sg = benchmark_sg("vbe10b");
    let mc = synthesize_mc(&sg).expect("vbe10b has CSC");
    println!("== before decomposition (max gate = {} literals) ==", mc.max_complexity());
    print!("{}", build_circuit(&sg, &mc).render());

    let mut config = FlowConfig::with_limit(2);
    config.verify_config = VerifyConfig { max_states: 3_000_000 };
    let report = run_flow(&sg, &config).expect("flow");
    println!(
        "\n== after decomposition into 2-literal gates (max gate = {} literals) ==",
        report.outcome.mc.max_complexity()
    );
    print!("{}", build_circuit(&report.outcome.sg, &report.outcome.mc).render());
    println!("\n{}", summarize_flow(&report));
    for step in &report.outcome.steps {
        println!("  step: {} = {} (targeting {})", step.signal, step.divisor, step.target);
    }
}
