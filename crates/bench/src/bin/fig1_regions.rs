//! Regenerates **Figure 1**: the state graph of the `hazard` running
//! example with its excitation/switching/quiescent regions, plus the
//! §3.2 divisor analysis — which decompositions of the 3-literal cube
//! cover admit a speed-independence-preserving insertion and which are
//! rejected (the paper's "illegal diamond intersection" case).

use simap_bench::benchmark_sg;
use simap_boolean::{generate_divisors, DivisorConfig};
use simap_core::{compute_insertion, insert_function, synthesize_mc};
use simap_sg::{diamonds, regions_of, Event};

fn main() {
    let sg = benchmark_sg("hazard");
    println!("== hazard state graph ({} states) ==", sg.state_count());
    for s in sg.states() {
        let succ: Vec<String> =
            sg.succ(s).iter().map(|&(e, t)| format!("{}->{}", sg.event_name(e), t.0)).collect();
        println!("  {:8} {}", sg.state_label(s), succ.join(" "));
    }

    println!("\n== regions (Fig. 1a) ==");
    for sig in sg.implementable_signals() {
        for event in [Event::rise(sig), Event::fall(sig)] {
            for r in regions_of(&sg, event) {
                let fmt = |set: &simap_sg::StateSet| {
                    set.iter().map(|s| sg.state_label(s)).collect::<Vec<_>>().join(",")
                };
                println!(
                    "  ER{}({}) = {{{}}}  SR = {{{}}}  QR = {{{}}}  triggers: {}",
                    r.index,
                    sg.event_name(event),
                    fmt(&r.er),
                    fmt(&r.sr),
                    fmt(&r.qr),
                    r.trigger_events(&sg)
                        .iter()
                        .map(|&e| sg.event_name(e))
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
    }

    println!("\n== state diamonds ==");
    for d in diamonds(&sg) {
        println!(
            "  {{{}, {}, {}, {}}} over ({}, {})",
            sg.state_label(d.s),
            sg.state_label(d.sa),
            sg.state_label(d.sb),
            sg.state_label(d.t),
            sg.event_name(d.a),
            sg.event_name(d.b)
        );
    }

    println!("\n== divisor legality for the most complex cover (Fig. 1b-d) ==");
    let mc = synthesize_mc(&sg).expect("hazard has CSC");
    let over = mc.gates_over(2);
    let (signal, event, cover, complexity) =
        over.first().expect("hazard has a >2-literal cover").clone();
    println!(
        "  target: cover of {} on signal {} = {} ({} literals)",
        sg.event_name(event),
        sg.signals()[signal.0].name,
        cover.display_with(|v| sg.signals()[v].name.clone()),
        complexity
    );
    let probe = |f: &simap_boolean::Cover| {
        let rendered = format!("{}", f.display_with(|v| sg.signals()[v].name.clone()));
        match compute_insertion(&sg, f) {
            Err(e) => println!("  divisor {rendered:12} ILLEGAL: {e}"),
            Ok(ins) => match insert_function(&sg, f, "f") {
                Err(e) => println!("  divisor {rendered:12} ILLEGAL after split: {e}"),
                Ok((new_sg, _)) => println!(
                    "  divisor {rendered:12} legal: ER(f+)={} states, ER(f-)={} states, A' has {} states",
                    ins.er_plus.count(),
                    ins.er_minus.count(),
                    new_sg.state_count()
                ),
            },
        }
    };
    for f in generate_divisors(&cover, &DivisorConfig::default()) {
        probe(&f);
    }

    // The paper's Fig. 1b case: a candidate whose insertion set intersects
    // a state diamond illegally and cannot be repaired without leaving its
    // block. Mixed-phase functions over the concurrent falling cube are
    // exactly such candidates.
    println!("\n== crafted mixed-phase candidates (the illegal case of Fig. 1b) ==");
    use simap_boolean::{Cube, Literal};
    let a = sg.signal_by_name("a").expect("signal a");
    let b = sg.signal_by_name("b").expect("signal b");
    let x = sg.signal_by_name("x").expect("signal x");
    for (na, pa, nb, pb) in
        [(a.0, false, b.0, true), (b.0, true, x.0, false), (a.0, true, x.0, false)]
    {
        let f = simap_boolean::Cover::from_cube(
            Cube::from_literals([Literal::new(na, pa), Literal::new(nb, pb)])
                .expect("consistent cube"),
        );
        probe(&f);
    }
}
