//! Regenerates **Figure 4**: decomposition of a cover c(a*) = f·g + r
//! with *global acknowledgment* — the extracted signal is acknowledged by
//! covers other than the target one (sharing), which is what lets
//! high-fanin gates decompose (§3, Fig. 4 and the mr0/vbe10b results).

use simap_bench::benchmark_sg;
use simap_core::{decompose, DecomposeConfig, SignalBody};

fn main() {
    let sg = benchmark_sg("mr1");
    let result = decompose(&sg, &DecomposeConfig::with_limit(2)).expect("mr1 has CSC");
    println!("mr1: {} insertions, implementable: {}", result.inserted.len(), result.implementable);
    for step in &result.steps {
        println!(
            "  inserted {} = {} targeting {} (excess {} -> {})",
            step.signal, step.divisor, step.target, step.excess.0, step.excess.1
        );
    }
    println!("\nwho acknowledges the inserted signals (support of each final cover):");
    let names: Vec<String> = result.sg.signals().iter().map(|s| s.name.clone()).collect();
    for s in &result.mc.signals {
        let show = |cover: &simap_boolean::Cover, label: String| {
            let supp: Vec<&str> = cover.support().iter().map(|&v| names[v].as_str()).collect();
            println!(
                "  {label:18} = {}   support: {{{}}}",
                cover.display_with(|v| names[v].clone()),
                supp.join(",")
            );
        };
        match &s.body {
            SignalBody::Combinational { cover, .. } => {
                show(cover, names[s.signal.0].clone());
            }
            SignalBody::StandardC { set, reset } => {
                for c in set {
                    show(&c.cover, format!("set({})", names[s.signal.0]));
                }
                for c in reset {
                    show(&c.cover, format!("reset({})", names[s.signal.0]));
                }
            }
        }
    }
}
