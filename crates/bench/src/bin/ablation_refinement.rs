//! **Ablation C** (design choice, §3.2/§5): the boolean refinement of
//! algebraic divisors. "The algebraic divisors are only used for a
//! preliminary choice of the function of the new signal … the
//! well-formedness conditions are then used to refine this function"; our
//! implementation realizes the refinement as the C-element-ified
//! bipartition `f ∨ (a*·⋁lits(f))`. Without it the mapper is restricted
//! to pure combinational divisors and wide C-element covers stall on the
//! acknowledgment ping-pong (§3.4's "not useful" case).

use simap_bench::benchmark_sg;
use simap_core::{decompose, DecomposeConfig};

fn main() {
    let names = ["hazard", "mmu", "mr1", "sbuf-send-ctl", "trimos-send", "tsend-bm", "vbe10b"];
    println!("{:15} | {:>22} | {:>22}", "circuit", "with refinement", "algebraic only");
    println!("{}", "-".repeat(66));
    let mut with_ok = 0;
    let mut without_ok = 0;
    for name in names {
        let sg = benchmark_sg(name);
        let run = |refine: bool| {
            let mut config = DecomposeConfig::with_limit(2);
            config.use_boolean_refinement = refine;
            let t = std::time::Instant::now();
            let r = decompose(&sg, &config).expect("CSC holds");
            (r.implementable, r.inserted.len(), t.elapsed())
        };
        let (wi, wn, wt) = run(true);
        let (ni, nn, nt) = run(false);
        with_ok += usize::from(wi);
        without_ok += usize::from(ni);
        println!(
            "{:15} | {:>7} ins={:<2} {:>8.1?} | {:>7} ins={:<2} {:>8.1?}",
            name,
            if wi { "ok" } else { "n.i." },
            wn,
            wt,
            if ni { "ok" } else { "n.i." },
            nn,
            nt
        );
    }
    println!("{}", "-".repeat(66));
    println!("2-input implementable: with refinement {with_ok}, algebraic only {without_ok}");
}
