//! # simap-bench
//!
//! Shared helpers for the table/figure harnesses that regenerate the
//! paper's evaluation (Table 1 and Figures 1–6) plus the ablations and
//! scaling sweeps described in DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simap_core::{build_decomposed_circuit, synthesize_mc, Engine, FlowReport};
use simap_netlist::verify_speed_independence;
use simap_netlist::{Cost, VerifyConfig};
use simap_sg::StateGraph;
use simap_stg::{benchmark, elaborate};

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Gate-complexity histogram of the initial MC implementation
    /// (`hist[n]` = gates of n literals).
    pub histogram: Vec<usize>,
    /// Signals inserted for i = 2, 3, 4 (`None` = not implementable).
    pub inserted: [Option<usize>; 3],
    /// Whether the Siegel/De Micheli-style baseline — syntactic gate
    /// splitting into 2-input trees with *no* state-graph insertion —
    /// yields a speed-independent circuit.
    pub siegel_two_input: bool,
    /// Non-SI `tech_decomp -a 2` cost of the initial implementation.
    pub non_si: Cost,
    /// SI decomposition cost at i = 2 (of the i=2 run; falls back to the
    /// initial implementation when n.i.).
    pub si: Cost,
    /// Final-circuit SI verification verdict at i = 2.
    pub verified: Option<bool>,
    /// Number of states of the elaborated specification.
    pub states: usize,
    /// The full flow reports for i = 2, 3, 4 (for structured emitters).
    pub reports: Vec<FlowReport>,
}

/// Elaborates a named benchmark into its state graph.
///
/// # Panics
/// Panics if the name is unknown or the specification fails to elaborate
/// (the embedded suite is machine-checked, so this indicates a build
/// error).
pub fn benchmark_sg(name: &str) -> StateGraph {
    let stg = benchmark(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    elaborate(&stg).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Computes one Table 1 row (this is the expensive full flow: three
/// literal limits plus the local-ack baseline). The engine's elaboration
/// cache makes the three limits share one reachability pass.
pub fn table1_row(engine: &Engine, name: &str, verify: bool) -> Table1Row {
    let elaborated = engine.benchmark(name).elaborate().unwrap_or_else(|e| panic!("{name}: {e}"));
    let sg = elaborated.state_graph_arc();

    let flow_at = |limit: usize, verify: bool| -> FlowReport {
        let config = engine
            .config()
            .to_builder()
            .literal_limit(limit)
            .verify(verify)
            .verify_max_states(1_500_000)
            .build()
            .expect("valid table1 config");
        engine
            .with_config(config)
            .benchmark(name)
            .run()
            .unwrap_or_else(|e| panic!("{name}@{limit}: {e}"))
    };

    let at2 = flow_at(2, verify);
    let at3 = flow_at(3, false);
    let at4 = flow_at(4, false);

    // The Siegel baseline: split the initial covers syntactically into
    // 2-input trees (no SG insertion) and ask the verifier whether the
    // result happens to be hazard-free.
    let siegel = synthesize_mc(&sg)
        .map(|mc| {
            let circuit = build_decomposed_circuit(&sg, &mc, 2);
            verify_speed_independence(&circuit, &sg, &VerifyConfig { max_states: 1_500_000 })
                .is_ok()
        })
        .unwrap_or(false);

    Table1Row {
        name: name.to_string(),
        histogram: at2.initial_histogram.clone(),
        inserted: [at2.inserted, at3.inserted, at4.inserted],
        siegel_two_input: siegel,
        non_si: at2.non_si_cost,
        si: at2.si_cost,
        verified: at2.verified,
        states: sg.state_count(),
        reports: vec![at2, at3, at4],
    }
}

/// Converts table rows into the structured [`simap_core::BatchRow`] form
/// for the markdown/CSV emitters.
pub fn batch_rows(rows: &[Table1Row]) -> Vec<simap_core::BatchRow> {
    rows.iter()
        .map(|r| simap_core::BatchRow {
            name: r.name.clone(),
            states: r.states,
            reports: r.reports.clone(),
        })
        .collect()
}

/// Formats a histogram as the paper does: counts for n = 2..=7 (and a
/// trailing `+` bucket for anything larger).
pub fn format_histogram(hist: &[usize]) -> String {
    let mut cells: Vec<String> = Vec::new();
    for n in 2..=7 {
        let v = hist.get(n).copied().unwrap_or(0);
        cells.push(if v == 0 { ".".into() } else { v.to_string() });
    }
    let beyond: usize = hist.iter().skip(8).sum();
    if beyond > 0 {
        cells.push(format!("+{beyond}"));
    }
    cells.join(" ")
}

/// Formats an insertion count (`n.i.` when not implementable).
pub fn format_inserted(inserted: Option<usize>) -> String {
    match inserted {
        Some(n) => n.to_string(),
        None => "n.i.".to_string(),
    }
}

/// A compact one-line summary of a decomposition outcome, reused by the
/// figure binaries.
pub fn summarize_flow(report: &FlowReport) -> String {
    format!(
        "inserted={} si-cost={} non-si-cost={} verified={}",
        format_inserted(report.inserted),
        report.si_cost,
        report.non_si_cost,
        match report.verified {
            Some(true) => "yes",
            Some(false) => "NO",
            None => "skipped",
        }
    )
}

/// Re-exports used by the benches so they only depend on this crate.
pub mod reexports {
    #[allow(deprecated)] // the run_flow shim stays benchmarkable against the pipeline
    pub use simap_core::run_flow;
    pub use simap_core::{
        build_circuit, decompose, non_si_cost, si_cost, synthesize_mc, AckMode, Batch, Config,
        DecomposeConfig, Engine, FlowConfig, Synthesis,
    };
    pub use simap_sg::check_all;
    pub use simap_stg::{
        all_benchmarks, benchmark, elaborate, elaborate_with, patterns, reach_symbolic,
        ReachConfig, ReachStrategy, Stg,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_formatting() {
        assert_eq!(format_histogram(&[0, 0, 3, 1]), "3 1 . . . .");
        assert_eq!(format_inserted(None), "n.i.");
        assert_eq!(format_inserted(Some(4)), "4");
    }

    #[test]
    fn small_row_computes() {
        let engine = Engine::default();
        let row = table1_row(&engine, "half", true);
        assert!(row.inserted[0].is_some());
        assert_eq!(row.verified, Some(true));
        // One elaboration serves all three literal limits.
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.hits >= 3, "limits 2/3/4 reuse the elaboration: {stats:?}");
    }
}
