//! Token-game reachability: elaborates an [`Stg`] into a
//! [`simap_sg::StateGraph`], inferring initial signal values from
//! consistency.

use crate::petri::{Stg, TransitionId};
use simap_sg::{check_consistency, StateGraph, StateGraphBuilder, StateId};
use std::collections::HashMap;
use std::fmt;

/// Limits for reachability exploration.
#[derive(Debug, Clone)]
pub struct ReachConfig {
    /// Maximum number of reachable markings explored.
    pub max_states: usize,
    /// Maximum tokens allowed in a place (boundedness guard).
    pub max_tokens: u8,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig { max_states: 500_000, max_tokens: 7 }
    }
}

/// Errors during elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A place exceeded the token bound: the net looks unbounded.
    Unbounded {
        /// Name of the offending place.
        place: String,
    },
    /// The exploration limit was hit.
    TooManyStates {
        /// The configured limit.
        limit: usize,
    },
    /// The STG is not consistent: some signal does not alternate.
    Inconsistent {
        /// Description of the first offending arc.
        detail: String,
    },
    /// The underlying state-graph builder failed (e.g. > 64 signals).
    Build(String),
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::Unbounded { place } => write!(f, "place `{place}` exceeds token bound"),
            ReachError::TooManyStates { limit } => {
                write!(f, "more than {limit} reachable markings")
            }
            ReachError::Inconsistent { detail } => write!(f, "inconsistent STG: {detail}"),
            ReachError::Build(msg) => write!(f, "state graph construction failed: {msg}"),
        }
    }
}

impl std::error::Error for ReachError {}

/// Elaborates the STG into its reachability state graph with default
/// limits.
///
/// # Errors
/// See [`ReachError`].
pub fn elaborate(stg: &Stg) -> Result<StateGraph, ReachError> {
    elaborate_with(stg, &ReachConfig::default())
}

/// Elaborates the STG with explicit limits.
///
/// Signal values are inferred from consistency: the first reachable
/// marking (in BFS order) that enables a transition of signal `s` fixes
/// the initial value of `s` to the transition's pre-value; values are then
/// propagated along the BFS tree and the full labeling is re-checked with
/// [`simap_sg::check_consistency`].
///
/// # Errors
/// See [`ReachError`].
pub fn elaborate_with(stg: &Stg, config: &ReachConfig) -> Result<StateGraph, ReachError> {
    let n_transitions = stg.transitions().len();
    let initial: Vec<u8> = stg.initial_marking().to_vec();

    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut markings: Vec<Vec<u8>> = Vec::new();
    let mut edges: Vec<(usize, TransitionId, usize)> = Vec::new();
    let mut parent: Vec<Option<(usize, TransitionId)>> = Vec::new();

    index.insert(initial.clone(), 0);
    markings.push(initial);
    parent.push(None);

    let mut head = 0;
    while head < markings.len() {
        let m = markings[head].clone();
        for t in 0..n_transitions {
            let t = TransitionId(t);
            if !enabled(stg, &m, t) {
                continue;
            }
            let mut next = m.clone();
            for p in stg.pre(t) {
                next[p.0] -= 1;
            }
            for p in stg.post(t) {
                next[p.0] += 1;
                if next[p.0] > config.max_tokens {
                    return Err(ReachError::Unbounded { place: stg.places()[p.0].name.clone() });
                }
            }
            let dst = match index.get(&next) {
                Some(&i) => i,
                None => {
                    let i = markings.len();
                    if i >= config.max_states {
                        return Err(ReachError::TooManyStates { limit: config.max_states });
                    }
                    index.insert(next.clone(), i);
                    markings.push(next);
                    parent.push(Some((head, t)));
                    i
                }
            };
            edges.push((head, t, dst));
        }
        head += 1;
    }

    // Infer initial signal values: first BFS marking enabling each signal.
    let nsignals = stg.signals().len();
    let mut initial_value = vec![false; nsignals];
    let mut fixed = vec![false; nsignals];
    let enabled_signals_of = |m: &Vec<u8>| -> Vec<(usize, bool)> {
        (0..n_transitions)
            .map(TransitionId)
            .filter(|&t| enabled(stg, m, t))
            .map(|t| {
                let ev = stg.transitions()[t.0].event;
                (ev.signal.0, ev.pre_value())
            })
            .collect()
    };
    for m in &markings {
        if fixed.iter().all(|&f| f) {
            break;
        }
        for (sig, pre) in enabled_signals_of(m) {
            if !fixed[sig] {
                // Propagate back to the initial marking: along the BFS tree
                // path no transition of `sig` fired (it would have been
                // enabled at an earlier marking), so the value is unchanged.
                let mut value = pre;
                let mut at = index[m];
                while let Some((p, t)) = parent[at] {
                    if stg.transitions()[t.0].event.signal.0 == sig {
                        value = !value; // defensive; cannot happen per the invariant
                    }
                    at = p;
                }
                initial_value[sig] = value;
                fixed[sig] = true;
            }
        }
    }

    // Codes along the BFS tree.
    let mut codes: Vec<u64> = vec![0; markings.len()];
    let mut init_code = 0u64;
    for (i, &v) in initial_value.iter().enumerate() {
        if v {
            init_code |= 1 << i;
        }
    }
    for i in 0..markings.len() {
        codes[i] = match parent[i] {
            None => init_code,
            Some((p, t)) => codes[p] ^ (1u64 << stg.transitions()[t.0].event.signal.0),
        };
    }

    let mut builder = StateGraphBuilder::new(stg.name(), stg.signals().to_vec())
        .map_err(|e| ReachError::Build(e.to_string()))?;
    for &code in &codes {
        builder.add_state(code);
    }
    for (src, t, dst) in edges {
        builder.add_arc(StateId(src), stg.transitions()[t.0].event, StateId(dst));
    }
    let sg = builder.build(StateId(0)).map_err(|e| ReachError::Build(e.to_string()))?;

    let violations = check_consistency(&sg);
    if let Some(v) = violations.first() {
        return Err(ReachError::Inconsistent { detail: v.to_string() });
    }
    Ok(sg)
}

fn enabled(stg: &Stg, marking: &[u8], t: TransitionId) -> bool {
    stg.pre(t).iter().all(|p| marking[p.0] > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;
    use simap_sg::check_all;

    const RING: &str = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn ring_elaborates_to_four_states() {
        let stg = parse_g(RING).unwrap();
        let sg = elaborate(&stg).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert!(check_all(&sg).is_ok());
        // Initial: a+ enabled => a=0; b not yet enabled... b first enabled
        // after a+ with pre-value 0, so initial code is 00.
        assert_eq!(sg.code(sg.initial()), 0);
    }

    #[test]
    fn concurrent_fork_join() {
        let src = "\
.model fj
.inputs a
.outputs b c d
.graph
a+ b+ c+
b+ d+
c+ d+
d+ a-
a- b- c-
b- d-
c- d-
d- a+
.marking { <d-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let sg = elaborate(&stg).unwrap();
        // Concurrency diamond on both phases: 10 reachable markings.
        assert_eq!(sg.state_count(), 10);
        let report = check_all(&sg);
        assert!(report.is_ok(), "{:?}", report.violations);
    }

    #[test]
    fn initial_values_inferred() {
        // Start mid-cycle: marking after a+: b+ is enabled first; a starts 1.
        let src = "\
.model mid
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <a+,b+> }
.end
";
        let stg = parse_g(src).unwrap();
        let sg = elaborate(&stg).unwrap();
        let a = sg.signal_by_name("a").unwrap();
        let b = sg.signal_by_name("b").unwrap();
        assert!(sg.value(sg.initial(), a));
        assert!(!sg.value(sg.initial(), b));
    }

    #[test]
    fn unbounded_detected() {
        // A transition that only produces tokens.
        let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
        let stg = parse_g(src).unwrap();
        let err =
            elaborate_with(&stg, &ReachConfig { max_states: 10_000, max_tokens: 3 }).unwrap_err();
        assert!(matches!(err, ReachError::Unbounded { .. } | ReachError::TooManyStates { .. }));
    }

    #[test]
    fn state_limit_enforced() {
        let stg = parse_g(RING).unwrap();
        let err = elaborate_with(&stg, &ReachConfig { max_states: 2, max_tokens: 1 }).unwrap_err();
        assert!(matches!(err, ReachError::TooManyStates { limit: 2 }));
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ twice in a row without a-.
        let src = "\
.model bad
.inputs a
.graph
a+ a+/2
a+/2 a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let err = elaborate(&stg).unwrap_err();
        assert!(matches!(err, ReachError::Inconsistent { .. }));
    }
}
