//! Token-game reachability: elaborates an [`Stg`] into a
//! [`simap_sg::StateGraph`], inferring initial signal values from
//! consistency.
//!
//! # The packed-state engine
//!
//! Reachability is the hot path every synthesis pays first, so the
//! default [`ReachStrategy::Packed`] engine is built for throughput:
//!
//! * **Packed markings.** A marking is a fixed number of `u64` words;
//!   every place owns a fixed-width bit field inside them (wide enough
//!   for `max_tokens + 1` plus a SWAR guard bit). All markings live in
//!   one contiguous arena — no per-state heap allocation.
//! * **Interning.** States are deduplicated through an open-addressing
//!   hash-to-index table over the arena, so the visited set costs one
//!   probe sequence per successor instead of a `HashMap<Vec<u8>, _>`
//!   entry per state.
//! * **Mask-compiled transitions.** For every transition the engine
//!   precomputes per-word enable probes and fire deltas, turning
//!   `enabled()` into word-wise AND/ADD/compare (a SWAR all-fields-nonzero
//!   test) and firing into one wrapping subtract/add per word — no byte
//!   loops over places.
//! * **Parallel frontier expansion.** With [`ReachConfig::jobs`] > 1 the
//!   BFS expands each frontier level on a pool of scoped threads and
//!   merges the successor lists in deterministic (source, transition)
//!   order, so the resulting graph — and any error — is byte-identical
//!   to the sequential run.
//!
//! The legacy explicit BFS survives as [`ReachStrategy::Explicit`]: one
//! `Vec<u8>` per marking, `HashMap` interning. It is deliberately simple
//! and serves as the differential-testing oracle for the packed engine
//! (see `tests/reach_differential.rs`); both strategies produce
//! byte-identical state graphs and identical [`ReachError`] values.
//!
//! # The symbolic engine
//!
//! [`ReachStrategy::Symbolic`] ([`crate::symbolic`]) never enumerates
//! markings at all: for 1-safe nets it encodes states as Boolean vectors,
//! compiles every transition into a BDD (guard, update) relation and runs
//! fixed-point image computation over the full reachable set. The exact
//! state count comes out of a BDD satisfy-count, so nets whose reachable
//! sets blow past [`ReachError::StateLimit`] for the enumerative engines
//! stay analyzable (count, per-signal regions, CSC verdict) through
//! [`crate::symbolic::reach_symbolic`]. An explicit [`StateGraph`] is
//! materialized — through the same packed core, so graphs stay
//! byte-identical across all three strategies and the independently
//! computed symbolic count cross-checks the enumerative one — only when
//! the state count is at most [`ReachConfig::materialize_limit`];
//! above it, elaboration reports [`ReachError::MaterializeLimit`] while
//! the summary API still answers. Nets that are not 1-safe are out of the
//! symbolic engine's scope and rejected as [`ReachError::NotSafe`].

use crate::petri::{PlaceId, Stg, TransitionId};
use simap_sg::{check_consistency, StateGraph, StateId};
use std::collections::HashMap;
use std::fmt;

pub use crate::extmem::SpillCounters;

/// How reachable markings are represented and explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReachStrategy {
    /// Bit-packed markings in a contiguous arena, interned through a
    /// hash-to-index table, with mask-compiled enable/fire operations
    /// (the default; supports [`ReachConfig::jobs`]).
    #[default]
    Packed,
    /// The legacy explicit BFS (`Vec<u8>` markings, `HashMap`
    /// interning). Slower, but simple enough to audit by eye — the
    /// differential oracle the packed engine is tested against.
    Explicit,
    /// BDD-based symbolic reachability for 1-safe nets
    /// ([`crate::symbolic`]): the exact reachable set as a Boolean
    /// function, counted without enumeration; the state graph is
    /// materialized (byte-identically to the other strategies) only up to
    /// [`ReachConfig::materialize_limit`].
    Symbolic,
    /// External-memory sharded reachability ([`crate::extmem`]): the
    /// packed engine's marking layout over a file-backed paged arena,
    /// hash-partitioned intern shards, and a spill-to-disk frontier and
    /// edge log, so peak resident memory is bounded by
    /// [`ReachConfig::memory_budget`] instead of the state count. Graphs
    /// and errors are byte-identical to [`ReachStrategy::Packed`].
    Spill,
}

impl fmt::Display for ReachStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReachStrategy::Packed => "packed",
            ReachStrategy::Explicit => "explicit",
            ReachStrategy::Symbolic => "symbolic",
            ReachStrategy::Spill => "spill",
        })
    }
}

impl std::str::FromStr for ReachStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "packed" => Ok(ReachStrategy::Packed),
            "explicit" => Ok(ReachStrategy::Explicit),
            "symbolic" => Ok(ReachStrategy::Symbolic),
            "spill" => Ok(ReachStrategy::Spill),
            other => Err(format!(
                "unknown reachability strategy `{other}` (packed|explicit|symbolic|spill)"
            )),
        }
    }
}

/// Limits and strategy for reachability exploration.
#[derive(Debug, Clone)]
pub struct ReachConfig {
    /// Maximum number of reachable markings explored.
    pub max_states: usize,
    /// Maximum tokens allowed in a place (boundedness guard).
    pub max_tokens: u8,
    /// The exploration engine (packed arena vs explicit oracle).
    pub strategy: ReachStrategy,
    /// Worker threads for frontier expansion (packed and spill
    /// strategies; `0` and `1` both mean sequential). Whatever the
    /// value, the resulting graph is byte-identical to a sequential
    /// run.
    pub jobs: usize,
    /// Largest symbolically counted state space the symbolic strategy
    /// will materialize into an explicit [`StateGraph`]; above it,
    /// elaboration fails with [`ReachError::MaterializeLimit`] while
    /// [`crate::symbolic::reach_symbolic`] still reports the exact count
    /// and the CSC verdict. The enumerative strategies ignore this knob
    /// (their [`ReachConfig::max_states`] plays the same guarding role).
    pub materialize_limit: usize,
    /// Resident-memory budget in bytes for the spill strategy's working
    /// set (arena page cache, frontier buffers, edge log buffer). When
    /// the working set would exceed the budget, pages and run files move
    /// to [`ReachConfig::spill_dir`]. Ignored by the in-memory
    /// strategies. Default: 256 MiB.
    pub memory_budget: usize,
    /// Directory the spill strategy creates its run-scoped scratch
    /// directory in (`None`: the system temp dir). Every file is removed
    /// when the exploration ends — on success, error and panic alike.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Number of hash partitions of the spill strategy's intern table
    /// and marking arena. More shards spread the arena page cache
    /// thinner but shrink each intern table. Default: 8.
    pub shards: usize,
    /// Checkpoint cadence of the spill strategy in BFS levels: every
    /// `checkpoint_every` completed levels the full exploration state is
    /// atomically snapshotted into [`ReachConfig::checkpoint_dir`], so a
    /// killed run can continue from the last snapshot via
    /// [`ReachConfig::resume`]. `0` (the default) disables
    /// checkpointing. Ignored by the in-memory strategies.
    pub checkpoint_every: usize,
    /// Durable directory the spill strategy writes its checkpoint
    /// generations into (required when [`ReachConfig::checkpoint_every`]
    /// is non-zero). Unlike [`ReachConfig::spill_dir`] scratch files,
    /// checkpoint artifacts survive the process; they are removed only
    /// when the exploration completes successfully.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume a spill exploration from the checkpoint previously written
    /// into this directory. The manifest is validated against the
    /// current net and configuration (refusing on any mismatch, naming
    /// both digests) and the level-synchronized BFS continues from the
    /// snapshot, producing a [`StateGraph`] byte-identical to an
    /// uninterrupted run. Ignored by the in-memory strategies.
    pub resume: Option<std::path::PathBuf>,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig {
            max_states: 500_000,
            max_tokens: 7,
            strategy: ReachStrategy::default(),
            jobs: 1,
            materialize_limit: 1_000_000,
            memory_budget: 256 * 1024 * 1024,
            spill_dir: None,
            shards: 8,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: None,
        }
    }
}

/// Counters of one reachability run (see [`elaborate_with_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachStats {
    /// Markings whose successors were expanded (stats are reported for
    /// completed runs, where every interned marking was also visited).
    pub visited: usize,
    /// Distinct markings discovered and stored.
    pub interned: usize,
    /// Fired (marking, transition, marking) edges.
    pub edges: usize,
    /// The strategy that produced these counters.
    pub strategy: ReachStrategy,
    /// Disk-spill counters ([`ReachStrategy::Spill`] only; `None` for
    /// the in-memory strategies).
    pub spill: Option<SpillCounters>,
}

/// Errors during elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A place exceeded the token bound: the net looks unbounded.
    Unbounded {
        /// Name of the offending place.
        place: String,
        /// The configured [`ReachConfig::max_tokens`] bound it exceeded.
        max_tokens: u8,
        /// Markings fully explored before the offending firing.
        visited: usize,
    },
    /// The exploration limit was hit.
    StateLimit {
        /// The configured [`ReachConfig::max_states`] limit.
        limit: usize,
        /// Markings fully explored when the limit was hit.
        visited: usize,
    },
    /// The STG is not consistent: some signal does not alternate.
    Inconsistent {
        /// Description of the first offending arc.
        detail: String,
    },
    /// The net is not 1-safe, so the symbolic engine's one-bit-per-place
    /// encoding cannot represent it (the enumerative strategies handle
    /// multi-token places up to [`ReachConfig::max_tokens`]).
    NotSafe {
        /// Name of the first place observed holding (or about to hold)
        /// more than one token.
        place: String,
    },
    /// The symbolically counted state space is real but too large to
    /// materialize as an explicit state graph
    /// ([`ReachConfig::materialize_limit`]). The count itself — and the
    /// region/CSC analysis — remains available through
    /// [`crate::symbolic::reach_symbolic`].
    MaterializeLimit {
        /// The exact symbolic state count.
        states: u64,
        /// The configured materialization threshold it exceeded.
        limit: usize,
    },
    /// The underlying state-graph builder failed (e.g. > 64 signals).
    Build(String),
    /// The spill strategy could not read or write its scratch files
    /// (disk full, permissions, a vanished [`ReachConfig::spill_dir`]).
    Spill {
        /// Description of the failed filesystem operation.
        detail: String,
    },
    /// A checkpoint could not be written, read or validated: an I/O
    /// failure in [`ReachConfig::checkpoint_dir`], a corrupt or
    /// truncated artifact (named in the detail), or a
    /// [`ReachConfig::resume`] against a different net or configuration
    /// (the detail names both digests).
    Checkpoint {
        /// Description of the failed operation, naming the offending
        /// artifact or the mismatched digests.
        detail: String,
    },
}

impl fmt::Display for ReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReachError::Unbounded { place, max_tokens, visited } => write!(
                f,
                "place `{place}` exceeds the token bound of {max_tokens} after {visited} \
                 marking(s) were explored: the net looks unbounded"
            ),
            ReachError::StateLimit { limit, visited } => write!(
                f,
                "more than {limit} reachable markings (state limit {limit} hit after {visited} \
                 marking(s) were fully explored; raise ReachConfig::max_states to go further)"
            ),
            ReachError::Inconsistent { detail } => write!(f, "inconsistent STG: {detail}"),
            ReachError::NotSafe { place } => write!(
                f,
                "place `{place}` can hold more than one token: the symbolic engine only \
                 supports 1-safe nets (use the packed or explicit strategy)"
            ),
            ReachError::MaterializeLimit { states, limit } => write!(
                f,
                "{states} reachable markings exceed the materialization threshold of {limit}; \
                 raise ReachConfig::materialize_limit or use the symbolic summary \
                 (simap_stg::symbolic::reach_symbolic) for counts without a graph"
            ),
            ReachError::Build(msg) => write!(f, "state graph construction failed: {msg}"),
            ReachError::Spill { detail } => write!(
                f,
                "spill storage failure: {detail} (check ReachConfig::spill_dir and free disk \
                 space)"
            ),
            ReachError::Checkpoint { detail } => {
                write!(f, "spill checkpoint failure: {detail}")
            }
        }
    }
}

impl std::error::Error for ReachError {}

/// Elaborates the STG into its reachability state graph with default
/// limits.
///
/// # Errors
/// See [`ReachError`].
pub fn elaborate(stg: &Stg) -> Result<StateGraph, ReachError> {
    elaborate_with(stg, &ReachConfig::default())
}

/// Elaborates the STG with explicit limits.
///
/// # Errors
/// See [`ReachError`].
pub fn elaborate_with(stg: &Stg, config: &ReachConfig) -> Result<StateGraph, ReachError> {
    elaborate_with_stats(stg, config).map(|(sg, _)| sg)
}

/// Elaborates the STG and reports the exploration counters.
///
/// Signal values are inferred from consistency: the first reachable
/// marking (in BFS order) that enables a transition of signal `s` fixes
/// the initial value of `s` to the transition's pre-value; values are then
/// propagated along the BFS tree and the full labeling is re-checked with
/// [`simap_sg::check_consistency`].
///
/// Both strategies explore markings in identical BFS order, so the
/// resulting graph (state numbering, codes, arcs) and any error are the
/// same whatever the [`ReachConfig::strategy`] and [`ReachConfig::jobs`].
///
/// # Errors
/// See [`ReachError`].
pub fn elaborate_with_stats(
    stg: &Stg,
    config: &ReachConfig,
) -> Result<(StateGraph, ReachStats), ReachError> {
    let exploration = explore(stg, config)?;
    let n = exploration.count;
    let stats = ReachStats {
        visited: n,
        interned: n,
        edges: exploration.edge_arcs.len(),
        strategy: config.strategy,
        spill: exploration.spill,
    };

    // Infer initial signal values: the first BFS marking enabling each
    // signal fixes it. A transition is enabled at a marking exactly when
    // the exploration recorded an edge for it, and edges are produced
    // grouped by source in (source, transition) order, so the inference
    // walks edge runs instead of re-running the token game.
    let nsignals = stg.signals().len();
    let mut initial_value = vec![false; nsignals];
    let mut fixed = vec![false; nsignals];
    let mut remaining = nsignals;
    for src in 0..n {
        if remaining == 0 {
            break;
        }
        for &(ev, _) in
            &exploration.edge_arcs[exploration.edge_off[src]..exploration.edge_off[src + 1]]
        {
            let sig = ev.signal.0;
            if fixed[sig] {
                continue;
            }
            // Propagate back to the initial marking: along the BFS tree
            // path no transition of `sig` fired (it would have been
            // enabled at an earlier marking), so the value is unchanged.
            let mut value = ev.pre_value();
            let mut at = src;
            while let Some((p, t)) = exploration.parent[at] {
                if stg.transitions()[t.0].event.signal.0 == sig {
                    value = !value; // defensive; cannot happen per the invariant
                }
                at = p;
            }
            initial_value[sig] = value;
            fixed[sig] = true;
            remaining -= 1;
        }
    }

    // Codes along the BFS tree.
    let mut codes: Vec<u64> = vec![0; n];
    let mut init_code = 0u64;
    for (i, &v) in initial_value.iter().enumerate() {
        if v {
            init_code |= 1 << i;
        }
    }
    for i in 0..n {
        codes[i] = match exploration.parent[i] {
            None => init_code,
            Some((p, t)) => codes[p] ^ (1u64 << stg.transitions()[t.0].event.signal.0),
        };
    }

    // BFS emits event-labeled edges in CSR form already, so the graph
    // goes up through the raw bulk constructor with no conversion pass.
    let sg = StateGraph::from_csr_parts(
        stg.name(),
        stg.signals().to_vec(),
        codes,
        StateId(0),
        exploration.edge_off,
        exploration.edge_arcs,
    )
    .map_err(|e| ReachError::Build(e.to_string()))?;
    let violations = check_consistency(&sg);
    if let Some(v) = violations.first() {
        return Err(ReachError::Inconsistent { detail: v.to_string() });
    }
    Ok((sg, stats))
}

/// The strategy-independent outcome of the token game: the BFS tree and
/// edge list (markings themselves are not retained), plus the structural
/// observations [`crate::analysis`] needs.
#[derive(Debug)]
pub(crate) struct Exploration {
    /// Number of distinct markings discovered (BFS numbering `0..count`).
    pub(crate) count: usize,
    /// BFS-tree parent of each marking (`None` for the initial one).
    pub(crate) parent: Vec<Option<(usize, TransitionId)>>,
    /// Fired edges in CSR form: marking `s` fired
    /// `edge_arcs[edge_off[s]..edge_off[s + 1]]`, labeled with the
    /// transition's event and ordered by ascending transition id — ready
    /// for [`StateGraph::from_csr_parts`].
    pub(crate) edge_off: Vec<usize>,
    pub(crate) edge_arcs: Vec<(simap_sg::Event, StateId)>,
    /// Per transition: whether it fired anywhere.
    pub(crate) fired: Vec<bool>,
    /// Whether every reachable marking keeps at most one token per place.
    pub(crate) safe: bool,
    /// Disk-spill counters (set by the spill strategy only).
    pub(crate) spill: Option<SpillCounters>,
}

/// Runs the token game with the configured strategy.
pub(crate) fn explore(stg: &Stg, config: &ReachConfig) -> Result<Exploration, ReachError> {
    match config.strategy {
        ReachStrategy::Packed => explore_packed(stg, config),
        ReachStrategy::Explicit => explore_explicit(stg, config),
        ReachStrategy::Symbolic => crate::symbolic::explore_symbolic(stg, config),
        ReachStrategy::Spill => crate::extmem::explore_spill(stg, config),
    }
}

// ---------------------------------------------------------------------
// Explicit oracle: one Vec<u8> per marking, HashMap interning.
// ---------------------------------------------------------------------

fn explore_explicit(stg: &Stg, config: &ReachConfig) -> Result<Exploration, ReachError> {
    let n_transitions = stg.transition_count();
    let initial: Vec<u8> = stg.initial_marking().to_vec();

    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut markings: Vec<Vec<u8>> = Vec::new();
    let mut edge_off: Vec<usize> = Vec::new();
    let mut edge_arcs: Vec<(simap_sg::Event, StateId)> = Vec::new();
    let mut parent: Vec<Option<(usize, TransitionId)>> = Vec::new();
    let mut fired = vec![false; n_transitions];
    let mut safe = initial.iter().all(|&t| t <= 1);

    index.insert(initial.clone(), 0);
    markings.push(initial);
    parent.push(None);

    let mut head = 0;
    while head < markings.len() {
        let m = markings[head].clone();
        edge_off.push(edge_arcs.len());
        for t in 0..n_transitions {
            let t = TransitionId(t);
            if !stg.pre(t).iter().all(|p| m[p.0] > 0) {
                continue;
            }
            fired[t.0] = true;
            let mut next = m.clone();
            for p in stg.pre(t) {
                next[p.0] -= 1;
            }
            for p in stg.post(t) {
                // Bound check before the increment so a `u8` count can
                // never overflow (max_tokens may be 255).
                if next[p.0] >= config.max_tokens {
                    return Err(ReachError::Unbounded {
                        place: stg.places()[p.0].name.clone(),
                        max_tokens: config.max_tokens,
                        visited: head,
                    });
                }
                next[p.0] += 1;
            }
            let dst = match index.get(&next) {
                Some(&i) => i,
                None => {
                    let i = markings.len();
                    if i >= config.max_states {
                        return Err(ReachError::StateLimit {
                            limit: config.max_states,
                            visited: head,
                        });
                    }
                    if safe && next.iter().any(|&t| t > 1) {
                        safe = false;
                    }
                    index.insert(next.clone(), i);
                    markings.push(next);
                    parent.push(Some((head, t)));
                    i
                }
            };
            edge_arcs.push((stg.transitions()[t.0].event, StateId(dst)));
        }
        head += 1;
    }
    edge_off.push(edge_arcs.len());

    Ok(Exploration { count: markings.len(), parent, edge_off, edge_arcs, fired, safe, spill: None })
}

// ---------------------------------------------------------------------
// Packed engine: bit-packed markings, arena + intern table, SWAR masks.
// ---------------------------------------------------------------------

/// One word-level enabledness probe of a transition: "every pre field in
/// `word` is non-zero". A field `f < 2^(w-1)` is non-zero iff
/// `f + (2^(w-1) - 1)` sets its guard bit; the probe addition cannot
/// carry across fields.
#[derive(Clone, Copy)]
struct EnableCheck {
    word: u32,
    select: u64,
    probe: u64,
    high: u64,
}

/// One word-level fire delta of a transition: subtract the pre tokens,
/// add the post tokens, and flag any post field exceeding `max_tokens`
/// (`f > max` iff `f + (2^(w-1) - 1 - max)` reaches the guard bit).
#[derive(Clone, Copy)]
struct FireOp {
    word: u32,
    sub: u64,
    add: u64,
    select: u64,
    probe: u64,
    high: u64,
}

/// The mask-compiled net: field layout plus, per transition, the sparse
/// list of words its pre/post places actually touch — `enabled()` and
/// firing cost a handful of word operations each, independent of the
/// total place count.
pub(crate) struct PackedNet {
    /// `u64` words per marking (at least 1 so empty nets still intern).
    pub(crate) words: usize,
    /// Bits per place field (value range plus one SWAR guard bit).
    width: u32,
    /// The configured token bound (for the cold error path).
    max_tokens: u8,
    /// Per word: bits 1.. of every field (a field holds > 1 token iff it
    /// intersects this mask) — the safety observation.
    pub(crate) multi: Vec<u64>,
    /// Flattened per-transition enable probes; `enable_range[t]` indexes
    /// this transition's slice.
    enable: Vec<EnableCheck>,
    enable_range: Vec<(u32, u32)>,
    /// Flattened per-transition fire deltas, same indexing scheme.
    fire: Vec<FireOp>,
    fire_range: Vec<(u32, u32)>,
    /// `u64` words of one enabled-transition bitmask (at least 1).
    pub(crate) t_words: usize,
    /// Per transition, `t_words` words: the transitions whose enabledness
    /// *cannot* change when it fires (their pre-sets are disjoint from
    /// the fired transition's pre∪post places) — the incremental
    /// enabled-set carry-over mask.
    pub(crate) keep: Vec<u64>,
    /// Per transition: the (ascending) transitions to recheck after it
    /// fires, complementing `keep`.
    pub(crate) recheck: Vec<u32>,
    pub(crate) recheck_range: Vec<(u32, u32)>,
}

/// The narrowest field width able to hold the initial marking plus one
/// guard bit: the speculative first-attempt layout (1-safe nets — the
/// overwhelmingly common case — fit 2-bit fields, quartering the arena
/// against the worst-case layout).
pub(crate) fn narrow_width(stg: &Stg) -> u32 {
    let initial_max = stg.initial_marking().iter().copied().max().unwrap_or(0).max(1);
    64 - u64::from(initial_max).leading_zeros() + 1
}

/// The field width that can represent every legal token count up to
/// `max_tokens` (plus the transient `max_tokens + 1` the bound check
/// inspects) — the layout [`FireFault::Widen`] restarts with.
pub(crate) fn full_width(stg: &Stg, max_tokens: u8) -> u32 {
    let initial_max = stg.initial_marking().iter().copied().max().unwrap_or(0);
    let max_value = (u64::from(max_tokens) + 1).max(u64::from(initial_max));
    64 - max_value.leading_zeros() + 1
}

/// Why a firing could not complete.
pub(crate) enum FireFault {
    /// A post place truly exceeded `max_tokens`.
    Unbounded(PlaceId),
    /// A post place overflowed the speculative narrow field layout while
    /// still within `max_tokens`: the exploration must restart at
    /// [`full_width`].
    Widen,
}

impl PackedNet {
    pub(crate) fn compile(stg: &Stg, max_tokens: u8, width: u32) -> PackedNet {
        let n_places = stg.place_count();
        // Every field carries one SWAR guard bit above the value range,
        // so probe additions never carry across fields. `width` comes
        // from [`narrow_width`] / [`full_width`]; when it cannot
        // represent max_tokens + 1 the engine bounds fields at
        // `2^(width-1) - 1` and reports overflow as [`FireFault::Widen`].
        let per_word = (64 / width) as usize;
        let words = n_places.div_ceil(per_word).max(1);
        let field = |p: usize| -> (usize, u32) { (p / per_word, (p % per_word) as u32 * width) };
        let all = (1u64 << width) - 1; // every bit of a field
        let low = (1u64 << (width - 1)) - 1; // bits below the guard bit
        let eff = u64::from(max_tokens).min(low); // bound enforceable at this width

        let mut multi = vec![0u64; words];
        for p in 0..n_places {
            let (word, off) = field(p);
            multi[word] |= (all & !1) << off;
        }

        let n_transitions = stg.transition_count();
        let mut enable = Vec::new();
        let mut enable_range = Vec::with_capacity(n_transitions);
        let mut fire = Vec::new();
        let mut fire_range = Vec::with_capacity(n_transitions);
        // Scratch planes, rebuilt per transition and compacted into the
        // sparse lists (only words a transition touches survive).
        let mut scratch = vec![[0u64; 6]; words]; // [esel, eprobe, ehigh, sub, add, psel]
        for t in 0..n_transitions {
            for s in scratch.iter_mut() {
                *s = [0; 6];
            }
            for p in stg.pre(TransitionId(t)) {
                let (word, off) = field(p.0);
                scratch[word][0] |= all << off;
                scratch[word][1] |= low << off;
                scratch[word][2] |= 1u64 << (off + width - 1);
                scratch[word][3] += 1u64 << off;
            }
            for p in stg.post(TransitionId(t)) {
                let (word, off) = field(p.0);
                scratch[word][4] += 1u64 << off;
                scratch[word][5] |= all << off;
            }
            let estart = enable.len() as u32;
            let fstart = fire.len() as u32;
            for (word, s) in scratch.iter().enumerate() {
                let [esel, eprobe, ehigh, sub, add, psel] = *s;
                if esel != 0 {
                    enable.push(EnableCheck {
                        word: word as u32,
                        select: esel,
                        probe: eprobe,
                        high: ehigh,
                    });
                }
                if sub != 0 || add != 0 {
                    // The overflow probe/high cover the post fields only.
                    let mut probe = 0u64;
                    let mut high = 0u64;
                    for p in stg.post(TransitionId(t)) {
                        let (w, off) = field(p.0);
                        if w == word {
                            probe |= (low - eff) << off;
                            high |= 1u64 << (off + width - 1);
                        }
                    }
                    fire.push(FireOp { word: word as u32, sub, add, select: psel, probe, high });
                }
            }
            enable_range.push((estart, enable.len() as u32));
            fire_range.push((fstart, fire.len() as u32));
        }

        // Incremental enabled-set support: firing `t` only moves tokens in
        // pre(t) ∪ post(t), so only transitions consuming from those
        // places can change enabledness. Everything else carries over.
        let t_words = n_transitions.div_ceil(64).max(1);
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n_places];
        for t in 0..n_transitions {
            for p in stg.pre(TransitionId(t)) {
                consumers[p.0].push(t as u32);
            }
        }
        let mut keep = Vec::with_capacity(n_transitions * t_words);
        let mut recheck = Vec::new();
        let mut recheck_range = Vec::with_capacity(n_transitions);
        let mut affected = vec![0u64; t_words];
        for t in 0..n_transitions {
            for w in affected.iter_mut() {
                *w = 0;
            }
            let places = stg.pre(TransitionId(t)).iter().chain(stg.post(TransitionId(t)));
            for p in places {
                for &u in &consumers[p.0] {
                    affected[u as usize / 64] |= 1u64 << (u % 64);
                }
            }
            let start = recheck.len() as u32;
            for (w, &bits) in affected.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    recheck.push(w as u32 * 64 + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            recheck_range.push((start, recheck.len() as u32));
            keep.extend(affected.iter().map(|&w| !w));
        }

        PackedNet {
            words,
            width,
            max_tokens,
            multi,
            enable,
            enable_range,
            fire,
            fire_range,
            t_words,
            keep,
            recheck,
            recheck_range,
        }
    }

    pub(crate) fn pack_into(&self, marking: &[u8], out: &mut [u64]) {
        let per_word = (64 / self.width) as usize;
        for w in out.iter_mut() {
            *w = 0;
        }
        for (p, &tokens) in marking.iter().enumerate() {
            out[p / per_word] |= u64::from(tokens) << ((p % per_word) as u32 * self.width);
        }
    }

    fn tokens(&self, packed: &[u64], p: usize) -> u64 {
        let per_word = (64 / self.width) as usize;
        packed[p / per_word] >> ((p % per_word) as u32 * self.width) & ((1 << self.width) - 1)
    }

    #[inline]
    fn checks(&self, t: TransitionId) -> &[EnableCheck] {
        let (start, end) = self.enable_range[t.0];
        &self.enable[start as usize..end as usize]
    }

    /// Sparse word-wise enabledness: every pre field non-zero, checked
    /// only on the words `t`'s pre places live in.
    #[inline]
    pub(crate) fn enabled(&self, m: &[u64], t: TransitionId) -> bool {
        self.checks(t)
            .iter()
            .all(|c| ((m[c.word as usize] & c.select).wrapping_add(c.probe)) & c.high == c.high)
    }

    /// Fires `t` (assumed enabled) into `out` — a marking copy plus one
    /// wrapping subtract/add per touched word — and reports the fault,
    /// if any: a post place truly exceeding `max_tokens` (named in arc
    /// order, exactly as the explicit oracle reports it), or an overflow
    /// of the speculative narrow field layout.
    #[inline]
    pub(crate) fn fire(
        &self,
        stg: &Stg,
        m: &[u64],
        t: TransitionId,
        out: &mut [u64],
    ) -> Option<FireFault> {
        out.copy_from_slice(m);
        let (start, end) = self.fire_range[t.0];
        let mut over = false;
        for op in &self.fire[start as usize..end as usize] {
            let next = m[op.word as usize].wrapping_sub(op.sub).wrapping_add(op.add);
            out[op.word as usize] = next;
            over |= ((next & op.select).wrapping_add(op.probe)) & op.high != 0;
        }
        if !over {
            return None;
        }
        // Cold path: the overflowed field holds its exact count (the
        // increment cannot carry past the guard bit), so decoding tells
        // a genuine bound violation apart from a too-narrow layout.
        match stg
            .post(t)
            .iter()
            .copied()
            .find(|&p| self.tokens(out, p.0) > u64::from(self.max_tokens))
        {
            Some(p) => Some(FireFault::Unbounded(p)),
            None => Some(FireFault::Widen),
        }
    }
}

/// Open-addressing hash-to-index table over the packed arena.
struct InternTable {
    /// Slot values are arena indices; `usize::MAX` marks an empty slot.
    slots: Vec<usize>,
    mask: usize,
    len: usize,
}

impl InternTable {
    fn with_capacity(n: usize) -> InternTable {
        let cap = (n.max(8) * 2).next_power_of_two();
        InternTable { slots: vec![usize::MAX; cap], mask: cap - 1, len: 0 }
    }

    #[inline]
    fn hash(words: &[u64]) -> u64 {
        // SplitMix64-style fold: cheap, well-distributed for dense words.
        // The 1- and 2-word layouts (every 1-safe net up to 32 and 64
        // places) take branch-free specializations.
        let mix = |h: u64, w: u64| {
            let mut z = h ^ w;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
        match *words {
            [a] => mix(SEED, a),
            [a, b] => mix(mix(SEED, a), b),
            ref ws => ws.iter().fold(SEED, |h, &w| mix(h, w)),
        }
    }

    /// Stride-specialized slice equality against the arena.
    #[inline]
    fn matches(arena: &[u64], stride: usize, i: usize, needle: &[u64]) -> bool {
        match *needle {
            [a] => arena[i] == a,
            [a, b] => {
                let base = i * 2;
                arena[base] == a && arena[base + 1] == b
            }
            ref ws => &arena[i * stride..(i + 1) * stride] == ws,
        }
    }

    /// Looks up the packed marking in the arena; on a miss, reserves the
    /// slot for `candidate` and returns `None` (the caller then appends
    /// the marking at index `candidate`).
    fn lookup_or_reserve(
        &mut self,
        arena: &[u64],
        stride: usize,
        needle: &[u64],
        candidate: usize,
    ) -> Option<usize> {
        if self.len * 3 >= self.slots.len() * 2 {
            self.grow(arena, stride);
        }
        let mut slot = (Self::hash(needle) as usize) & self.mask;
        loop {
            match self.slots[slot] {
                usize::MAX => {
                    self.slots[slot] = candidate;
                    self.len += 1;
                    return None;
                }
                i if Self::matches(arena, stride, i, needle) => return Some(i),
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    fn grow(&mut self, arena: &[u64], stride: usize) {
        let cap = self.slots.len() * 2;
        let mut bigger = InternTable { slots: vec![usize::MAX; cap], mask: cap - 1, len: self.len };
        for &i in self.slots.iter().filter(|&&i| i != usize::MAX) {
            let words = &arena[i * stride..(i + 1) * stride];
            let mut slot = (Self::hash(words) as usize) & bigger.mask;
            while bigger.slots[slot] != usize::MAX {
                slot = (slot + 1) & bigger.mask;
            }
            bigger.slots[slot] = i;
        }
        *self = bigger;
    }
}

/// One expanded successor produced by a frontier worker: the source
/// marking (arena index), the transition, and where the packed successor
/// marking lives in the worker's output buffer.
struct SuccRef {
    src: usize,
    t: TransitionId,
}

/// The output of expanding one contiguous chunk of the frontier.
struct ChunkOut {
    /// Packed successor markings, `stride` words each, aligned with
    /// `succs`.
    buf: Vec<u64>,
    /// Successor metadata in (source, transition) order.
    succs: Vec<SuccRef>,
    /// The first faulting firing in the chunk, if any: successors of
    /// earlier (source, transition) pairs are all in `succs`.
    fault: Option<(usize, FireFault)>,
}

/// Why one packed exploration attempt stopped.
pub(crate) enum Abort {
    /// A real reachability error — propagate it.
    Error(ReachError),
    /// The speculative narrow field layout overflowed: restart the whole
    /// exploration at [`full_width`].
    Widen,
}

impl From<ReachError> for Abort {
    fn from(e: ReachError) -> Self {
        Abort::Error(e)
    }
}

/// The packed BFS state: marking arena, per-state enabled-transition
/// bitmasks (maintained incrementally), intern table and the outputs.
struct PackedExplorer<'a> {
    stg: &'a Stg,
    net: PackedNet,
    stride: usize,
    t_words: usize,
    max_states: usize,
    max_tokens: u8,
    /// Packed markings, `stride` words per state.
    arena: Vec<u64>,
    /// Enabled-transition bitmask per state, `t_words` words each,
    /// parallel to `arena`. Computed once per *new* state from its BFS
    /// parent's mask: carried-over bits plus the rechecked neighborhood
    /// of the fired transition.
    enabled: Vec<u64>,
    table: InternTable,
    /// Event label per transition, resolved once.
    events: Vec<simap_sg::Event>,
    parent: Vec<Option<(usize, TransitionId)>>,
    edge_off: Vec<usize>,
    edge_arcs: Vec<(simap_sg::Event, StateId)>,
    fired: Vec<bool>,
    safe: bool,
    scratch_en: Vec<u64>,
}

impl<'a> PackedExplorer<'a> {
    fn new(stg: &'a Stg, config: &ReachConfig, width: u32) -> PackedExplorer<'a> {
        let net = PackedNet::compile(stg, config.max_tokens, width);
        let stride = net.words;
        let t_words = net.t_words;
        let n_transitions = stg.transition_count();

        let mut initial = vec![0u64; stride];
        net.pack_into(stg.initial_marking(), &mut initial);
        let safe = net.multi.iter().zip(&initial).all(|(&m, &w)| w & m == 0);

        // The initial state's enabled set is the one full per-transition
        // scan; every other state derives its set incrementally.
        let mut en0 = vec![0u64; t_words];
        for t in 0..n_transitions {
            if net.enabled(&initial, TransitionId(t)) {
                en0[t / 64] |= 1u64 << (t % 64);
            }
        }

        let mut this = PackedExplorer {
            stg,
            stride,
            t_words,
            max_states: config.max_states,
            max_tokens: config.max_tokens,
            arena: Vec::with_capacity(stride * 4096),
            enabled: Vec::with_capacity(t_words * 4096),
            table: InternTable::with_capacity(2048),
            events: stg.transitions().iter().map(|t| t.event).collect(),
            parent: Vec::with_capacity(4096),
            edge_off: Vec::with_capacity(4096),
            edge_arcs: Vec::with_capacity(8192),
            fired: vec![false; n_transitions],
            safe,
            scratch_en: vec![0u64; t_words],
            net,
        };
        this.arena.extend_from_slice(&initial);
        this.enabled.extend_from_slice(&en0);
        let reserved = this.table.lookup_or_reserve(&this.arena, stride, &initial, 0);
        debug_assert!(reserved.is_none());
        this.parent.push(None);
        this
    }

    fn count(&self) -> usize {
        self.arena.len() / self.stride
    }

    fn fault(&self, fault: FireFault, src: usize) -> Abort {
        match fault {
            FireFault::Unbounded(p) => Abort::Error(ReachError::Unbounded {
                place: self.stg.places()[p.0].name.clone(),
                max_tokens: self.max_tokens,
                visited: src,
            }),
            FireFault::Widen => Abort::Widen,
        }
    }

    /// Interns one fired successor: dedup through the table, append to
    /// the arena on a miss (deriving its enabled set from the source's),
    /// record the edge. Identical across the sequential and
    /// merged-parallel paths — this is what makes `jobs` byte-stable.
    fn intern(&mut self, src: usize, t: TransitionId, next: &[u64]) -> Result<(), Abort> {
        let candidate = self.count();
        let dst = match self.table.lookup_or_reserve(&self.arena, self.stride, next, candidate) {
            Some(i) => i,
            None => {
                if candidate >= self.max_states {
                    return Err(Abort::Error(ReachError::StateLimit {
                        limit: self.max_states,
                        visited: src,
                    }));
                }
                if self.safe && self.net.multi.iter().zip(next).any(|(&m, &w)| w & m != 0) {
                    self.safe = false;
                }
                // Incremental enabled set: carry over every transition
                // whose pre-places `t` did not touch, recheck the rest.
                let en_src = &self.enabled[src * self.t_words..(src + 1) * self.t_words];
                let keep = &self.net.keep[t.0 * self.t_words..(t.0 + 1) * self.t_words];
                for (s, (&e, &k)) in self.scratch_en.iter_mut().zip(en_src.iter().zip(keep)) {
                    *s = e & k;
                }
                let (rs, re) = self.net.recheck_range[t.0];
                for &u in &self.net.recheck[rs as usize..re as usize] {
                    if self.net.enabled(next, TransitionId(u as usize)) {
                        self.scratch_en[u as usize / 64] |= 1u64 << (u % 64);
                    }
                }
                self.arena.extend_from_slice(next);
                self.enabled.extend_from_slice(&self.scratch_en);
                self.parent.push(Some((src, t)));
                candidate
            }
        };
        self.edge_arcs.push((self.events[t.0], StateId(dst)));
        Ok(())
    }

    /// Expands frontier states `lo..hi` sequentially.
    fn expand_sequential(&mut self, lo: usize, hi: usize) -> Result<(), Abort> {
        let stride = self.stride;
        let mut cur = vec![0u64; stride];
        let mut cur_en = vec![0u64; self.t_words];
        let mut next = vec![0u64; stride];
        for src in lo..hi {
            self.edge_off.push(self.edge_arcs.len());
            // Local copies: the loop then reads stable buffers while the
            // arenas grow behind them.
            cur.copy_from_slice(&self.arena[src * stride..(src + 1) * stride]);
            cur_en.copy_from_slice(&self.enabled[src * self.t_words..(src + 1) * self.t_words]);
            for (w, &bits) in cur_en.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let t = TransitionId(w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                    self.fired[t.0] = true;
                    if let Some(f) = self.net.fire(self.stg, &cur, t, &mut next) {
                        return Err(self.fault(f, src));
                    }
                    self.intern(src, t, &next)?;
                }
            }
        }
        Ok(())
    }

    /// Expands one level on `jobs` scoped workers and merges the chunks
    /// in deterministic (source, transition) order, so state numbering,
    /// edges and errors are byte-identical to the sequential run.
    fn expand_parallel(&mut self, lo: usize, hi: usize, jobs: usize) -> Result<(), Abort> {
        let chunk_len = (hi - lo).div_ceil(jobs);
        let stride = self.stride;
        let chunks: Vec<ChunkOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..jobs {
                let chunk_lo = lo + c * chunk_len;
                let chunk_hi = (chunk_lo + chunk_len).min(hi);
                if chunk_lo >= chunk_hi {
                    break;
                }
                let stg = self.stg;
                let net = &self.net;
                let arena = &self.arena[..];
                let enabled = &self.enabled[..];
                let t_words = self.t_words;
                handles.push(scope.spawn(move || {
                    expand_chunk(stg, net, arena, enabled, stride, t_words, chunk_lo, chunk_hi)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        for chunk in chunks {
            for (i, succ) in chunk.succs.iter().enumerate() {
                self.fired[succ.t.0] = true;
                // Keep the CSR offsets in lockstep: one entry per source,
                // including barren ones the chunks skipped over.
                while self.edge_off.len() <= succ.src {
                    self.edge_off.push(self.edge_arcs.len());
                }
                self.intern(succ.src, succ.t, &chunk.buf[i * stride..(i + 1) * stride])?;
            }
            if let Some((src, f)) = chunk.fault {
                return Err(self.fault(f, src));
            }
        }
        while self.edge_off.len() < hi {
            self.edge_off.push(self.edge_arcs.len());
        }
        Ok(())
    }
}

pub(crate) fn explore_packed(stg: &Stg, config: &ReachConfig) -> Result<Exploration, ReachError> {
    // Speculate on the narrow field layout first (1-safe nets, i.e. all
    // of practice, quarter their arena footprint this way); a layout
    // overflow restarts once at the width that can represent every legal
    // token count. Both attempts explore in identical BFS order, so the
    // restart is invisible in the output.
    let narrow = narrow_width(stg);
    let full = full_width(stg, config.max_tokens);
    match explore_packed_at(stg, config, narrow.min(full)) {
        Err(Abort::Widen) => {
            debug_assert!(narrow < full, "full-width runs cannot ask to widen");
            match explore_packed_at(stg, config, full) {
                Ok(exploration) => Ok(exploration),
                Err(Abort::Error(e)) => Err(e),
                Err(Abort::Widen) => unreachable!("full-width runs cannot ask to widen"),
            }
        }
        Ok(exploration) => Ok(exploration),
        Err(Abort::Error(e)) => Err(e),
    }
}

fn explore_packed_at(stg: &Stg, config: &ReachConfig, width: u32) -> Result<Exploration, Abort> {
    let mut explorer = PackedExplorer::new(stg, config, width);
    let jobs = config.jobs.max(1);
    let mut level_start = 0usize;
    while level_start < explorer.count() {
        let level_end = explorer.count();
        if jobs == 1 || level_end - level_start < 2 * jobs {
            explorer.expand_sequential(level_start, level_end)?;
        } else {
            explorer.expand_parallel(level_start, level_end, jobs)?;
        }
        level_start = level_end;
    }
    explorer.edge_off.push(explorer.edge_arcs.len());
    Ok(Exploration {
        count: explorer.count(),
        parent: explorer.parent,
        edge_off: explorer.edge_off,
        edge_arcs: explorer.edge_arcs,
        fired: explorer.fired,
        safe: explorer.safe,
        spill: None,
    })
}

/// Expands frontier states `lo..hi` (arena indices) without touching
/// shared mutable state; pure function of the arena prefixes.
#[allow(clippy::too_many_arguments)]
fn expand_chunk(
    stg: &Stg,
    net: &PackedNet,
    arena: &[u64],
    enabled: &[u64],
    stride: usize,
    t_words: usize,
    lo: usize,
    hi: usize,
) -> ChunkOut {
    let mut out = ChunkOut { buf: Vec::with_capacity(stride * 16), succs: Vec::new(), fault: None };
    let mut next = vec![0u64; stride];
    'srcs: for src in lo..hi {
        let m = &arena[src * stride..(src + 1) * stride];
        let en = &enabled[src * t_words..(src + 1) * t_words];
        for (w, &bits) in en.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let t = TransitionId(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
                if let Some(f) = net.fire(stg, m, t, &mut next) {
                    // Everything after this firing would never be reached
                    // sequentially; record the fault position and stop.
                    out.fault = Some((src, f));
                    break 'srcs;
                }
                out.buf.extend_from_slice(&next);
                out.succs.push(SuccRef { src, t });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;
    use simap_sg::check_all;

    const RING: &str = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    fn both_strategies() -> [ReachConfig; 2] {
        [
            ReachConfig::default(),
            ReachConfig { strategy: ReachStrategy::Explicit, ..ReachConfig::default() },
        ]
    }

    #[test]
    fn ring_elaborates_to_four_states() {
        let stg = parse_g(RING).unwrap();
        for config in both_strategies() {
            let sg = elaborate_with(&stg, &config).unwrap();
            assert_eq!(sg.state_count(), 4, "{}", config.strategy);
            assert!(check_all(&sg).is_ok());
            // Initial: a+ enabled => a=0; b not yet enabled... b first
            // enabled after a+ with pre-value 0, so initial code is 00.
            assert_eq!(sg.code(sg.initial()), 0);
        }
    }

    #[test]
    fn concurrent_fork_join() {
        let src = "\
.model fj
.inputs a
.outputs b c d
.graph
a+ b+ c+
b+ d+
c+ d+
d+ a-
a- b- c-
b- d-
c- d-
d- a+
.marking { <d-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        for config in both_strategies() {
            let sg = elaborate_with(&stg, &config).unwrap();
            // Concurrency diamond on both phases: 10 reachable markings.
            assert_eq!(sg.state_count(), 10, "{}", config.strategy);
            let report = check_all(&sg);
            assert!(report.is_ok(), "{:?}", report.violations);
        }
    }

    #[test]
    fn initial_values_inferred() {
        // Start mid-cycle: marking after a+: b+ is enabled first; a starts 1.
        let src = "\
.model mid
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <a+,b+> }
.end
";
        let stg = parse_g(src).unwrap();
        for config in both_strategies() {
            let sg = elaborate_with(&stg, &config).unwrap();
            let a = sg.signal_by_name("a").unwrap();
            let b = sg.signal_by_name("b").unwrap();
            assert!(sg.value(sg.initial(), a));
            assert!(!sg.value(sg.initial(), b));
        }
    }

    #[test]
    fn unbounded_detected_identically() {
        // A transition that only produces tokens.
        let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
        let stg = parse_g(src).unwrap();
        let errs: Vec<ReachError> = both_strategies()
            .map(|config| {
                elaborate_with(&stg, &ReachConfig { max_states: 10_000, max_tokens: 3, ..config })
                    .unwrap_err()
            })
            .into();
        assert!(
            matches!(errs[0], ReachError::Unbounded { .. } | ReachError::StateLimit { .. }),
            "{:?}",
            errs[0]
        );
        assert_eq!(errs[0], errs[1], "strategies must report the same error");
    }

    #[test]
    fn state_limit_enforced() {
        let stg = parse_g(RING).unwrap();
        for config in both_strategies() {
            let err = elaborate_with(&stg, &ReachConfig { max_states: 2, max_tokens: 1, ..config })
                .unwrap_err();
            assert!(
                matches!(err, ReachError::StateLimit { limit: 2, .. }),
                "{}: {err:?}",
                config.strategy
            );
        }
    }

    #[test]
    fn error_messages_name_the_context() {
        // Satellite pin: StateLimit reports the configured limit and the
        // progress made; Unbounded names the place and both bounds.
        let stg = parse_g(RING).unwrap();
        let err = elaborate_with(
            &stg,
            &ReachConfig { max_states: 2, max_tokens: 1, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, ReachError::StateLimit { limit: 2, visited: 1 });
        assert_eq!(
            err.to_string(),
            "more than 2 reachable markings (state limit 2 hit after 1 marking(s) were fully \
             explored; raise ReachConfig::max_states to go further)"
        );

        let unb = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
        let stg = parse_g(unb).unwrap();
        let err = elaborate_with(
            &stg,
            &ReachConfig { max_states: 10_000, max_tokens: 2, ..Default::default() },
        )
        .unwrap_err();
        let ReachError::Unbounded { ref place, max_tokens, visited } = err else {
            panic!("expected Unbounded, got {err:?}");
        };
        assert_eq!((place.as_str(), max_tokens), ("q", 2));
        assert_eq!(
            err.to_string(),
            format!(
                "place `q` exceeds the token bound of 2 after {visited} marking(s) were \
                 explored: the net looks unbounded"
            )
        );
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ twice in a row without a-.
        let src = "\
.model bad
.inputs a
.graph
a+ a+/2
a+/2 a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        for config in both_strategies() {
            let err = elaborate_with(&stg, &config).unwrap_err();
            assert!(matches!(err, ReachError::Inconsistent { .. }), "{}", config.strategy);
        }
    }

    #[test]
    fn stats_report_visited_and_interned() {
        let stg = parse_g(RING).unwrap();
        for config in both_strategies() {
            let (sg, stats) = elaborate_with_stats(&stg, &config).unwrap();
            assert_eq!(stats.visited, 4);
            assert_eq!(stats.interned, sg.state_count());
            assert_eq!(stats.edges, 4);
            assert_eq!(stats.strategy, config.strategy);
        }
    }

    #[test]
    fn parallel_frontier_matches_sequential() {
        let stg = crate::benchmarks::benchmark("vbe10b").unwrap();
        let sequential = elaborate(&stg).unwrap();
        let parallel =
            elaborate_with(&stg, &ReachConfig { jobs: 4, ..Default::default() }).unwrap();
        assert_eq!(sequential.state_count(), parallel.state_count());
        for s in sequential.states() {
            assert_eq!(sequential.code(s), parallel.code(s));
            assert_eq!(sequential.succ(s), parallel.succ(s));
        }
        assert_eq!(sequential.initial(), parallel.initial());
    }

    #[test]
    fn packed_fields_hold_initial_tokens_beyond_the_bound() {
        // The oracle stores the initial marking unchecked and only bounds
        // increments; the packed layout must widen its fields accordingly.
        let src = "\
.model wide
.inputs a
.graph
p a+
a+ q
q a-
a- p
.marking { p=5 }
.end
";
        let stg = parse_g(src).unwrap();
        for config in both_strategies() {
            let result = elaborate_with(&stg, &ReachConfig { max_tokens: 3, ..config })
                .map(|sg| sg.state_count());
            let oracle = elaborate_with(
                &stg,
                &ReachConfig {
                    max_tokens: 3,
                    strategy: ReachStrategy::Explicit,
                    ..ReachConfig::default()
                },
            )
            .map(|sg| sg.state_count());
            assert_eq!(result, oracle, "{}", config.strategy);
        }
    }

    #[test]
    fn strategy_parses_and_displays() {
        assert_eq!("packed".parse::<ReachStrategy>().unwrap(), ReachStrategy::Packed);
        assert_eq!("explicit".parse::<ReachStrategy>().unwrap(), ReachStrategy::Explicit);
        assert_eq!("symbolic".parse::<ReachStrategy>().unwrap(), ReachStrategy::Symbolic);
        assert_eq!("spill".parse::<ReachStrategy>().unwrap(), ReachStrategy::Spill);
        assert!("fancy".parse::<ReachStrategy>().is_err());
        assert_eq!(ReachStrategy::Packed.to_string(), "packed");
        assert_eq!(ReachStrategy::Symbolic.to_string(), "symbolic");
        assert_eq!(ReachStrategy::Spill.to_string(), "spill");
        assert_eq!(ReachStrategy::default(), ReachStrategy::Packed);
    }

    #[test]
    fn symbolic_error_messages_name_the_context() {
        // Satellite pin: the symbolic-only error family names the place /
        // the counts and points at the escape hatch.
        let err = ReachError::NotSafe { place: "q".to_string() };
        assert_eq!(
            err.to_string(),
            "place `q` can hold more than one token: the symbolic engine only supports \
             1-safe nets (use the packed or explicit strategy)"
        );
        let err = ReachError::MaterializeLimit { states: 1 << 22, limit: 1000 };
        assert_eq!(
            err.to_string(),
            "4194304 reachable markings exceed the materialization threshold of 1000; raise \
             ReachConfig::materialize_limit or use the symbolic summary \
             (simap_stg::symbolic::reach_symbolic) for counts without a graph"
        );
    }
}
