//! Structural and behavioural analysis of STGs: safeness, dead
//! transitions, choice classification and the input-choice restriction
//! that speed-independent specifications rely on.

use crate::petri::{PlaceId, Stg, TransitionId};
use crate::reach::{explore, ReachConfig, ReachError};
use simap_sg::SignalKind;

/// Summary of an STG analysis run.
#[derive(Debug, Clone)]
pub struct StgAnalysis {
    /// Whether every reachable marking has at most one token per place.
    pub safe: bool,
    /// Transitions that never fire in the reachability graph.
    pub dead_transitions: Vec<TransitionId>,
    /// Places with more than one consumer (choice places).
    pub choice_places: Vec<PlaceId>,
    /// Whether every choice place is *free-choice*: it is the unique
    /// pre-place of each of its consumers.
    pub free_choice: bool,
    /// Whether every choice is resolved by the environment (all consumers
    /// of every choice place are input transitions) — the restriction
    /// under which output persistency is structurally guaranteed.
    pub input_choice_only: bool,
    /// Number of reachable markings explored.
    pub markings: usize,
}

/// Analyzes an STG.
///
/// The token game runs through the same exploration core as
/// [`crate::reach::elaborate_with`], honoring the configured
/// [`ReachConfig::strategy`] and [`ReachConfig::jobs`] — so behavioural
/// observations (safeness, dead transitions, marking counts) and error
/// semantics are identical to elaboration's by construction.
///
/// # Errors
/// Propagates [`ReachError`] when the net is unbounded or too large.
pub fn analyze(stg: &Stg, config: &ReachConfig) -> Result<StgAnalysis, ReachError> {
    let exploration = explore(stg, config)?;
    let safe = exploration.safe;
    let n_transitions = stg.transitions().len();

    let dead_transitions: Vec<TransitionId> =
        (0..n_transitions).map(TransitionId).filter(|t| !exploration.fired[t.0]).collect();

    let choice_places: Vec<PlaceId> =
        (0..stg.places().len()).map(PlaceId).filter(|&p| stg.is_choice_place(p)).collect();

    let free_choice =
        choice_places.iter().all(|&p| stg.consumers(p).iter().all(|&t| stg.pre(t) == [p]));

    let input_choice_only = choice_places.iter().all(|&p| {
        stg.consumers(p).iter().all(|&t| {
            let sig = stg.transitions()[t.0].event.signal;
            stg.signals()[sig.0].kind == SignalKind::Input
        })
    });

    Ok(StgAnalysis {
        safe,
        dead_transitions,
        choice_places,
        free_choice,
        input_choice_only,
        markings: exploration.count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;
    use crate::patterns::{celement, choice, sequencer, shared_output_choice};

    fn analyze_default(stg: &Stg) -> StgAnalysis {
        analyze(stg, &ReachConfig::default()).expect("bounded")
    }

    #[test]
    fn marked_graphs_are_safe_and_choice_free() {
        let a = analyze_default(&sequencer(4, None));
        assert!(a.safe);
        assert!(a.dead_transitions.is_empty());
        assert!(a.choice_places.is_empty());
        assert!(a.free_choice && a.input_choice_only);
        assert_eq!(a.markings, 8);
    }

    #[test]
    fn celement_is_safe() {
        let a = analyze_default(&celement(3));
        assert!(a.safe);
        assert!(a.dead_transitions.is_empty());
    }

    #[test]
    fn choice_pattern_is_free_and_input_resolved() {
        let a = analyze_default(&choice(3));
        assert_eq!(a.choice_places.len(), 1);
        assert!(a.free_choice);
        assert!(a.input_choice_only);
    }

    #[test]
    fn shared_output_keeps_input_choice() {
        let a = analyze_default(&shared_output_choice(2));
        assert!(a.input_choice_only, "the choice is among input requests");
    }

    #[test]
    fn output_choice_is_flagged() {
        // A place consumed by two *output* transitions: not input-resolved.
        let src = "\
.model oc
.inputs r
.outputs a b
.graph
p a+ b+
r+ p
a+ r-
b+ r-
r- a- b-
a- r+
b- r+
.marking { <a-,r+> }
.end
";
        // Note: this net has a dead branch depending on the token game;
        // the point is only the structural classification.
        let stg = parse_g(src).unwrap();
        let a = analyze(&stg, &ReachConfig::default());
        if let Ok(a) = a {
            assert!(!a.input_choice_only);
        }
    }

    #[test]
    fn dead_transition_detected() {
        let src = "\
.model dead
.inputs a b
.graph
p a+
a+ a-
a- p
q b+
b+ q
.marking { p }
.end
";
        let stg = parse_g(src).unwrap();
        let a = analyze_default(&stg);
        // b+ never fires: its place q is never marked.
        assert_eq!(a.dead_transitions.len(), 1);
        assert_eq!(stg.transition_label(a.dead_transitions[0]), "b+");
    }

    #[test]
    fn unsafe_net_detected() {
        let src = "\
.model unsafe2
.inputs a
.graph
p a+
a+ q q2
q a-
q2 a-
a- p
.marking { p=2 }
.end
";
        let stg = parse_g(src).unwrap();
        let a = analyze_default(&stg);
        assert!(!a.safe);
    }

    #[test]
    fn symbolic_strategy_analyzes_identically() {
        use crate::reach::ReachStrategy;
        let stg = crate::patterns::pipeline(3);
        let packed = analyze(&stg, &ReachConfig::default()).unwrap();
        let symbolic = analyze(
            &stg,
            &ReachConfig { strategy: ReachStrategy::Symbolic, ..ReachConfig::default() },
        )
        .unwrap();
        assert_eq!(packed.markings, symbolic.markings);
        assert_eq!(packed.safe, symbolic.safe);
        assert_eq!(packed.dead_transitions, symbolic.dead_transitions);
        assert_eq!(packed.choice_places, symbolic.choice_places);
    }

    #[test]
    fn every_benchmark_is_safe_and_live() {
        for b in crate::benchmarks::all_benchmarks() {
            let a = analyze(&b.stg, &ReachConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(a.safe, "{} must be safe", b.name);
            assert!(a.dead_transitions.is_empty(), "{} has dead transitions", b.name);
            assert!(a.input_choice_only, "{} must resolve choice by inputs", b.name);
        }
    }
}
