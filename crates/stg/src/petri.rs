//! Signal Transition Graphs: Petri nets whose transitions are labeled with
//! signal transitions.

use simap_sg::{Event, Signal, SignalId};
use std::collections::HashMap;
use std::fmt;

/// Index of a transition in an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub usize);

/// Index of a place in an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub usize);

/// A labeled transition: a signal event plus an instance number so the same
/// event may occur several times in the net (`a+/2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// The signal transition this net transition is labeled with.
    pub event: Event,
    /// Instance number (1-based; `a+` is instance 1, `a+/2` instance 2).
    pub instance: u32,
}

/// A place, possibly implicit (anonymous place between two transitions as
/// produced by `t1 t2` arcs in the `.g` format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Name (synthesized for implicit places).
    pub name: String,
    /// For implicit places, the transition pair they connect.
    pub implicit: Option<(TransitionId, TransitionId)>,
}

/// A Signal Transition Graph.
#[derive(Debug, Clone)]
pub struct Stg {
    name: String,
    signals: Vec<Signal>,
    transitions: Vec<Transition>,
    places: Vec<Place>,
    /// Pre-places of each transition.
    pre: Vec<Vec<PlaceId>>,
    /// Post-places of each transition.
    post: Vec<Vec<PlaceId>>,
    /// Initial token count per place.
    marking: Vec<u8>,
    transition_index: HashMap<(Event, u32), TransitionId>,
}

/// Errors constructing an STG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// Unknown signal name.
    UnknownSignal(String),
    /// Transition declared twice.
    DuplicateTransition(String),
    /// Referenced transition does not exist.
    UnknownTransition(String),
    /// Referenced place does not exist.
    UnknownPlace(String),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            StgError::DuplicateTransition(s) => write!(f, "duplicate transition `{s}`"),
            StgError::UnknownTransition(s) => write!(f, "unknown transition `{s}`"),
            StgError::UnknownPlace(s) => write!(f, "unknown place `{s}`"),
        }
    }
}

impl std::error::Error for StgError {}

impl Stg {
    /// Creates an empty net over the given signals.
    pub fn new(name: impl Into<String>, signals: Vec<Signal>) -> Self {
        Stg {
            name: name.into(),
            signals,
            transitions: Vec::new(),
            places: Vec::new(),
            pre: Vec::new(),
            post: Vec::new(),
            marking: Vec::new(),
            transition_index: HashMap::new(),
        }
    }

    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared signals.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Transitions of the net.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Places of the net.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Initial marking (token count per place).
    pub fn initial_marking(&self) -> &[u8] {
        &self.marking
    }

    /// Pre-places of a transition.
    pub fn pre(&self, t: TransitionId) -> &[PlaceId] {
        &self.pre[t.0]
    }

    /// Post-places of a transition.
    pub fn post(&self, t: TransitionId) -> &[PlaceId] {
        &self.post[t.0]
    }

    /// Looks up a signal id by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals.iter().position(|s| s.name == name).map(SignalId)
    }

    /// Adds (or returns) the transition for `event` instance `instance`.
    pub fn add_transition(&mut self, event: Event, instance: u32) -> TransitionId {
        if let Some(&t) = self.transition_index.get(&(event, instance)) {
            return t;
        }
        let id = TransitionId(self.transitions.len());
        self.transitions.push(Transition { event, instance });
        self.pre.push(Vec::new());
        self.post.push(Vec::new());
        self.transition_index.insert((event, instance), id);
        id
    }

    /// Finds an existing transition.
    pub fn transition(&self, event: Event, instance: u32) -> Option<TransitionId> {
        self.transition_index.get(&(event, instance)).copied()
    }

    /// Adds a named place with `tokens` initial tokens.
    pub fn add_place(&mut self, name: impl Into<String>, tokens: u8) -> PlaceId {
        let id = PlaceId(self.places.len());
        self.places.push(Place { name: name.into(), implicit: None });
        self.marking.push(tokens);
        id
    }

    /// Looks up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// Adds an arc place → transition.
    pub fn add_arc_pt(&mut self, p: PlaceId, t: TransitionId) {
        if !self.pre[t.0].contains(&p) {
            self.pre[t.0].push(p);
        }
    }

    /// Adds an arc transition → place.
    pub fn add_arc_tp(&mut self, t: TransitionId, p: PlaceId) {
        if !self.post[t.0].contains(&p) {
            self.post[t.0].push(p);
        }
    }

    /// Adds (or reuses) the implicit place between two transitions and
    /// connects it, returning its id.
    pub fn connect(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        if let Some(pid) = self.implicit_place(from, to) {
            return pid;
        }
        let id = PlaceId(self.places.len());
        self.places.push(Place {
            name: format!("<{},{}>", self.transition_label(from), self.transition_label(to)),
            implicit: Some((from, to)),
        });
        self.marking.push(0);
        self.post[from.0].push(id);
        self.pre[to.0].push(id);
        id
    }

    /// The implicit place between two transitions, if present.
    pub fn implicit_place(&self, from: TransitionId, to: TransitionId) -> Option<PlaceId> {
        self.places.iter().position(|p| p.implicit == Some((from, to))).map(PlaceId)
    }

    /// Sets the token count of a place.
    pub fn set_marking(&mut self, p: PlaceId, tokens: u8) {
        self.marking[p.0] = tokens;
    }

    /// Marks the implicit place between two transitions with one token.
    ///
    /// # Errors
    /// Fails with [`StgError::UnknownPlace`] when no such implicit place
    /// exists.
    pub fn mark_between(&mut self, from: TransitionId, to: TransitionId) -> Result<(), StgError> {
        match self.implicit_place(from, to) {
            Some(p) => {
                self.marking[p.0] = 1;
                Ok(())
            }
            None => Err(StgError::UnknownPlace(format!(
                "<{},{}>",
                self.transition_label(from),
                self.transition_label(to)
            ))),
        }
    }

    /// Human-readable label of a transition (`a+`, `b-/2`).
    pub fn transition_label(&self, t: TransitionId) -> String {
        let tr = &self.transitions[t.0];
        let base = tr.event.display_with(|s| self.signals[s.0].name.clone());
        if tr.instance > 1 {
            format!("{base}/{}", tr.instance)
        } else {
            base
        }
    }

    /// Transitions consuming from a place.
    pub fn consumers(&self, p: PlaceId) -> Vec<TransitionId> {
        (0..self.transitions.len())
            .map(TransitionId)
            .filter(|t| self.pre[t.0].contains(&p))
            .collect()
    }

    /// Transitions producing into a place.
    pub fn producers(&self, p: PlaceId) -> Vec<TransitionId> {
        (0..self.transitions.len())
            .map(TransitionId)
            .filter(|t| self.post[t.0].contains(&p))
            .collect()
    }

    /// A place is a *choice* place when several transitions consume from it.
    pub fn is_choice_place(&self, p: PlaceId) -> bool {
        self.consumers(p).len() > 1
    }

    /// Whether the net is a marked graph (no choice, no merge places).
    pub fn is_marked_graph(&self) -> bool {
        (0..self.places.len())
            .map(PlaceId)
            .all(|p| self.consumers(p).len() <= 1 && self.producers(p).len() <= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_sg::SignalKind;

    fn two_sig() -> Vec<Signal> {
        vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)]
    }

    #[test]
    fn build_simple_ring() {
        let mut stg = Stg::new("ring", two_sig());
        let a = SignalId(0);
        let b = SignalId(1);
        let ap = stg.add_transition(Event::rise(a), 1);
        let bp = stg.add_transition(Event::rise(b), 1);
        let am = stg.add_transition(Event::fall(a), 1);
        let bm = stg.add_transition(Event::fall(b), 1);
        stg.connect(ap, bp);
        stg.connect(bp, am);
        stg.connect(am, bm);
        stg.connect(bm, ap);
        stg.mark_between(bm, ap).unwrap();
        assert_eq!(stg.transitions().len(), 4);
        assert_eq!(stg.places().len(), 4);
        assert_eq!(stg.initial_marking().iter().sum::<u8>(), 1);
        assert!(stg.is_marked_graph());
    }

    #[test]
    fn transitions_are_shared() {
        let mut stg = Stg::new("t", two_sig());
        let t1 = stg.add_transition(Event::rise(SignalId(0)), 1);
        let t2 = stg.add_transition(Event::rise(SignalId(0)), 1);
        assert_eq!(t1, t2);
        let t3 = stg.add_transition(Event::rise(SignalId(0)), 2);
        assert_ne!(t1, t3);
        assert_eq!(stg.transition_label(t3), "a+/2");
    }

    #[test]
    fn explicit_places_and_choice() {
        let mut stg = Stg::new("choice", two_sig());
        let p = stg.add_place("p0", 1);
        let t1 = stg.add_transition(Event::rise(SignalId(0)), 1);
        let t2 = stg.add_transition(Event::rise(SignalId(1)), 1);
        stg.add_arc_pt(p, t1);
        stg.add_arc_pt(p, t2);
        assert!(stg.is_choice_place(p));
        assert!(!stg.is_marked_graph());
        assert_eq!(stg.place_by_name("p0"), Some(p));
    }

    #[test]
    fn mark_between_unknown_fails() {
        let mut stg = Stg::new("x", two_sig());
        let t1 = stg.add_transition(Event::rise(SignalId(0)), 1);
        let t2 = stg.add_transition(Event::fall(SignalId(0)), 1);
        assert!(stg.mark_between(t1, t2).is_err());
    }
}
