//! # simap-stg
//!
//! Signal Transition Graphs (STGs): Petri nets labeled with signal
//! transitions, the `.g` textual format used by the asynchronous-circuit
//! benchmark suites, token-game reachability into
//! [`simap_sg::StateGraph`]s, parametric specification generators, and the
//! reconstructed 32-circuit benchmark set of the paper's Table 1.
//!
//! ```
//! let stg = simap_stg::parse_g(
//!     ".model ring\n.inputs a\n.outputs b\n.graph\n\
//!      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
//! )?;
//! let sg = simap_stg::elaborate(&stg)?;
//! assert_eq!(sg.state_count(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Reachability strategies
//!
//! Elaboration runs on one of four engines selected by
//! [`ReachConfig::strategy`]:
//!
//! * [`ReachStrategy::Packed`] (default) — markings are bit-packed `u64`
//!   words in one contiguous arena, interned through a hash-to-index
//!   table, with per-transition enable/fire masks and incrementally
//!   maintained enabled sets; [`ReachConfig::jobs`] adds parallel
//!   frontier expansion. See [`reach`] for the full architecture.
//! * [`ReachStrategy::Explicit`] — the legacy explicit BFS
//!   (`Vec<u8>` markings, `HashMap` interning). Keep it in mind whenever
//!   you need an independent oracle: it shares almost no code with the
//!   packed engine yet must produce byte-identical graphs and errors,
//!   which is exactly what `tests/reach_differential.rs` checks.
//! * [`ReachStrategy::Symbolic`] — BDD fixed-point reachability for
//!   1-safe nets ([`symbolic`]): the reachable set as a Boolean function
//!   over an interleaved current/next variable order, images by
//!   relational product. It wins when the state space, not the graph, is
//!   the question — the exact count, per-signal excitation/quiescence
//!   region sizes and the CSC conflict codes come straight out of the
//!   BDD, so nets past the enumerative [`ReachError::StateLimit`] remain
//!   analyzable through [`reach_symbolic`]. An explicit graph
//!   (byte-identical to the other strategies, with the symbolic count
//!   cross-checked against the packed core) is materialized only up to
//!   [`ReachConfig::materialize_limit`].
//! * [`ReachStrategy::Spill`] — the external-memory engine ([`extmem`]):
//!   the packed token game with a file-backed sharded state arena, a
//!   spill-to-disk BFS frontier and a spilled edge log, so peak resident
//!   memory is bounded by [`ReachConfig::memory_budget`] instead of by
//!   the state count. Reach for it when a net you need *materialized*
//!   (regions, CSC, mapping — not just counted) outgrows RAM or the
//!   symbolic engine's [`ReachConfig::materialize_limit`]; expect
//!   scratch-disk usage in [`ReachConfig::spill_dir`] on the order of
//!   `states × (marking + enabled-mask bytes)` plus two words per edge,
//!   all removed when the run ends. [`ReachConfig::jobs`] parallelizes
//!   spill frontier expansion exactly as it does the packed engine —
//!   workers fire a batch of frontier records, results merge in
//!   (source, transition) order — so the graph stays byte-identical at
//!   any fan-out. Knobs: [`ReachConfig::memory_budget`] (default
//!   256 MiB), [`ReachConfig::spill_dir`], [`ReachConfig::shards`],
//!   [`ReachConfig::jobs`].
//!
//! ## Long-running elaborations
//!
//! A spill run that takes hours can checkpoint and survive a crash:
//! with [`ReachConfig::checkpoint_every`] set to a level cadence and
//! [`ReachConfig::checkpoint_dir`] to a directory, the engine snapshots
//! its whole exploration state — state arena, shard intern tables,
//! pending frontier, edge log — after every N-th BFS level, under a
//! checksummed manifest recording the engine version plus digests of
//! the net and the exploration config, committed atomically
//! (temp-file-and-rename) so a crash mid-write never corrupts the
//! previous snapshot. [`ReachConfig::resume`] pointed at that directory
//! validates the manifest (refusing mismatched nets/configs by naming
//! both digests, and corrupt artifacts by name) and continues the BFS
//! from the recorded level; the finished graph is byte-identical to an
//! uninterrupted run, and on success the checkpoint is cleaned away.
//! Dense cadences shrink the re-exploration window after a crash but
//! pay a write per cadence; the checkpoint write overhead is tracked by
//! `bench run --record`. Only `max_states`, `max_tokens` and `shards`
//! are pinned by the config digest — `jobs` and `memory_budget` may
//! change across a resume because neither affects the result bytes.
//! Checkpoints are cut at level boundaries only, so they stay
//! level-consistent under any frontier fan-out.
//!
//! The enumerative strategies explore in the same BFS order, so graphs,
//! state numbering and [`ReachError`] values never depend on the engine
//! or on the number of worker threads — and symbolic materialization
//! reuses the packed core, so the guarantee extends to all three for
//! 1-safe nets. The one divergence is the symbolic scope boundary:
//! nets that are not 1-safe fail fast with [`ReachError::NotSafe`]
//! where the enumerative engines would go on to succeed or report
//! `Unbounded`/`StateLimit`/`Inconsistent`.
//! [`elaborate_with_stats`] additionally reports visited/interned/edge
//! counters for observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod benchmarks;
pub mod extmem;
pub mod parse;
pub mod patterns;
pub mod petri;
pub mod reach;
pub mod symbolic;
pub mod write;

pub use analysis::{analyze, StgAnalysis};
pub use benchmarks::{all_benchmarks, benchmark, benchmark_names, Benchmark, BenchmarkRegistry};
pub use extmem::SpillCounters;
pub use parse::{
    parse_g, ParseStgError, MAX_ARCS, MAX_LINE_BYTES, MAX_PLACES, MAX_SIGNALS, MAX_TRANSITIONS,
};
pub use petri::{Place, PlaceId, Stg, StgError, Transition, TransitionId};
pub use reach::{
    elaborate, elaborate_with, elaborate_with_stats, ReachConfig, ReachError, ReachStats,
    ReachStrategy,
};
pub use symbolic::{reach_symbolic, SymbolicReach, SymbolicRegions, MAX_CONFLICT_CODES};
pub use write::write_g;
