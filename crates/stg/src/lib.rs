//! # simap-stg
//!
//! Signal Transition Graphs (STGs): Petri nets labeled with signal
//! transitions, the `.g` textual format used by the asynchronous-circuit
//! benchmark suites, token-game reachability into
//! [`simap_sg::StateGraph`]s, parametric specification generators, and the
//! reconstructed 32-circuit benchmark set of the paper's Table 1.
//!
//! ```
//! let stg = simap_stg::parse_g(
//!     ".model ring\n.inputs a\n.outputs b\n.graph\n\
//!      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
//! )?;
//! let sg = simap_stg::elaborate(&stg)?;
//! assert_eq!(sg.state_count(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod benchmarks;
pub mod parse;
pub mod patterns;
pub mod petri;
pub mod reach;
pub mod write;

pub use analysis::{analyze, StgAnalysis};
pub use benchmarks::{all_benchmarks, benchmark, benchmark_names, Benchmark, BenchmarkRegistry};
pub use parse::{parse_g, ParseStgError};
pub use petri::{Place, PlaceId, Stg, StgError, Transition, TransitionId};
pub use reach::{elaborate, elaborate_with, ReachConfig, ReachError};
pub use write::write_g;
