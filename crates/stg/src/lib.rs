//! # simap-stg
//!
//! Signal Transition Graphs (STGs): Petri nets labeled with signal
//! transitions, the `.g` textual format used by the asynchronous-circuit
//! benchmark suites, token-game reachability into
//! [`simap_sg::StateGraph`]s, parametric specification generators, and the
//! reconstructed 32-circuit benchmark set of the paper's Table 1.
//!
//! ```
//! let stg = simap_stg::parse_g(
//!     ".model ring\n.inputs a\n.outputs b\n.graph\n\
//!      a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
//! )?;
//! let sg = simap_stg::elaborate(&stg)?;
//! assert_eq!(sg.state_count(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Reachability strategies
//!
//! Elaboration runs on one of two engines selected by
//! [`ReachConfig::strategy`]:
//!
//! * [`ReachStrategy::Packed`] (default) — markings are bit-packed `u64`
//!   words in one contiguous arena, interned through a hash-to-index
//!   table, with per-transition enable/fire masks and incrementally
//!   maintained enabled sets; [`ReachConfig::jobs`] adds parallel
//!   frontier expansion. See [`reach`] for the full architecture.
//! * [`ReachStrategy::Explicit`] — the legacy explicit BFS
//!   (`Vec<u8>` markings, `HashMap` interning). Keep it in mind whenever
//!   you need an independent oracle: it shares almost no code with the
//!   packed engine yet must produce byte-identical graphs and errors,
//!   which is exactly what `tests/reach_differential.rs` checks.
//!
//! Both strategies explore in the same BFS order, so graphs, state
//! numbering and [`ReachError`] values never depend on the engine or on
//! the number of worker threads. [`elaborate_with_stats`] additionally
//! reports visited/interned/edge counters for observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod benchmarks;
pub mod parse;
pub mod patterns;
pub mod petri;
pub mod reach;
pub mod write;

pub use analysis::{analyze, StgAnalysis};
pub use benchmarks::{all_benchmarks, benchmark, benchmark_names, Benchmark, BenchmarkRegistry};
pub use parse::{parse_g, ParseStgError};
pub use petri::{Place, PlaceId, Stg, StgError, Transition, TransitionId};
pub use reach::{
    elaborate, elaborate_with, elaborate_with_stats, ReachConfig, ReachError, ReachStats,
    ReachStrategy,
};
pub use write::write_g;
