//! Parametric STG generators: the structural building blocks the named
//! benchmark suite is assembled from (and the scaling-sweep workloads).
//!
//! Every generator produces a consistent, speed-independent, CSC-correct
//! specification (asserted by the test-suite through full elaboration and
//! property checking).

use crate::petri::{Stg, TransitionId};
use simap_sg::{Event, Signal, SignalId, SignalKind};

/// A sequencer ring: `s0+ ; s1+ ; … ; s(k-1)+ ; s0- ; … ; s(k-1)-`.
///
/// Signal kinds alternate Input/Output starting with Input unless `kinds`
/// overrides them.
pub fn sequencer(k: usize, kinds: Option<Vec<SignalKind>>) -> Stg {
    assert!(k >= 2, "sequencer needs at least two signals");
    let kinds = kinds.unwrap_or_else(|| {
        (0..k).map(|i| if i % 2 == 0 { SignalKind::Input } else { SignalKind::Output }).collect()
    });
    let signals: Vec<Signal> =
        kinds.iter().enumerate().map(|(i, &kind)| Signal::new(format!("s{i}"), kind)).collect();
    let mut stg = Stg::new(format!("seq{k}"), signals);
    let rises: Vec<TransitionId> =
        (0..k).map(|i| stg.add_transition(Event::rise(SignalId(i)), 1)).collect();
    let falls: Vec<TransitionId> =
        (0..k).map(|i| stg.add_transition(Event::fall(SignalId(i)), 1)).collect();
    for i in 0..k - 1 {
        stg.connect(rises[i], rises[i + 1]);
        stg.connect(falls[i], falls[i + 1]);
    }
    stg.connect(rises[k - 1], falls[0]);
    stg.connect(falls[k - 1], rises[0]);
    stg.mark_between(falls[k - 1], rises[0]).expect("arc exists");
    stg
}

/// A `k`-input Muller C-element specification: output `c` rises after all
/// inputs rise and falls after all inputs fall. The monotonous covers of
/// `c` are the `k`-literal cubes `a0·…·a(k-1)` and `ā0·…·ā(k-1)` — the
/// high-fanin gates of the paper's `mr0`/`vbe10b` experiments.
pub fn celement(k: usize) -> Stg {
    assert!((1..=16).contains(&k));
    let mut signals: Vec<Signal> =
        (0..k).map(|i| Signal::new(format!("a{i}"), SignalKind::Input)).collect();
    signals.push(Signal::new("c", SignalKind::Output));
    let c = SignalId(k);
    let mut stg = Stg::new(format!("celem{k}"), signals);
    let cp = stg.add_transition(Event::rise(c), 1);
    let cm = stg.add_transition(Event::fall(c), 1);
    for i in 0..k {
        let ap = stg.add_transition(Event::rise(SignalId(i)), 1);
        let am = stg.add_transition(Event::fall(SignalId(i)), 1);
        stg.connect(ap, cp);
        stg.connect(cp, am);
        stg.connect(am, cm);
        stg.connect(cm, ap);
        stg.mark_between(cm, ap).expect("arc exists");
    }
    stg
}

/// A fork/join controller: one request input `r`, `m` parallel chains of
/// `depth` output signals each, and a completion output `done` that joins
/// the chains; mirrored for the falling phase.
pub fn fork_join(m: usize, depth: usize) -> Stg {
    assert!(m >= 1 && depth >= 1);
    let mut signals = vec![Signal::new("r", SignalKind::Input)];
    for i in 0..m {
        for j in 0..depth {
            signals.push(Signal::new(format!("x{i}_{j}"), SignalKind::Output));
        }
    }
    signals.push(Signal::new("done", SignalKind::Output));
    let r = SignalId(0);
    let done = SignalId(1 + m * depth);
    let sig = |i: usize, j: usize| SignalId(1 + i * depth + j);

    let mut stg = Stg::new(format!("fj{m}x{depth}"), signals);
    let rp = stg.add_transition(Event::rise(r), 1);
    let rm = stg.add_transition(Event::fall(r), 1);
    let dp = stg.add_transition(Event::rise(done), 1);
    let dm = stg.add_transition(Event::fall(done), 1);
    for i in 0..m {
        let mut prev_rise = rp;
        let mut prev_fall = rm;
        for j in 0..depth {
            let xr = stg.add_transition(Event::rise(sig(i, j)), 1);
            let xf = stg.add_transition(Event::fall(sig(i, j)), 1);
            stg.connect(prev_rise, xr);
            stg.connect(prev_fall, xf);
            prev_rise = xr;
            prev_fall = xf;
        }
        stg.connect(prev_rise, dp);
        stg.connect(prev_fall, dm);
    }
    stg.connect(dp, rm);
    stg.connect(dm, rp);
    stg.mark_between(dm, rp).expect("arc exists");
    stg
}

/// A Muller pipeline control chain of `n` stages: signal `c0` is the
/// environment's request, `c1..=cn` are stage-control outputs. Adjacent
/// stages are coupled by the classic 4-cycle
/// `ci+ → ci+1+ → ci− → ci+1− → ci+`, so a new token may enter a stage
/// only after the next stage has emptied — the canonical asynchronous
/// pipeline behaviour.
pub fn pipeline(n: usize) -> Stg {
    assert!(n >= 1);
    let mut signals = vec![Signal::new("c0", SignalKind::Input)];
    for i in 1..=n {
        signals.push(Signal::new(format!("c{i}"), SignalKind::Output));
    }
    let mut stg = Stg::new(format!("pipe{n}"), signals);
    let rise: Vec<TransitionId> =
        (0..=n).map(|i| stg.add_transition(Event::rise(SignalId(i)), 1)).collect();
    let fall: Vec<TransitionId> =
        (0..=n).map(|i| stg.add_transition(Event::fall(SignalId(i)), 1)).collect();
    for i in 0..n {
        stg.connect(rise[i], rise[i + 1]);
        stg.connect(rise[i + 1], fall[i]);
        stg.connect(fall[i], fall[i + 1]);
        stg.connect(fall[i + 1], rise[i]);
        stg.mark_between(fall[i + 1], rise[i]).expect("arc exists");
    }
    stg
}

/// An input-choice dispatcher: the environment picks one of `k` request
/// inputs `r_i`; the circuit answers with output `a_i`; four-phase return
/// to zero. A free-choice place models the selection.
pub fn choice(k: usize) -> Stg {
    assert!(k >= 2);
    let mut signals = Vec::new();
    for i in 0..k {
        signals.push(Signal::new(format!("r{i}"), SignalKind::Input));
    }
    for i in 0..k {
        signals.push(Signal::new(format!("a{i}"), SignalKind::Output));
    }
    let mut stg = Stg::new(format!("choice{k}"), signals);
    let idle = stg.add_place("idle", 1);
    for i in 0..k {
        let rp = stg.add_transition(Event::rise(SignalId(i)), 1);
        let ap = stg.add_transition(Event::rise(SignalId(k + i)), 1);
        let rm = stg.add_transition(Event::fall(SignalId(i)), 1);
        let am = stg.add_transition(Event::fall(SignalId(k + i)), 1);
        stg.add_arc_pt(idle, rp);
        stg.connect(rp, ap);
        stg.connect(ap, rm);
        stg.connect(rm, am);
        stg.add_arc_tp(am, idle);
    }
    stg
}

/// A shared-output dispatcher: like [`choice`] but every branch drives the
/// *same* output `x` (distinct transition instances), giving `x` several
/// excitation regions.
pub fn shared_output_choice(k: usize) -> Stg {
    assert!(k >= 2);
    let mut signals = Vec::new();
    for i in 0..k {
        signals.push(Signal::new(format!("r{i}"), SignalKind::Input));
    }
    signals.push(Signal::new("x", SignalKind::Output));
    let x = SignalId(k);
    let mut stg = Stg::new(format!("shared{k}"), signals);
    let idle = stg.add_place("idle", 1);
    for i in 0..k {
        let rp = stg.add_transition(Event::rise(SignalId(i)), 1);
        let xp = stg.add_transition(Event::rise(x), (i + 1) as u32);
        let rm = stg.add_transition(Event::fall(SignalId(i)), 1);
        let xm = stg.add_transition(Event::fall(x), (i + 1) as u32);
        stg.add_arc_pt(idle, rp);
        stg.connect(rp, xp);
        stg.connect(xp, rm);
        stg.connect(rm, xm);
        stg.add_arc_tp(xm, idle);
    }
    stg
}

/// Disjoint parallel composition: runs the given STGs concurrently with
/// signals renamed `p{index}_{original}`. State space is the product.
pub fn parallel(name: &str, parts: &[Stg]) -> Stg {
    let mut signals = Vec::new();
    for (idx, part) in parts.iter().enumerate() {
        for s in part.signals() {
            signals.push(Signal::new(format!("p{idx}_{}", s.name), s.kind));
        }
    }
    let mut stg = Stg::new(name, signals);
    let mut base = 0usize;
    for (idx, part) in parts.iter().enumerate() {
        // Transitions.
        let tmap: Vec<TransitionId> = part
            .transitions()
            .iter()
            .map(|t| {
                let ev =
                    Event { signal: SignalId(t.event.signal.0 + base), rising: t.event.rising };
                stg.add_transition(ev, t.instance)
            })
            .collect();
        // Places and arcs.
        for (pi, place) in part.places().iter().enumerate() {
            let pid = match place.implicit {
                Some((from, to)) => stg.connect(tmap[from.0], tmap[to.0]),
                None => {
                    let np = stg.add_place(format!("p{idx}_{}", place.name), 0);
                    for t in part.consumers(crate::petri::PlaceId(pi)) {
                        stg.add_arc_pt(np, tmap[t.0]);
                    }
                    for t in part.producers(crate::petri::PlaceId(pi)) {
                        stg.add_arc_tp(tmap[t.0], np);
                    }
                    np
                }
            };
            stg.set_marking(pid, part.initial_marking()[pi]);
        }
        base += part.signals().len();
    }
    stg
}

/// Deterministic SplitMix64 stream used by the corpus generator — the
/// same construction as the offline proptest shim, kept local so corpus
/// bytes never depend on another crate's evolution.
#[derive(Clone, Debug)]
pub struct CorpusRng {
    state: u64,
}

impl CorpusRng {
    /// A stream whose output is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        CorpusRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn random_part(rng: &mut CorpusRng) -> Stg {
    match rng.below(6) {
        0 => sequencer(2 + rng.below(4) as usize, None),
        1 => celement(2 + rng.below(3) as usize),
        2 => fork_join(1 + rng.below(2) as usize, 1 + rng.below(2) as usize),
        3 => pipeline(1 + rng.below(3) as usize),
        4 => choice(2 + rng.below(2) as usize),
        _ => shared_output_choice(2 + rng.below(2) as usize),
    }
}

/// The `index`-th net of the seeded corpus: a composition of one or two
/// randomly parameterized pattern families, named
/// `gen_{seed:016x}_{index}`. A pure function of `(seed, index)`, so
/// corpora are byte-reproducible (via [`crate::write_g`]) across runs and
/// machines, and every net inherits the generators' guarantee of being
/// consistent, speed-independent and CSC-correct.
pub fn corpus_net(seed: u64, index: u64) -> Stg {
    let mut rng = CorpusRng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
    let name = format!("gen_{seed:016x}_{index}");
    if rng.below(2) == 0 {
        renamed(random_part(&mut rng), &name)
    } else {
        let parts = [random_part(&mut rng), random_part(&mut rng)];
        parallel(&name, &parts)
    }
}

/// The first `count` nets of the corpus for `seed` — the backing of
/// `simap gen --seed S --count N`. Cheap to produce at 10^4–10^5 scale:
/// each net is built in microseconds, independent of `count`.
pub fn corpus(seed: u64, count: usize) -> impl Iterator<Item = Stg> {
    (0..count as u64).map(move |i| corpus_net(seed, i))
}

/// Renames the net (handy when assembling named benchmarks).
pub fn renamed(mut stg: Stg, name: &str) -> Stg {
    stg = Stg::new(name, stg.signals().to_vec()).merged_from(stg);
    stg
}

impl Stg {
    /// Internal helper for [`renamed`]: copies structure from `other` into
    /// an empty net with the same signals.
    fn merged_from(mut self, other: Stg) -> Stg {
        let tmap: Vec<TransitionId> =
            other.transitions().iter().map(|t| self.add_transition(t.event, t.instance)).collect();
        for (pi, place) in other.places().iter().enumerate() {
            let pid = match place.implicit {
                Some((from, to)) => self.connect(tmap[from.0], tmap[to.0]),
                None => {
                    let np = self.add_place(place.name.clone(), 0);
                    for t in other.consumers(crate::petri::PlaceId(pi)) {
                        self.add_arc_pt(np, tmap[t.0]);
                    }
                    for t in other.producers(crate::petri::PlaceId(pi)) {
                        self.add_arc_tp(tmap[t.0], np);
                    }
                    np
                }
            };
            self.set_marking(pid, other.initial_marking()[pi]);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::elaborate;
    use simap_sg::check_all;

    fn assert_clean(stg: &Stg) {
        let sg = elaborate(stg).unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let report = check_all(&sg);
        assert!(report.is_ok(), "{}: {:?}", stg.name(), report.violations);
    }

    #[test]
    fn sequencer_is_clean() {
        for k in 2..=6 {
            assert_clean(&sequencer(k, None));
        }
    }

    #[test]
    fn sequencer_state_count() {
        let sg = elaborate(&sequencer(4, None)).unwrap();
        assert_eq!(sg.state_count(), 8);
    }

    #[test]
    fn celement_is_clean() {
        for k in 2..=7 {
            assert_clean(&celement(k));
        }
    }

    #[test]
    fn celement_state_count() {
        // Rising-phase subsets with c=0 plus falling-phase subsets with c=1.
        let sg = elaborate(&celement(3)).unwrap();
        assert_eq!(sg.state_count(), 16);
    }

    #[test]
    fn fork_join_is_clean() {
        assert_clean(&fork_join(2, 1));
        assert_clean(&fork_join(3, 2));
    }

    #[test]
    fn choice_is_clean() {
        assert_clean(&choice(2));
        assert_clean(&choice(3));
    }

    #[test]
    fn pipeline_is_clean() {
        for n in 1..=5 {
            assert_clean(&pipeline(n));
        }
    }

    #[test]
    fn pipeline_state_counts_grow() {
        // The composed handshakes give strictly growing (Fibonacci-like)
        // state counts.
        let counts: Vec<usize> =
            (1..=5).map(|n| elaborate(&pipeline(n)).unwrap().state_count()).collect();
        assert_eq!(counts[0], 4);
        for w in counts.windows(2) {
            assert!(w[1] > w[0], "{counts:?}");
        }
    }

    #[test]
    fn shared_output_choice_has_multiple_regions() {
        let stg = shared_output_choice(2);
        assert_clean(&stg);
        let sg = elaborate(&stg).unwrap();
        let x = sg.signal_by_name("x").unwrap();
        let regs = simap_sg::regions_of(&sg, Event::rise(x));
        assert_eq!(regs.len(), 2, "x+ should have two excitation regions");
    }

    #[test]
    fn parallel_composition_is_clean() {
        let combined = parallel("combo", &[sequencer(2, None), celement(2)]);
        assert_clean(&combined);
        let sg = elaborate(&combined).unwrap();
        assert_eq!(sg.state_count(), 4 * 8);
    }

    #[test]
    fn renamed_keeps_structure() {
        let stg = renamed(celement(2), "fancy");
        assert_eq!(stg.name(), "fancy");
        assert_clean(&stg);
    }

    #[test]
    fn corpus_is_byte_reproducible() {
        let a: Vec<String> = corpus(42, 16).map(|stg| crate::write_g(&stg)).collect();
        let b: Vec<String> = corpus(42, 16).map(|stg| crate::write_g(&stg)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_seeds_differ() {
        let a: Vec<String> = corpus(1, 8).map(|stg| crate::write_g(&stg)).collect();
        let b: Vec<String> = corpus(2, 8).map(|stg| crate::write_g(&stg)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn corpus_nets_are_clean_and_roundtrip() {
        for stg in corpus(7, 8) {
            assert_clean(&stg);
            // First trip may renumber ids; from then on write∘parse is the
            // byte identity.
            let t1 = crate::write_g(&stg);
            let s2 = crate::parse_g(&t1).unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            let t2 = crate::write_g(&s2);
            let s3 = crate::parse_g(&t2).unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            assert_eq!(crate::write_g(&s3), t2, "{}", stg.name());
        }
    }
}
