//! The 32-circuit benchmark suite of the paper's Table 1.
//!
//! The original asynchronous benchmark `.g` files (distributed with
//! SIS/petrify) are not available offline; per DESIGN.md §3 each circuit is
//! *reconstructed* as a deterministic STG with the structure its original
//! is known to embody — handshake sequencers, wide C-element joins
//! (`mr0`, `vbe10b`), fork/join controllers, input-choice dispatchers —
//! sized so the initial monotonous-cover implementation has a comparable
//! gate-complexity profile. Every specification is machine-checked
//! (consistency, determinism, commutativity, output persistency, CSC) by
//! the test-suite.
//!
//! A few small classics (`hazard`, `dff`, `half`, `chu133`, `ebergen`,
//! `vbe5b`, `converta`, `chu150`) are written out as `.g` source text and
//! go through the parser, exercising the full front-end path.

use crate::parse::parse_g;
use crate::patterns::{
    celement, choice, fork_join, parallel, renamed, sequencer, shared_output_choice,
};
use crate::petri::Stg;
use simap_sg::SignalKind;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A named benchmark specification.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Table 1 circuit name.
    pub name: &'static str,
    /// The specification.
    pub stg: Stg,
}

/// The `hazard.g` reconstruction used throughout the paper's running
/// example: two inputs `a`, `b`, two outputs `x`, `y`. After `y+` the
/// three transitions `a-`, `b-`, `x-` are mutually concurrent and all
/// trigger `y-`, so the reset cover of `y` is the 3-literal cube
/// `ā·b̄·x̄` — the single-cube cover whose decomposition into 2-input
/// gates is the paper's Fig. 1 walkthrough.
pub const HAZARD_G: &str = "\
# hazard -- running example of the paper (reconstruction)
.model hazard
.inputs a b
.outputs x y
.graph
a+ x+
x+ b+
b+ y+
y+ a- b- x-
a- y-
b- y-
x- y-
y- a+
.marking { <y-,a+> }
.end
";

/// D-flip-flop-style controller: `q` samples `d` on the rising clock `c`.
pub const DFF_G: &str = "\
.model dff
.inputs d c
.outputs q
.graph
d+ c+
c+ q+
q+ c-
c- d-
d- c+/2
c+/2 q-
q- c-/2
c-/2 d+
.marking { <c-/2,d+> }
.end
";

/// Three-signal toy: one request, two phased responses.
pub const HALF_G: &str = "\
.model half
.inputs a
.outputs b c
.graph
a+ b+
b+ a-
a- c+
c+ b-
b- c-
c- a+
.marking { <c-,a+> }
.end
";

/// Fork/join with one request input and a completion output.
pub const CHU133_G: &str = "\
.model chu133
.inputs a
.outputs b c d
.graph
a+ b+ c+
b+ d+
c+ d+
d+ a-
a- b- c-
b- d-
c- d-
d- a+
.marking { <d-,a+> }
.end
";

/// Asymmetric fork/join (one branch has an extra stage).
pub const CHU150_G: &str = "\
.model chu150
.inputs a
.outputs b c d e
.graph
a+ b+ c+
b+ e+
e+ d+
c+ d+
d+ a-
a- b- c-
b- e-
e- d-
c- d-
d- a+
.marking { <d-,a+> }
.end
";

/// Two concurrent handshakes joined by a completion signal.
pub const VBE5B_G: &str = "\
.model vbe5b
.inputs a b
.outputs x y z
.graph
a+ x+
b+ y+
x+ z+
y+ z+
z+ a- b-
a- x-
b- y-
x- z-
y- z-
z- a+ b+
.marking { <z-,a+> <z-,b+> }
.end
";

/// Handshake distributor: `a` then two phased grants with a shared return.
pub const EBERGEN_G: &str = "\
.model ebergen
.inputs a
.outputs c d e
.graph
a+ c+
c+ d+ e+
d+ a-
e+ a-
a- c-
c- d- e-
d- a+
e- a+
.marking { <d-,a+> <e-,a+> }
.end
";

/// Four-phase protocol converter with an internal state signal.
pub const CONVERTA_G: &str = "\
.model converta
.inputs r
.outputs a b
.internal s
.graph
r+ a+
a+ s+
s+ r-
r- b+
b+ a-
a- s-
s- b-
b- r+
.marking { <b-,r+> }
.end
";

/// Returns the list of benchmark names in Table 1 order.
pub fn benchmark_names() -> &'static [&'static str] {
    &[
        "alloc-outbound",
        "chu133",
        "chu150",
        "converta",
        "dff",
        "ebergen",
        "half",
        "hazard",
        "master-read",
        "mmu",
        "mp-forward-pkt",
        "mr0",
        "mr1",
        "nak-pa",
        "nowick",
        "pe-rcv-ifc",
        "pe-send-ifc",
        "ram-read-sbuf",
        "rcv-setup",
        "rdft",
        "sbuf-ram-write",
        "sbuf-send-ctl",
        "sbuf-send-pkt2",
        "seqmix",
        "seq4",
        "trimos-send",
        "tsend-bm",
        "vbe5b",
        "vbe5c",
        "vbe6a",
        "vbe10b",
        "wrdatab",
    ]
}

/// Builds the benchmark with the given Table 1 name, or `None` for an
/// unknown name.
pub fn benchmark(name: &str) -> Option<Stg> {
    let from_g = |src: &str| parse_g(src).expect("embedded benchmark must parse");
    let stg = match name {
        "alloc-outbound" => {
            renamed(parallel("t", &[choice(2), sequencer(2, None)]), "alloc-outbound")
        }
        "chu133" => from_g(CHU133_G),
        "chu150" => from_g(CHU150_G),
        "converta" => from_g(CONVERTA_G),
        "dff" => from_g(DFF_G),
        "ebergen" => from_g(EBERGEN_G),
        "half" => from_g(HALF_G),
        "hazard" => from_g(HAZARD_G),
        "master-read" => renamed(parallel("t", &[fork_join(2, 2), celement(3)]), "master-read"),
        "mmu" => renamed(parallel("t", &[celement(4), sequencer(3, None)]), "mmu"),
        "mp-forward-pkt" => renamed(fork_join(2, 1), "mp-forward-pkt"),
        "mr0" => renamed(parallel("t", &[celement(6), celement(4)]), "mr0"),
        "mr1" => renamed(parallel("t", &[celement(5), sequencer(3, None)]), "mr1"),
        "nak-pa" => renamed(fork_join(3, 2), "nak-pa"),
        "nowick" => renamed(choice(3), "nowick"),
        "pe-rcv-ifc" => {
            renamed(parallel("t", &[shared_output_choice(2), fork_join(2, 2)]), "pe-rcv-ifc")
        }
        "pe-send-ifc" => renamed(parallel("t", &[celement(6), choice(2)]), "pe-send-ifc"),
        "ram-read-sbuf" => {
            renamed(parallel("t", &[fork_join(2, 1), sequencer(4, None)]), "ram-read-sbuf")
        }
        "rcv-setup" => renamed(choice(2), "rcv-setup"),
        "rdft" => renamed(sequencer(5, None), "rdft"),
        "sbuf-ram-write" => renamed(fork_join(2, 2), "sbuf-ram-write"),
        "sbuf-send-ctl" => {
            renamed(parallel("t", &[celement(3), sequencer(2, None)]), "sbuf-send-ctl")
        }
        "sbuf-send-pkt2" => renamed(parallel("t", &[choice(2), fork_join(2, 1)]), "sbuf-send-pkt2"),
        "seqmix" => renamed(parallel("t", &[sequencer(3, None), choice(2)]), "seqmix"),
        "seq4" => renamed(
            sequencer(
                5,
                Some(vec![
                    SignalKind::Input,
                    SignalKind::Output,
                    SignalKind::Output,
                    SignalKind::Output,
                    SignalKind::Output,
                ]),
            ),
            "seq4",
        ),
        "trimos-send" => renamed(parallel("t", &[celement(4), fork_join(2, 1)]), "trimos-send"),
        "tsend-bm" => renamed(parallel("t", &[celement(5), choice(2)]), "tsend-bm"),
        "vbe5b" => from_g(VBE5B_G),
        "vbe5c" => renamed(
            sequencer(
                5,
                Some(vec![
                    SignalKind::Input,
                    SignalKind::Output,
                    SignalKind::Input,
                    SignalKind::Output,
                    SignalKind::Output,
                ]),
            ),
            "vbe5c",
        ),
        "vbe6a" => renamed(parallel("t", &[sequencer(3, None), sequencer(3, None)]), "vbe6a"),
        "vbe10b" => renamed(parallel("t", &[celement(7), sequencer(2, None)]), "vbe10b"),
        "wrdatab" => {
            renamed(parallel("t", &[celement(4), fork_join(2, 2), sequencer(2, None)]), "wrdatab")
        }
        _ => return None,
    };
    Some(stg)
}

/// A thread-safe handle to the embedded benchmark suite that builds each
/// specification at most once and hands out shared [`Arc<Stg>`]s.
///
/// [`benchmark`] reconstructs the STG from scratch on every call; drivers
/// that synthesize the same circuit repeatedly (batches, caches, parallel
/// workers) share a registry instead:
///
/// ```
/// use simap_stg::BenchmarkRegistry;
/// let registry = BenchmarkRegistry::new();
/// let a = registry.get("hazard").unwrap();
/// let b = registry.get("hazard").unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // built once, shared after
/// ```
#[derive(Debug, Default)]
pub struct BenchmarkRegistry {
    cache: Mutex<HashMap<String, Arc<Stg>>>,
}

impl BenchmarkRegistry {
    /// An empty registry; specifications are built lazily on first use.
    pub fn new() -> Self {
        BenchmarkRegistry::default()
    }

    /// The benchmark names this registry resolves, in Table 1 order.
    pub fn names(&self) -> &'static [&'static str] {
        benchmark_names()
    }

    /// Whether `name` is a known benchmark (without building it).
    pub fn contains(&self, name: &str) -> bool {
        benchmark_names().contains(&name)
    }

    /// The named specification, built on first request and shared
    /// afterwards; `None` for an unknown name. The lock is held across
    /// the build so concurrent first requests for one name construct the
    /// STG exactly once (the `Arc::ptr_eq` guarantee holds across
    /// threads).
    pub fn get(&self, name: &str) -> Option<Arc<Stg>> {
        if !self.contains(name) {
            return None;
        }
        let mut cache = self.cache.lock().expect("registry lock");
        let stg = cache
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(benchmark(name).expect("known name")));
        Some(stg.clone())
    }
}

/// Builds every benchmark in Table 1 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    benchmark_names()
        .iter()
        .map(|&name| Benchmark { name, stg: benchmark(name).expect("known name") })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::elaborate;
    use simap_sg::check_all;

    #[test]
    fn every_benchmark_builds() {
        for name in benchmark_names() {
            assert!(benchmark(name).is_some(), "missing benchmark {name}");
        }
        assert_eq!(benchmark_names().len(), 32);
        assert!(benchmark("no-such-circuit").is_none());
    }

    #[test]
    fn every_benchmark_is_clean() {
        for b in all_benchmarks() {
            let sg = elaborate(&b.stg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let report = check_all(&sg);
            assert!(report.is_ok(), "{}: {:?}", b.name, report.violations);
        }
    }

    #[test]
    fn registry_shares_one_stg_across_threads() {
        let registry = BenchmarkRegistry::new();
        assert!(registry.contains("hazard"));
        assert!(!registry.contains("bogus"));
        assert!(registry.get("bogus").is_none());
        let handles: Vec<Arc<Stg>> = std::thread::scope(|scope| {
            let workers: Vec<_> =
                (0..4).map(|_| scope.spawn(|| registry.get("hazard").expect("known"))).collect();
            workers.into_iter().map(|w| w.join().expect("no panic")).collect()
        });
        for pair in handles.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]), "all threads share one construction");
        }
    }

    #[test]
    fn hazard_matches_paper_shape() {
        let sg = elaborate(&benchmark("hazard").unwrap()).unwrap();
        assert_eq!(sg.signal_count(), 4);
        // 4 rising states plus the 3-dimensional falling cube.
        assert_eq!(sg.state_count(), 12);
        // The concurrent falling phase forms the faces of a 3-cube.
        assert_eq!(simap_sg::diamonds(&sg).len(), 6);
    }

    #[test]
    fn vbe10b_has_wide_join() {
        let sg = elaborate(&benchmark("vbe10b").unwrap()).unwrap();
        assert_eq!(sg.signal_count(), 10);
        // The 7-input C element dominates the state count: 2 * 2^7 * 4.
        assert_eq!(sg.state_count(), 1024);
    }

    #[test]
    fn dff_cycle_length() {
        let sg = elaborate(&benchmark("dff").unwrap()).unwrap();
        assert_eq!(sg.state_count(), 8);
    }

    #[test]
    fn roundtrip_through_g_format() {
        for b in all_benchmarks() {
            let text = crate::write::write_g(&b.stg);
            let again = crate::parse::parse_g(&text)
                .unwrap_or_else(|e| panic!("{} failed roundtrip: {e}", b.name));
            let sg1 = elaborate(&b.stg).unwrap();
            let sg2 = elaborate(&again).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(sg1.state_count(), sg2.state_count(), "{}", b.name);
        }
    }
}
