//! Writer for the `.g` textual STG format (inverse of [`crate::parse`]).

use crate::petri::{PlaceId, Stg, TransitionId};
use simap_sg::SignalKind;
use std::fmt::Write as _;

/// Serializes an [`Stg`] to `.g` source text. The output round-trips
/// through [`crate::parse::parse_g`].
pub fn write_g(stg: &Stg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());
    for (kind, directive) in [
        (SignalKind::Input, ".inputs"),
        (SignalKind::Output, ".outputs"),
        (SignalKind::Internal, ".internal"),
    ] {
        let names: Vec<&str> =
            stg.signals().iter().filter(|s| s.kind == kind).map(|s| s.name.as_str()).collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{directive} {}", names.join(" "));
        }
    }
    let _ = writeln!(out, ".graph");

    // Transition -> transition arcs through implicit places; grouped per
    // source transition.
    for t in 0..stg.transitions().len() {
        let t = TransitionId(t);
        let mut targets: Vec<String> = Vec::new();
        for &p in stg.post(t) {
            match stg.places()[p.0].implicit {
                Some((_, to)) => targets.push(stg.transition_label(to)),
                None => targets.push(stg.places()[p.0].name.clone()),
            }
        }
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", stg.transition_label(t), targets.join(" "));
        }
    }
    // Explicit place -> transition arcs.
    for p in 0..stg.places().len() {
        let pid = PlaceId(p);
        if stg.places()[p].implicit.is_some() {
            continue;
        }
        let consumers = stg.consumers(pid);
        if !consumers.is_empty() {
            let labels: Vec<String> = consumers.iter().map(|&t| stg.transition_label(t)).collect();
            let _ = writeln!(out, "{} {}", stg.places()[p].name, labels.join(" "));
        }
    }

    // Marking.
    let mut entries: Vec<String> = Vec::new();
    for (p, &tokens) in stg.initial_marking().iter().enumerate() {
        if tokens == 0 {
            continue;
        }
        let place = &stg.places()[p];
        let name = match place.implicit {
            Some((from, to)) => {
                format!("<{},{}>", stg.transition_label(from), stg.transition_label(to))
            }
            None => place.name.clone(),
        };
        if tokens == 1 {
            entries.push(name);
        } else {
            entries.push(format!("{name}={tokens}"));
        }
    }
    let _ = writeln!(out, ".marking {{ {} }}", entries.join(" "));
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;

    const RING: &str = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn roundtrip_ring() {
        let stg = parse_g(RING).unwrap();
        let text = write_g(&stg);
        let again = parse_g(&text).unwrap();
        assert_eq!(again.name(), "ring");
        assert_eq!(again.transitions().len(), stg.transitions().len());
        assert_eq!(again.places().len(), stg.places().len());
        assert_eq!(
            again.initial_marking().iter().sum::<u8>(),
            stg.initial_marking().iter().sum::<u8>()
        );
    }

    #[test]
    fn roundtrip_with_explicit_places() {
        let src = "\
.model ep
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ a-
a- b-
b- p0
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        let text = write_g(&stg);
        let again = parse_g(&text).unwrap();
        assert!(again.place_by_name("p0").is_some());
        let p0 = again.place_by_name("p0").unwrap();
        assert_eq!(again.initial_marking()[p0.0], 1);
    }
}
