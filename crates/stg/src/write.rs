//! Writer for the `.g` textual STG format (inverse of [`crate::parse`]).
//!
//! The graph section is emitted in *parse-canonical* order: groups in
//! BFS first-appearance order over the emitted token stream, so the
//! parser's first-appearance id renumbering maps the written text onto
//! itself. Concretely, `write_g ∘ parse_g` is a byte fixpoint from the
//! second trip on (the first trip may still renumber a programmatically
//! built net), which `tests/g_parse_fuzz.rs` checks exhaustively.

use crate::petri::{PlaceId, Stg, TransitionId};
use simap_sg::SignalKind;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Serializes an [`Stg`] to `.g` source text. The output round-trips
/// through [`crate::parse::parse_g`].
pub fn write_g(stg: &Stg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());
    for (kind, directive) in [
        (SignalKind::Input, ".inputs"),
        (SignalKind::Output, ".outputs"),
        (SignalKind::Internal, ".internal"),
    ] {
        let names: Vec<&str> =
            stg.signals().iter().filter(|s| s.kind == kind).map(|s| s.name.as_str()).collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{directive} {}", names.join(" "));
        }
    }
    let _ = writeln!(out, ".graph");

    // Group emission order: BFS over transition→transition successors,
    // seeded in id order. Discovery order equals the order transitions
    // first appear in the emitted text, which is exactly the order
    // `parse_g` assigns ids in — so a reparse of this text renumbers
    // every transition onto itself.
    let n = stg.transitions().len();
    let mut discovered = vec![false; n];
    let mut groups: Vec<TransitionId> = Vec::with_capacity(n);
    let mut pending: VecDeque<TransitionId> = VecDeque::new();
    for seed in 0..n {
        if discovered[seed] {
            continue;
        }
        discovered[seed] = true;
        pending.push_back(TransitionId(seed));
        while let Some(t) = pending.pop_front() {
            groups.push(t);
            for &p in stg.post(t) {
                if let Some((_, to)) = stg.places()[p.0].implicit {
                    if !discovered[to.0] {
                        discovered[to.0] = true;
                        pending.push_back(to);
                    }
                }
            }
        }
    }

    // Transition -> transition arcs through implicit places; grouped per
    // source transition. Track the order places first appear (implicit
    // places the moment their arc pair is written, explicit places at
    // their first target token): the reparse creates them in exactly
    // this order, and the explicit-place section and the marking below
    // must follow it to stay canonical.
    let mut place_order: Vec<usize> = Vec::with_capacity(stg.places().len());
    let mut place_seen = vec![false; stg.places().len()];
    for &t in &groups {
        let mut targets: Vec<String> = Vec::new();
        for &p in stg.post(t) {
            if !place_seen[p.0] {
                place_seen[p.0] = true;
                place_order.push(p.0);
            }
            match stg.places()[p.0].implicit {
                Some((_, to)) => targets.push(stg.transition_label(to)),
                None => targets.push(stg.places()[p.0].name.clone()),
            }
        }
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", stg.transition_label(t), targets.join(" "));
        }
    }
    // Explicit place -> transition arcs: places already seen above first
    // (in appearance order), then producer-less places in id order.
    let mut consumer_lines: Vec<usize> =
        place_order.iter().copied().filter(|&p| stg.places()[p].implicit.is_none()).collect();
    for (p, seen) in place_seen.iter_mut().enumerate() {
        if !*seen && stg.places()[p].implicit.is_none() {
            *seen = true;
            place_order.push(p);
            consumer_lines.push(p);
        }
    }
    for p in consumer_lines {
        let consumers = stg.consumers(PlaceId(p));
        if !consumers.is_empty() {
            let labels: Vec<String> = consumers.iter().map(|&t| stg.transition_label(t)).collect();
            let _ = writeln!(out, "{} {}", stg.places()[p].name, labels.join(" "));
        }
    }

    // Marking, in the same first-appearance place order.
    let mut entries: Vec<String> = Vec::new();
    for p in place_order {
        let tokens = stg.initial_marking()[p];
        if tokens == 0 {
            continue;
        }
        let place = &stg.places()[p];
        let name = match place.implicit {
            Some((from, to)) => {
                format!("<{},{}>", stg.transition_label(from), stg.transition_label(to))
            }
            None => place.name.clone(),
        };
        if tokens == 1 {
            entries.push(name);
        } else {
            entries.push(format!("{name}={tokens}"));
        }
    }
    let _ = writeln!(out, ".marking {{ {} }}", entries.join(" "));
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;

    const RING: &str = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn roundtrip_ring() {
        let stg = parse_g(RING).unwrap();
        let text = write_g(&stg);
        let again = parse_g(&text).unwrap();
        assert_eq!(again.name(), "ring");
        assert_eq!(again.transitions().len(), stg.transitions().len());
        assert_eq!(again.places().len(), stg.places().len());
        assert_eq!(
            again.initial_marking().iter().sum::<u8>(),
            stg.initial_marking().iter().sum::<u8>()
        );
    }

    #[test]
    fn roundtrip_with_explicit_places() {
        let src = "\
.model ep
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ a-
a- b-
b- p0
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        let text = write_g(&stg);
        let again = parse_g(&text).unwrap();
        assert!(again.place_by_name("p0").is_some());
        let p0 = again.place_by_name("p0").unwrap();
        assert_eq!(again.initial_marking()[p0.0], 1);
    }
}
