//! Level-synchronized spill-to-disk BFS frontier, plus the sequential
//! edge log.
//!
//! The frontier keeps a bounded in-memory buffer of fixed-length
//! records (`[marking words, enabled-mask words]`, ids implicit in push
//! order) and overflows to two alternating sequential run files: level
//! `L` streams out of one file while level `L + 1` streams into the
//! other, exactly preserving the packed engine's level boundaries and
//! in-level order. The edge log is the same machinery for `(event,
//! destination)` pairs, replayed once at the end of the exploration.

use super::arena::{read_words_at, write_words_at};
use super::manifest::SpillManifest;
use std::fs::File;
use std::rc::Rc;

/// The two alternating run-file names.
const RUN_NAMES: [&str; 2] = ["frontier-a.run", "frontier-b.run"];

/// The spillable BFS frontier.
pub(crate) struct SpillFrontier {
    /// Words per record.
    rec_words: usize,
    /// Next-level write buffer (whole records only) and its flush
    /// threshold in words (a multiple of `rec_words`).
    write_buf: Vec<u64>,
    write_cap_words: usize,
    /// Words already flushed to the write-side run file this level.
    write_file_words: u64,
    /// Current-level memory tail and read cursor (in words).
    read_buf: Vec<u64>,
    read_buf_pos: usize,
    /// Current-level file part: total words, staging chunk, cursors.
    read_file_words: u64,
    read_file_pos: u64,
    chunk: Vec<u64>,
    chunk_len: usize,
    chunk_pos: usize,
    chunk_cap_words: usize,
    chunk_allocated: bool,
    /// Run files, created lazily; `write_side` indexes the one the
    /// writer flushes to.
    files: [Option<File>; 2],
    write_side: usize,
    manifest: Rc<SpillManifest>,
}

impl SpillFrontier {
    /// A frontier for `rec_words`-word records whose buffers fit in
    /// roughly `budget_bytes` (half write buffer, half read chunk, each
    /// floored at one record).
    pub(crate) fn new(
        rec_words: usize,
        budget_bytes: usize,
        manifest: Rc<SpillManifest>,
    ) -> SpillFrontier {
        let rec_words = rec_words.max(1);
        let half_recs = (budget_bytes / 2 / 8 / rec_words).max(1);
        let cap_words = half_recs * rec_words;
        SpillFrontier {
            rec_words,
            write_buf: Vec::with_capacity(cap_words),
            write_cap_words: cap_words,
            write_file_words: 0,
            read_buf: Vec::new(),
            read_buf_pos: 0,
            read_file_words: 0,
            read_file_pos: 0,
            chunk: Vec::new(),
            chunk_len: 0,
            chunk_pos: 0,
            chunk_cap_words: cap_words,
            chunk_allocated: false,
            files: [None, None],
            write_side: 0,
            manifest,
        }
    }

    /// Peak buffer footprint in bytes (fixed-capacity buffers, so the
    /// peak is the committed capacity).
    pub(crate) fn peak_bytes(&self) -> u64 {
        let chunk = if self.chunk_allocated { self.chunk_cap_words as u64 * 8 } else { 0 };
        self.write_cap_words as u64 * 8 + chunk
    }

    /// Appends one record (marking + enabled mask) to the next level.
    pub(crate) fn push(&mut self, marking: &[u64], mask: &[u64]) -> std::io::Result<()> {
        debug_assert_eq!(marking.len() + mask.len(), self.rec_words);
        self.write_buf.extend_from_slice(marking);
        self.write_buf.extend_from_slice(mask);
        if self.write_buf.len() >= self.write_cap_words {
            self.flush()?;
        }
        Ok(())
    }

    /// Appends one already-concatenated record — the checkpoint-restore
    /// twin of [`SpillFrontier::push`].
    pub(crate) fn push_record(&mut self, record: &[u64]) -> std::io::Result<()> {
        debug_assert_eq!(record.len(), self.rec_words);
        self.write_buf.extend_from_slice(record);
        if self.write_buf.len() >= self.write_cap_words {
            self.flush()?;
        }
        Ok(())
    }

    /// Streams the sealed-but-unread next level (the write side: run-file
    /// part first, then the memory tail) through `f`, in record order.
    /// Only meaningful at a level boundary — which is the only moment a
    /// checkpoint is taken.
    pub(crate) fn snapshot_pending(
        &self,
        mut f: impl FnMut(&[u64]) -> std::io::Result<()>,
    ) -> std::io::Result<u64> {
        let mut chunk = vec![0u64; self.chunk_cap_words.min(1 << 16)];
        let mut pos = 0u64;
        while pos < self.write_file_words {
            let n = ((self.write_file_words - pos) as usize).min(chunk.len());
            let file = self.files[self.write_side].as_ref().expect("file words imply the run file");
            read_words_at(file, pos * 8, &mut chunk[..n])?;
            f(&chunk[..n])?;
            pos += n as u64;
        }
        f(&self.write_buf)?;
        Ok(self.write_file_words + self.write_buf.len() as u64)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.write_buf.is_empty() {
            return Ok(());
        }
        if self.files[self.write_side].is_none() {
            self.files[self.write_side] =
                Some(self.manifest.create_file(RUN_NAMES[self.write_side])?);
        }
        let file = self.files[self.write_side].as_ref().expect("just created");
        let bytes = write_words_at(file, self.write_file_words * 8, &self.write_buf)?;
        self.manifest.note_spilled(bytes);
        self.write_file_words += self.write_buf.len() as u64;
        self.write_buf.clear();
        Ok(())
    }

    /// Seals the level written so far and makes it the one [`Self::next`]
    /// streams; subsequent pushes build the level after it. Returns the
    /// number of records in the sealed level.
    pub(crate) fn begin_level(&mut self) -> u64 {
        debug_assert!(
            self.read_file_pos >= self.read_file_words && self.read_buf_pos >= self.read_buf.len(),
            "previous level fully consumed"
        );
        std::mem::swap(&mut self.read_buf, &mut self.write_buf);
        self.write_buf.clear();
        self.read_buf_pos = 0;
        self.read_file_words = self.write_file_words;
        self.read_file_pos = 0;
        self.chunk_len = 0;
        self.chunk_pos = 0;
        self.write_file_words = 0;
        self.write_side ^= 1;
        (self.read_file_words + self.read_buf.len() as u64) / self.rec_words as u64
    }

    /// Copies the next record of the current level into `out`; `false`
    /// when the level is exhausted. File part streams first (it holds the
    /// level's oldest records), then the memory tail.
    pub(crate) fn next(&mut self, out: &mut [u64]) -> std::io::Result<bool> {
        debug_assert_eq!(out.len(), self.rec_words);
        if self.read_file_pos < self.read_file_words {
            if self.chunk_pos >= self.chunk_len {
                let remaining = (self.read_file_words - self.read_file_pos) as usize;
                let n = remaining.min(self.chunk_cap_words);
                if !self.chunk_allocated {
                    self.chunk = Vec::with_capacity(self.chunk_cap_words);
                    self.chunk_allocated = true;
                }
                self.chunk.resize(n, 0);
                // The read side is the file the writer is *not* using.
                let file = self.files[self.write_side ^ 1]
                    .as_ref()
                    .expect("file words imply the run file exists");
                read_words_at(file, self.read_file_pos * 8, &mut self.chunk[..n])?;
                self.chunk_len = n;
                self.chunk_pos = 0;
            }
            out.copy_from_slice(&self.chunk[self.chunk_pos..self.chunk_pos + self.rec_words]);
            self.chunk_pos += self.rec_words;
            self.read_file_pos += self.rec_words as u64;
            return Ok(true);
        }
        if self.read_buf_pos < self.read_buf.len() {
            out.copy_from_slice(
                &self.read_buf[self.read_buf_pos..self.read_buf_pos + self.rec_words],
            );
            self.read_buf_pos += self.rec_words;
            return Ok(true);
        }
        Ok(false)
    }
}

/// Append-only spillable log of `(event code, destination id)` pairs,
/// replayed in order once the exploration completes.
pub(crate) struct EdgeLog {
    buf: Vec<u64>,
    /// Flush threshold in words (even: two words per edge).
    cap_words: usize,
    file: Option<File>,
    file_words: u64,
    edges: usize,
    manifest: Rc<SpillManifest>,
}

impl EdgeLog {
    pub(crate) fn new(budget_bytes: usize, manifest: Rc<SpillManifest>) -> EdgeLog {
        let cap_words = ((budget_bytes / 8) & !1).max(2);
        EdgeLog {
            buf: Vec::with_capacity(cap_words),
            cap_words,
            file: None,
            file_words: 0,
            edges: 0,
            manifest,
        }
    }

    /// Edges logged so far (the CSR offsets index this count).
    pub(crate) fn len(&self) -> usize {
        self.edges
    }

    /// Peak buffer footprint in bytes.
    pub(crate) fn peak_bytes(&self) -> u64 {
        self.cap_words as u64 * 8
    }

    pub(crate) fn push(&mut self, code: u64, dst: u64) -> std::io::Result<()> {
        self.buf.push(code);
        self.buf.push(dst);
        self.edges += 1;
        if self.buf.len() >= self.cap_words {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.file.is_none() {
            self.file = Some(self.manifest.create_file("edges.log")?);
        }
        let file = self.file.as_ref().expect("just created");
        let bytes = write_words_at(file, self.file_words * 8, &self.buf)?;
        self.manifest.note_spilled(bytes);
        self.file_words += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Streams the whole log so far (file part, then the memory tail)
    /// through `f` as raw words, without consuming the log — the
    /// checkpoint twin of [`EdgeLog::replay`].
    pub(crate) fn snapshot(
        &self,
        mut f: impl FnMut(&[u64]) -> std::io::Result<()>,
    ) -> std::io::Result<u64> {
        let mut chunk = vec![0u64; self.cap_words.min(1 << 16)];
        let mut pos = 0u64;
        while pos < self.file_words {
            let n = ((self.file_words - pos) as usize).min(chunk.len());
            let file = self.file.as_ref().expect("file words imply the log file");
            read_words_at(file, pos * 8, &mut chunk[..n])?;
            f(&chunk[..n])?;
            pos += n as u64;
        }
        f(&self.buf)?;
        Ok(self.file_words + self.buf.len() as u64)
    }

    /// Streams every logged edge, in push order, through `f`.
    pub(crate) fn replay(mut self, mut f: impl FnMut(u64, u64)) -> std::io::Result<()> {
        if self.file.is_some() {
            // Flush the tail so the file holds the whole log, then reuse
            // the buffer as the read chunk.
            self.flush()?;
            let file = self.file.as_ref().expect("flushed above");
            let mut chunk = std::mem::take(&mut self.buf);
            let mut pos = 0u64;
            while pos < self.file_words {
                let n = ((self.file_words - pos) as usize).min(self.cap_words);
                chunk.resize(n, 0);
                read_words_at(file, pos * 8, &mut chunk[..n])?;
                for pair in chunk[..n].chunks_exact(2) {
                    f(pair[0], pair[1]);
                }
                pos += n as u64;
            }
        } else {
            for pair in self.buf.chunks_exact(2) {
                f(pair[0], pair[1]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_levels_roundtrip_through_disk() {
        let manifest = Rc::new(SpillManifest::create(None).unwrap());
        // 3-word records, budget so small every level spills.
        let mut frontier = SpillFrontier::new(3, 96, Rc::clone(&manifest));
        let mut expect_level = Vec::new();
        let mut rec = [0u64; 3];
        for level in 0u64..5 {
            for i in 0..200u64 {
                frontier.push(&[level, i], &[level ^ i]).unwrap();
                expect_level.push([level, i, level ^ i]);
            }
            assert_eq!(frontier.begin_level(), 200);
            let mut got = Vec::new();
            while frontier.next(&mut rec).unwrap() {
                got.push(rec);
            }
            assert_eq!(got, expect_level, "level {level} order preserved");
            expect_level.clear();
        }
        assert_eq!(frontier.begin_level(), 0, "drained frontier ends the BFS");
        assert!(manifest.bytes_spilled() > 0);
        assert_eq!(manifest.files_created(), 2, "two alternating run files");
    }

    #[test]
    fn frontier_stays_in_memory_under_budget() {
        let manifest = Rc::new(SpillManifest::create(None).unwrap());
        let mut frontier = SpillFrontier::new(2, 1 << 20, Rc::clone(&manifest));
        for i in 0..100u64 {
            frontier.push(&[i], &[i]).unwrap();
        }
        assert_eq!(frontier.begin_level(), 100);
        let mut rec = [0u64; 2];
        let mut n = 0;
        while frontier.next(&mut rec).unwrap() {
            assert_eq!(rec, [n, n]);
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(manifest.bytes_spilled(), 0);
    }

    #[test]
    fn edge_log_replays_in_order_across_spills() {
        let manifest = Rc::new(SpillManifest::create(None).unwrap());
        let mut log = EdgeLog::new(64, Rc::clone(&manifest));
        for i in 0..1000u64 {
            log.push(i, i * 3).unwrap();
        }
        assert_eq!(log.len(), 1000);
        assert!(manifest.bytes_spilled() > 0);
        let mut next = 0u64;
        log.replay(|code, dst| {
            assert_eq!((code, dst), (next, next * 3));
            next += 1;
        })
        .unwrap();
        assert_eq!(next, 1000);
    }
}
