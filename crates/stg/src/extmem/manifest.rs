//! The spill run's scratch directory: creation, file registry, byte
//! accounting, and — critically — RAII cleanup.
//!
//! Every spill exploration owns exactly one [`SpillManifest`]. All
//! scratch files (arena segments, frontier runs, the edge log) are
//! created through it, inside one run-scoped directory, and the
//! manifest's `Drop` removes the whole directory — so the cleanup runs
//! on success, on every error path, and during a panic unwind alike.

use crate::reach::ReachError;
use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence number making concurrent runs' directories
/// distinct even under the same pid.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// The run-scoped scratch directory of one spill exploration.
///
/// Dropping the manifest removes the directory and everything in it;
/// callers keep it alive (e.g. behind an `Rc`) for as long as any
/// component holds an open scratch file.
pub(crate) struct SpillManifest {
    dir: PathBuf,
    files_created: Cell<u32>,
    bytes_spilled: Cell<u64>,
}

impl SpillManifest {
    /// Creates a fresh `simap-spill-<pid>-<seq>` directory under `base`
    /// (the system temp dir when `None`).
    pub(crate) fn create(base: Option<&Path>) -> Result<SpillManifest, ReachError> {
        let base = base.map(Path::to_path_buf).unwrap_or_else(std::env::temp_dir);
        std::fs::create_dir_all(&base).map_err(|e| ReachError::Spill {
            detail: format!("cannot create spill base directory `{}`: {e}", base.display()),
        })?;
        let pid = std::process::id();
        loop {
            let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = base.join(format!("simap-spill-{pid}-{seq}"));
            match std::fs::create_dir(&dir) {
                Ok(()) => {
                    return Ok(SpillManifest {
                        dir,
                        files_created: Cell::new(0),
                        bytes_spilled: Cell::new(0),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => {
                    return Err(ReachError::Spill {
                        detail: format!("cannot create spill directory `{}`: {e}", dir.display()),
                    })
                }
            }
        }
    }

    /// Creates (exclusively) a named scratch file inside the run
    /// directory, open for reading and writing.
    pub(crate) fn create_file(&self, name: &str) -> std::io::Result<File> {
        let file =
            OpenOptions::new().read(true).write(true).create_new(true).open(self.dir.join(name))?;
        self.files_created.set(self.files_created.get() + 1);
        Ok(file)
    }

    /// Records `bytes` written to a scratch file.
    pub(crate) fn note_spilled(&self, bytes: u64) {
        self.bytes_spilled.set(self.bytes_spilled.get() + bytes);
    }

    /// Scratch files created so far.
    pub(crate) fn files_created(&self) -> u32 {
        self.files_created.get()
    }

    /// Total bytes written to scratch files so far.
    pub(crate) fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled.get()
    }

    /// The run directory (for diagnostics and tests).
    #[cfg(test)]
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for SpillManifest {
    fn drop(&mut self) {
        // Open handles don't block unlinking on POSIX, so the directory
        // goes away even while components still hold their files. Errors
        // are deliberately swallowed: cleanup must never turn a
        // successful elaboration (or an unwind) into a second failure.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_is_removed_on_drop() {
        let manifest = SpillManifest::create(None).unwrap();
        let dir = manifest.dir().to_path_buf();
        manifest.create_file("probe.bin").unwrap();
        assert!(dir.join("probe.bin").exists());
        assert_eq!(manifest.files_created(), 1);
        drop(manifest);
        assert!(!dir.exists(), "drop must remove the run directory");
    }

    #[test]
    fn directory_is_removed_during_panic_unwind() {
        let captured = std::sync::Mutex::new(PathBuf::new());
        let result = std::panic::catch_unwind(|| {
            let manifest = SpillManifest::create(None).unwrap();
            *captured.lock().unwrap() = manifest.dir().to_path_buf();
            let mut file = manifest.create_file("half-written.run").unwrap();
            use std::io::Write as _;
            file.write_all(b"partial").unwrap();
            panic!("simulated exploration panic");
        });
        assert!(result.is_err());
        let dir = captured.lock().unwrap().clone();
        assert!(!dir.exists(), "unwind must remove the run directory");
    }

    #[test]
    fn concurrent_runs_get_distinct_directories() {
        let a = SpillManifest::create(None).unwrap();
        let b = SpillManifest::create(None).unwrap();
        assert_ne!(a.dir(), b.dir());
    }

    #[test]
    fn missing_base_directory_is_created() {
        let base = std::env::temp_dir().join(format!("simap-spill-base-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let manifest = SpillManifest::create(Some(&base)).unwrap();
        assert!(manifest.dir().starts_with(&base));
        drop(manifest);
        let _ = std::fs::remove_dir_all(&base);
    }
}
