//! External-memory sharded reachability —
//! [`ReachStrategy::Spill`](crate::reach::ReachStrategy::Spill).
//!
//! The spill engine runs the *same* token game as the packed engine
//! (same mask-compiled transition net, same narrow-width speculation,
//! same BFS discovery order, same error semantics) but bounds peak
//! resident memory by [`ReachConfig::memory_budget`] instead of by the
//! state count:
//!
//! * **Paged state arena** (`arena`): packed markings live in
//!   fixed-stride pages; pages past the resident budget are written
//!   back to scratch files and faulted in on demand (clock eviction).
//! * **Hash-partitioned shards** (`shard`): the marking hash selects
//!   a shard; each shard owns its intern table and arena segment.
//!   Global state ids are assigned in BFS discovery order at intern
//!   time, so the merged graph's numbering — and therefore its bytes —
//!   are identical to the packed engine's.
//! * **Spill frontier and edge log** (`frontier`): the
//!   level-synchronized BFS frontier and the fired-edge log keep
//!   bounded in-memory buffers and overflow to sequential run files.
//! * **RAII manifest** (`manifest`): every scratch file lives in one
//!   run-scoped directory removed on drop — success, error and panic
//!   paths alike.
//! * **Durable checkpoints** (`checkpoint`): at a configurable level
//!   cadence ([`ReachConfig::checkpoint_every`]) the full exploration
//!   state is atomically snapshotted into
//!   [`ReachConfig::checkpoint_dir`] — a checksummed, versioned
//!   manifest committed by temp+rename over the arena pages, intern
//!   tables, pending frontier and edge log. A killed run continues from
//!   the last snapshot via [`ReachConfig::resume`], producing a graph
//!   byte-identical to an uninterrupted run.
//!
//! With [`ReachConfig::jobs`] > 1 frontier expansion fans out: each
//! level is read in bounded batches, the fire/hash work runs on scoped
//! worker threads, and successors are merged in deterministic (source,
//! transition) order — the exact scheme the packed engine uses — so the
//! graph, the errors and every checkpoint stay byte-identical at any
//! fan-out. Checkpoints are only taken at level boundaries, which the
//! batched workers never straddle, so a snapshot taken mid-parallel-run
//! is level-consistent by construction.
//!
//! What stays in memory regardless of the budget: the per-shard intern
//! tables and local→global maps (16–24 bytes per distinct state) and
//! the `O(states + edges)` outputs the caller asked for (BFS parents,
//! CSR offsets, the final materialized graph). The budget governs the
//! *working set* — marking storage, frontier, edge buffering, and the
//! parallel batch buffer — which is what otherwise dwarfs the rest on
//! token-game state explosions.

mod arena;
mod checkpoint;
mod frontier;
mod manifest;
mod shard;

use crate::petri::{Stg, TransitionId};
use crate::reach::{
    full_width, narrow_width, Abort, Exploration, FireFault, PackedNet, ReachConfig, ReachError,
};
use checkpoint::{CheckpointCtx, LoadedManifest, Snapshot};
use frontier::{EdgeLog, SpillFrontier};
use manifest::SpillManifest;
use shard::{hash_words, shard_of, Interned, Shard};
use simap_sg::{Event, SignalId, StateId};
use std::rc::Rc;

/// Disk and memory counters of one spill exploration, reported through
/// [`crate::reach::ReachStats::spill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillCounters {
    /// Total bytes written to scratch files (arena pages, frontier runs,
    /// edge log). Zero when the whole run fit in the budget.
    pub spilled_bytes: u64,
    /// Scratch files created (all inside the run directory, all removed
    /// when the exploration ends).
    pub files_created: u32,
    /// Peak resident bytes of the budgeted working set: arena page
    /// caches plus frontier, edge-log and parallel batch buffers. At
    /// most [`SpillCounters::budget`], up to small per-component floors
    /// (two pages per shard, one record per frontier buffer).
    pub resident_peak: u64,
    /// In-memory index bytes outside the budgeted working set (intern
    /// tables, local→global maps): `O(distinct states)`.
    pub table_bytes: u64,
    /// The effective memory budget the run was held to.
    pub budget: u64,
    /// The effective shard count.
    pub shards: u32,
    /// Checkpoint generations committed by this run
    /// ([`ReachConfig::checkpoint_every`]; zero when checkpointing is
    /// off).
    pub checkpoints_written: u32,
    /// Total bytes of committed checkpoint artifacts and manifests.
    pub checkpoint_bytes: u64,
    /// BFS level this run resumed from ([`ReachConfig::resume`]; zero
    /// for a cold start).
    pub resume_level: u64,
}

/// Smallest honored budget (one arena page): below this the component
/// floors (two arena pages per shard, one frontier record per buffer,
/// one buffered edge) dominate anyway.
const MIN_BUDGET: usize = 4096;

/// Shard-count ceiling (each shard pins up to two arena pages).
const MAX_SHARDS: usize = 512;

/// Runs the token game with the external-memory engine. Graphs — and
/// errors — are byte-identical to [`crate::reach::explore_packed`] on
/// every net both can elaborate.
pub(crate) fn explore_spill(stg: &Stg, config: &ReachConfig) -> Result<Exploration, ReachError> {
    if config.checkpoint_every > 0 && config.checkpoint_dir.is_none() {
        return Err(ReachError::Checkpoint {
            detail: "ReachConfig::checkpoint_every is set but ReachConfig::checkpoint_dir is not"
                .to_string(),
        });
    }
    let nshards = config.shards.clamp(1, MAX_SHARDS);
    if let Some(dir) = &config.resume {
        // Resume continues at the checkpoint's recorded field width. If
        // the checkpointed narrow layout overflows *after* the resume
        // point, redo the whole exploration cold at full width — the
        // same restart an uninterrupted narrow run would have taken, so
        // the output bytes cannot tell the difference.
        let loaded = checkpoint::load_manifest(dir, stg, config, nshards)?;
        return match explore_spill_at(stg, config, loaded.width, Some(&loaded)) {
            Ok(exploration) => Ok(exploration),
            Err(Abort::Error(e)) => Err(e),
            Err(Abort::Widen) => {
                match explore_spill_at(stg, config, full_width(stg, config.max_tokens), None) {
                    Ok(exploration) => Ok(exploration),
                    Err(Abort::Error(e)) => Err(e),
                    Err(Abort::Widen) => unreachable!("full-width runs cannot ask to widen"),
                }
            }
        };
    }
    // Same narrow-width speculation as the packed engine: restart once
    // at full width if a field overflows. Both attempts explore in
    // identical BFS order, so the restart is invisible in the output.
    let narrow = narrow_width(stg);
    let full = full_width(stg, config.max_tokens);
    match explore_spill_at(stg, config, narrow.min(full), None) {
        Err(Abort::Widen) => match explore_spill_at(stg, config, full, None) {
            Ok(exploration) => Ok(exploration),
            Err(Abort::Error(e)) => Err(e),
            Err(Abort::Widen) => unreachable!("full-width runs cannot ask to widen"),
        },
        Ok(exploration) => Ok(exploration),
        Err(Abort::Error(e)) => Err(e),
    }
}

fn io_abort(context: &str, e: std::io::Error) -> Abort {
    Abort::Error(ReachError::Spill { detail: format!("{context}: {e}") })
}

/// One expanded successor produced by a parallel batch worker: the
/// batch-relative source record and the fired transition; the packed
/// successor marking and its hash live at the same index of the chunk's
/// `buf`/`hashes`.
struct SpillChunk {
    /// Packed successor markings, `stride` words each, aligned with
    /// `succs`.
    buf: Vec<u64>,
    /// Precomputed [`hash_words`] of each successor (hashing is the
    /// workers' job; the merge only probes tables).
    hashes: Vec<u64>,
    /// (batch-relative source record, transition) in expansion order.
    succs: Vec<(u32, TransitionId)>,
    /// The first faulting firing in the chunk, if any: successors of
    /// earlier (source, transition) pairs are all in `succs`.
    fault: Option<(u32, FireFault)>,
}

/// Expands batch records `lo..hi` without touching shared mutable
/// state; a pure function of the batch slice, safe to run on a scoped
/// worker thread.
fn expand_batch_chunk(
    stg: &Stg,
    net: &PackedNet,
    batch: &[u64],
    rec_words: usize,
    stride: usize,
    lo: usize,
    hi: usize,
) -> SpillChunk {
    let mut out = SpillChunk {
        buf: Vec::with_capacity(stride * 16),
        hashes: Vec::with_capacity(16),
        succs: Vec::with_capacity(16),
        fault: None,
    };
    let mut next = vec![0u64; stride];
    'recs: for b in lo..hi {
        let rec = &batch[b * rec_words..(b + 1) * rec_words];
        let (cur, cur_mask) = rec.split_at(stride);
        for (w, &bits) in cur_mask.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let t = TransitionId(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
                if let Some(f) = net.fire(stg, cur, t, &mut next) {
                    // Everything after this firing would never be
                    // reached sequentially; record the fault position
                    // and stop.
                    out.fault = Some((b as u32, f));
                    break 'recs;
                }
                out.buf.extend_from_slice(&next);
                out.hashes.push(hash_words(&next));
                out.succs.push((b as u32, t));
            }
        }
    }
    out
}

/// The spill BFS state: sharded arenas, spill frontier, edge log, and
/// the in-memory outputs — plus everything a checkpoint persists.
struct SpillExplorer<'a> {
    stg: &'a Stg,
    net: PackedNet,
    stride: usize,
    t_words: usize,
    /// `stride + t_words`: one frontier record.
    rec_words: usize,
    nshards: usize,
    max_states: usize,
    max_tokens: u8,
    width: u32,
    budget: usize,
    shards: Vec<Shard>,
    frontier: SpillFrontier,
    edges: EdgeLog,
    /// Event code per transition: `(signal << 1) | rising` — decoded
    /// back when the edge log is replayed.
    events: Vec<u64>,
    parent: Vec<Option<(usize, TransitionId)>>,
    edge_off: Vec<usize>,
    fired: Vec<bool>,
    /// Distinct markings interned so far.
    count: usize,
    /// Sources fully expanded so far (the BFS cursor).
    src: usize,
    safe: bool,
    /// Parallel batch capacity in records, and the accounted footprint
    /// of the batch buffer once one was allocated.
    batch_cap: usize,
    batch_bytes: u64,
    manifest: Rc<SpillManifest>,
    succ_mask: Vec<u64>,
}

impl<'a> SpillExplorer<'a> {
    fn new(
        stg: &'a Stg,
        config: &ReachConfig,
        width: u32,
        resume: Option<&LoadedManifest>,
    ) -> Result<SpillExplorer<'a>, Abort> {
        let net = PackedNet::compile(stg, config.max_tokens, width);
        let stride = net.words;
        let t_words = net.t_words;
        let n_transitions = stg.transition_count();
        if let Some(m) = resume {
            if m.stride != stride || m.t_words != t_words {
                return Err(Abort::Error(ReachError::Checkpoint {
                    detail: format!(
                        "checkpoint geometry (stride {}, mask words {}) does not match the \
                         current net (stride {stride}, mask words {t_words})",
                        m.stride, m.t_words
                    ),
                }));
            }
        }

        let budget = config.memory_budget.max(MIN_BUDGET);
        let nshards = config.shards.clamp(1, MAX_SHARDS);
        // Working-set split: half to the sharded arena page caches, a
        // quarter to the frontier buffers, the rest to the edge log. The
        // parallel batch buffer borrows half the frontier share.
        let arena_share = budget / 2;
        let frontier_share = budget / 4;
        let edge_share = budget - arena_share - frontier_share;
        let rec_words = stride + t_words;
        let jobs = config.jobs.max(1);
        let batch_cap = (frontier_share / 2 / 8 / rec_words).clamp(2 * jobs, 8192);

        let manifest = Rc::new(SpillManifest::create(config.spill_dir.as_deref())?);
        let shards: Vec<Shard> = (0..nshards)
            .map(|i| {
                Shard::new(
                    stride,
                    arena_share / nshards,
                    format!("shard-{i}.arena"),
                    Rc::clone(&manifest),
                )
            })
            .collect();
        let frontier = SpillFrontier::new(rec_words, frontier_share, Rc::clone(&manifest));
        let edges = EdgeLog::new(edge_share, Rc::clone(&manifest));

        let events: Vec<u64> = stg
            .transitions()
            .iter()
            .map(|t| ((t.event.signal.0 as u64) << 1) | u64::from(t.event.rising))
            .collect();

        let mut this = SpillExplorer {
            stg,
            net,
            stride,
            t_words,
            rec_words,
            nshards,
            max_states: config.max_states,
            max_tokens: config.max_tokens,
            width,
            budget,
            shards,
            frontier,
            edges,
            events,
            parent: Vec::new(),
            edge_off: Vec::new(),
            fired: vec![false; n_transitions],
            count: 0,
            src: 0,
            safe: true,
            batch_cap,
            batch_bytes: 0,
            manifest,
            succ_mask: vec![0u64; t_words],
        };

        match resume {
            Some(m) => {
                let dir = config.resume.as_deref().expect("resume manifest implies a resume dir");
                let restored = checkpoint::restore(
                    dir,
                    m,
                    n_transitions,
                    &mut this.shards,
                    &mut this.frontier,
                    &mut this.edges,
                )
                .map_err(Abort::Error)?;
                this.count = restored.count;
                this.src = restored.src;
                this.parent = restored.parent;
                this.edge_off = restored.edge_off;
                this.fired = restored.fired;
                this.safe = m.safe;
            }
            None => {
                let mut initial = vec![0u64; stride];
                this.net.pack_into(stg.initial_marking(), &mut initial);
                this.safe = this.net.multi.iter().zip(&initial).all(|(&m, &w)| w & m == 0);

                // The initial state's enabled set is the one full
                // per-transition scan; every other state derives its set
                // incrementally from its BFS parent's (carried through
                // the frontier records).
                let mut mask0 = vec![0u64; t_words];
                for t in 0..n_transitions {
                    if this.net.enabled(&initial, TransitionId(t)) {
                        mask0[t / 64] |= 1u64 << (t % 64);
                    }
                }

                let h0 = hash_words(&initial);
                match this.shards[shard_of(h0, nshards)]
                    .intern(&initial, h0)
                    .map_err(|e| io_abort("intern", e))?
                {
                    Interned::New => this.shards[shard_of(h0, nshards)]
                        .commit(&initial, 0)
                        .map_err(|e| io_abort("arena append", e))?,
                    Interned::Existing(_) => {
                        unreachable!("empty shard cannot know the initial marking")
                    }
                }
                this.frontier.push(&initial, &mask0).map_err(|e| io_abort("frontier write", e))?;
                this.count = 1;
                this.parent.push(None);
            }
        }
        Ok(this)
    }

    fn fault_abort(&self, fault: FireFault, src: usize) -> Abort {
        match fault {
            FireFault::Unbounded(p) => Abort::Error(ReachError::Unbounded {
                place: self.stg.places()[p.0].name.clone(),
                max_tokens: self.max_tokens,
                visited: src,
            }),
            FireFault::Widen => Abort::Widen,
        }
    }

    /// Dedups one fired successor through its shard: commit + frontier
    /// push on a miss (deriving the enabled set from the source's mask),
    /// edge push always. Identical across the sequential and
    /// merged-parallel paths — this is what makes `jobs` byte-stable.
    fn absorb(
        &mut self,
        src: usize,
        t: TransitionId,
        cur_mask: &[u64],
        next: &[u64],
        h: u64,
    ) -> Result<(), Abort> {
        let sh = shard_of(h, self.nshards);
        let dst = match self.shards[sh].intern(next, h).map_err(|e| io_abort("intern", e))? {
            Interned::Existing(g) => g,
            Interned::New => {
                let candidate = self.count;
                if candidate >= self.max_states {
                    return Err(Abort::Error(ReachError::StateLimit {
                        limit: self.max_states,
                        visited: src,
                    }));
                }
                if self.safe && self.net.multi.iter().zip(next).any(|(&m, &v)| v & m != 0) {
                    self.safe = false;
                }
                // Incremental enabled set, exactly as packed: carry over
                // what `t` cannot affect, recheck its neighborhood.
                let keep = &self.net.keep[t.0 * self.t_words..(t.0 + 1) * self.t_words];
                for (s, (&e, &k)) in self.succ_mask.iter_mut().zip(cur_mask.iter().zip(keep)) {
                    *s = e & k;
                }
                let (rs, re) = self.net.recheck_range[t.0];
                for &u in &self.net.recheck[rs as usize..re as usize] {
                    if self.net.enabled(next, TransitionId(u as usize)) {
                        self.succ_mask[u as usize / 64] |= 1u64 << (u % 64);
                    }
                }
                self.shards[sh]
                    .commit(next, candidate as u64)
                    .map_err(|e| io_abort("arena append", e))?;
                self.parent.push(Some((src, t)));
                self.frontier
                    .push(next, &self.succ_mask)
                    .map_err(|e| io_abort("frontier write", e))?;
                self.count += 1;
                candidate as u64
            }
        };
        self.edges.push(self.events[t.0], dst).map_err(|e| io_abort("edge log write", e))?;
        Ok(())
    }

    /// Expands one frontier record (the record `self.src` indexes),
    /// firing every enabled transition in ascending order.
    fn expand_record(&mut self, rec: &[u64], next: &mut [u64]) -> Result<(), Abort> {
        let (cur, cur_mask) = rec.split_at(self.stride);
        self.edge_off.push(self.edges.len());
        let src = self.src;
        for w in 0..self.t_words {
            let mut bits = cur_mask[w];
            while bits != 0 {
                let t = TransitionId(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
                self.fired[t.0] = true;
                if let Some(f) = self.net.fire(self.stg, cur, t, next) {
                    return Err(self.fault_abort(f, src));
                }
                let h = hash_words(next);
                self.absorb(src, t, cur_mask, next, h)?;
            }
        }
        self.src = src + 1;
        Ok(())
    }

    /// Expands the sealed level record-by-record, streaming straight
    /// from the frontier — the `jobs == 1` path, byte-identical to (and
    /// unchanged from) the pre-parallel engine.
    fn expand_level_sequential(&mut self, rec: &mut [u64], next: &mut [u64]) -> Result<(), Abort> {
        while self.frontier.next(rec).map_err(|e| io_abort("frontier read", e))? {
            self.expand_record(rec, next)?;
        }
        Ok(())
    }

    /// Expands the sealed level in bounded batches fanned out over
    /// `jobs` scoped workers, merging successors in deterministic
    /// (source, transition) order.
    fn expand_level_parallel(
        &mut self,
        jobs: usize,
        rec: &mut [u64],
        next: &mut [u64],
    ) -> Result<(), Abort> {
        let rec_words = self.rec_words;
        let stride = self.stride;
        let mut batch: Vec<u64> = Vec::with_capacity(self.batch_cap * rec_words);
        self.batch_bytes = self.batch_bytes.max((self.batch_cap * rec_words * 8) as u64);
        loop {
            batch.clear();
            while batch.len() < self.batch_cap * rec_words {
                if !self.frontier.next(rec).map_err(|e| io_abort("frontier read", e))? {
                    break;
                }
                batch.extend_from_slice(rec);
            }
            let n = batch.len() / rec_words;
            if n == 0 {
                return Ok(());
            }
            if n < 2 * jobs {
                // Too small to be worth a fan-out: finish the tail on
                // the sequential path (same bytes either way).
                for b in 0..n {
                    let owned: Vec<u64> = batch[b * rec_words..(b + 1) * rec_words].to_vec();
                    self.expand_record(&owned, next)?;
                }
                continue;
            }
            let chunk_len = n.div_ceil(jobs);
            let chunks: Vec<SpillChunk> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for c in 0..jobs {
                    let lo = c * chunk_len;
                    let hi = ((c + 1) * chunk_len).min(n);
                    if lo >= hi {
                        break;
                    }
                    let stg = self.stg;
                    let net = &self.net;
                    let batch = &batch[..];
                    handles.push(scope.spawn(move || {
                        expand_batch_chunk(stg, net, batch, rec_words, stride, lo, hi)
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("spill worker panicked")).collect()
            });
            // Deterministic merge: chunks ascend over the batch, succs
            // ascend within each chunk, so absorption order is exactly
            // the sequential (source, transition) order.
            let base = self.src;
            for chunk in chunks {
                for (i, &(rel, t)) in chunk.succs.iter().enumerate() {
                    let s = base + rel as usize;
                    self.fired[t.0] = true;
                    // Keep the CSR offsets in lockstep: one entry per
                    // source, including barren ones.
                    while self.edge_off.len() <= s {
                        self.edge_off.push(self.edges.len());
                    }
                    let cur_mask =
                        &batch[rel as usize * rec_words + stride..(rel as usize + 1) * rec_words];
                    self.absorb(
                        s,
                        t,
                        cur_mask,
                        &chunk.buf[i * stride..(i + 1) * stride],
                        chunk.hashes[i],
                    )?;
                }
                if let Some((rel, f)) = chunk.fault {
                    return Err(self.fault_abort(f, base + rel as usize));
                }
            }
            while self.edge_off.len() < base + n {
                self.edge_off.push(self.edges.len());
            }
            self.src = base + n;
        }
    }

    /// Atomically snapshots the full exploration state — only ever
    /// called at a level boundary.
    fn write_checkpoint(&self, ctx: &mut CheckpointCtx, level: u64) -> Result<(), Abort> {
        let snap = Snapshot {
            level,
            width: self.width,
            count: self.count,
            src: self.src,
            safe: self.safe,
            stride: self.stride,
            t_words: self.t_words,
            shards: &self.shards,
            frontier: &self.frontier,
            edges: &self.edges,
            parent: &self.parent,
            edge_off: &self.edge_off,
            fired: &self.fired,
        };
        checkpoint::write(ctx, &snap).map_err(Abort::Error)
    }

    /// Closes the CSR, replays the edge log and assembles the
    /// [`Exploration`] plus counters.
    fn finish(
        mut self,
        ckpt: Option<&CheckpointCtx>,
        resume_level: u64,
        config: &ReachConfig,
    ) -> Result<Exploration, Abort> {
        self.edge_off.push(self.edges.len());

        let resident_peak = self.shards.iter().map(Shard::arena_peak_bytes).sum::<u64>()
            + self.frontier.peak_bytes()
            + self.edges.peak_bytes()
            + self.batch_bytes;
        let table_bytes = self.shards.iter().map(Shard::table_bytes).sum::<u64>();
        let mut edge_arcs: Vec<(Event, StateId)> = Vec::with_capacity(self.edges.len());
        self.edges
            .replay(|code, dst| {
                let event = Event { signal: SignalId((code >> 1) as usize), rising: code & 1 == 1 };
                edge_arcs.push((event, StateId(dst as usize)));
            })
            .map_err(|e| io_abort("edge log read", e))?;

        let counters = SpillCounters {
            spilled_bytes: self.manifest.bytes_spilled(),
            files_created: self.manifest.files_created(),
            resident_peak,
            table_bytes,
            budget: self.budget as u64,
            shards: self.nshards as u32,
            checkpoints_written: ckpt.map_or(0, |c| c.written),
            checkpoint_bytes: ckpt.map_or(0, |c| c.bytes),
            resume_level,
        };
        // The exploration completed: its checkpoints have served their
        // purpose. Remove the managed artifacts (never the directories
        // themselves); failures here must not fail a finished run.
        if let Some(ctx) = ckpt {
            checkpoint::clean(&ctx.dir);
        }
        if let Some(dir) = &config.resume {
            checkpoint::clean(dir);
        }
        Ok(Exploration {
            count: self.count,
            parent: self.parent,
            edge_off: self.edge_off,
            edge_arcs,
            fired: self.fired,
            safe: self.safe,
            spill: Some(counters),
        })
    }
}

fn explore_spill_at(
    stg: &Stg,
    config: &ReachConfig,
    width: u32,
    resume: Option<&LoadedManifest>,
) -> Result<Exploration, Abort> {
    let mut ex = SpillExplorer::new(stg, config, width, resume)?;
    let resume_level = resume.map_or(0, |m| m.level);
    let mut ckpt = match (&config.checkpoint_dir, config.checkpoint_every) {
        (Some(dir), every) if every > 0 => Some(CheckpointCtx {
            dir: dir.clone(),
            config_digest: checkpoint::config_digest(config, ex.nshards),
            net_digest: checkpoint::net_digest(stg),
            written: 0,
            bytes: 0,
        }),
        _ => None,
    };
    let jobs = config.jobs.max(1);
    let mut level = resume_level;
    let mut rec = vec![0u64; ex.rec_words];
    let mut next = vec![0u64; ex.stride];
    loop {
        let level_records = ex.frontier.begin_level();
        if level_records == 0 {
            break;
        }
        if jobs == 1 || level_records < 2 * jobs as u64 {
            ex.expand_level_sequential(&mut rec, &mut next)?;
        } else {
            ex.expand_level_parallel(jobs, &mut rec, &mut next)?;
        }
        level += 1;
        if let Some(ctx) = ckpt.as_mut() {
            if level.is_multiple_of(config.checkpoint_every as u64) {
                ex.write_checkpoint(ctx, level)?;
            }
        }
    }
    ex.finish(ckpt.as_ref(), resume_level, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;
    use crate::reach::ReachStrategy;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    const FORK_JOIN: &str = "\
.model fj
.inputs a
.outputs b c d
.graph
a+ b+ c+
b+ d+
c+ d+
d+ a-
a- b- c-
b- d-
c- d-
d- a+
.marking { <d-,a+> }
.end
";

    fn test_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "simap-ckpt-test-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spill_config() -> ReachConfig {
        ReachConfig {
            strategy: ReachStrategy::Spill,
            memory_budget: MIN_BUDGET,
            ..ReachConfig::default()
        }
    }

    fn assert_same_exploration(a: &Exploration, b: &Exploration) {
        assert_eq!(a.count, b.count);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.edge_off, b.edge_off);
        assert_eq!(a.edge_arcs, b.edge_arcs);
        assert_eq!(a.fired, b.fired);
        assert_eq!(a.safe, b.safe);
    }

    /// Runs the spill engine for `levels` BFS levels, commits a
    /// checkpoint, and then *drops* the explorer — the unit-test stand-in
    /// for a SIGKILL: the RAII scratch run vanishes, the checkpoint
    /// directory survives.
    fn run_levels_then_crash(stg: &Stg, config: &ReachConfig, dir: &std::path::Path, levels: u64) {
        let width = narrow_width(stg).min(full_width(stg, config.max_tokens));
        let mut ex = SpillExplorer::new(stg, config, width, None).ok().expect("engine setup");
        let mut ctx = CheckpointCtx {
            dir: dir.to_path_buf(),
            config_digest: checkpoint::config_digest(config, ex.nshards),
            net_digest: checkpoint::net_digest(stg),
            written: 0,
            bytes: 0,
        };
        let mut rec = vec![0u64; ex.rec_words];
        let mut next = vec![0u64; ex.stride];
        for level in 1..=levels {
            assert!(ex.frontier.begin_level() > 0, "net exhausted before level {level}");
            ex.expand_level_sequential(&mut rec, &mut next).ok().expect("expand");
            ex.write_checkpoint(&mut ctx, level).ok().expect("checkpoint");
        }
        assert_eq!(ctx.written, levels as u32);
        assert!(ctx.bytes > 0);
        assert!(dir.join("MANIFEST").exists());
        assert!(dir.join(format!("gen-{levels}")).exists());
    }

    #[test]
    fn resume_after_crash_is_byte_identical() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let config = spill_config();
        let cold = explore_spill(&stg, &config).unwrap();
        for levels in 1..=3 {
            let dir = test_dir("resume");
            run_levels_then_crash(&stg, &config, &dir, levels);
            let resumed =
                explore_spill(&stg, &ReachConfig { resume: Some(dir.clone()), ..config.clone() })
                    .unwrap();
            assert_same_exploration(&cold, &resumed);
            let counters = resumed.spill.unwrap();
            assert_eq!(counters.resume_level, levels);
            // Success cleans the consumed checkpoint, keeps the dir.
            assert!(!dir.join("MANIFEST").exists());
            assert!(dir.exists());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn parallel_jobs_are_byte_identical() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let base = explore_spill(&stg, &spill_config()).unwrap();
        for jobs in [2, 4] {
            let parallel = explore_spill(&stg, &ReachConfig { jobs, ..spill_config() }).unwrap();
            assert_same_exploration(&base, &parallel);
        }
    }

    #[test]
    fn checkpointed_run_cleans_up_and_counts() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let dir = test_dir("cadence");
        let config = ReachConfig {
            checkpoint_every: 2,
            checkpoint_dir: Some(dir.clone()),
            ..spill_config()
        };
        let run = explore_spill(&stg, &config).unwrap();
        let cold = explore_spill(&stg, &spill_config()).unwrap();
        assert_same_exploration(&cold, &run);
        let counters = run.spill.unwrap();
        assert!(counters.checkpoints_written >= 2, "{}", counters.checkpoints_written);
        assert!(counters.checkpoint_bytes > 0);
        assert_eq!(counters.resume_level, 0);
        assert!(!dir.join("MANIFEST").exists(), "completed run must clean its checkpoints");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_every_without_dir_is_refused() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let config = ReachConfig { checkpoint_every: 2, ..spill_config() };
        match explore_spill(&stg, &config) {
            Err(ReachError::Checkpoint { detail }) => assert!(detail.contains("checkpoint_dir")),
            other => panic!("expected a checkpoint pairing error, got {other:?}"),
        }
    }

    #[test]
    fn resume_without_manifest_is_refused() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let dir = test_dir("empty");
        let config = ReachConfig { resume: Some(dir.clone()), ..spill_config() };
        match explore_spill(&stg, &config) {
            Err(ReachError::Checkpoint { detail }) => {
                assert!(detail.contains("nothing to resume"), "{detail}")
            }
            other => panic!("expected a missing-manifest error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_config_digest_is_refused_naming_both() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let config = spill_config();
        let dir = test_dir("cfg");
        run_levels_then_crash(&stg, &config, &dir, 1);
        let other = ReachConfig { max_tokens: 3, resume: Some(dir.clone()), ..config };
        match explore_spill(&stg, &other) {
            Err(ReachError::Checkpoint { detail }) => {
                assert!(detail.contains("configuration digest mismatch"), "{detail}");
                // Both digests are spelled out for the user.
                assert_eq!(detail.matches("0x").count(), 2, "{detail}");
            }
            other => panic!("expected a config digest refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_net_digest_is_refused_naming_both() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let config = spill_config();
        let dir = test_dir("net");
        run_levels_then_crash(&stg, &config, &dir, 1);
        let other_net = parse_g(&FORK_JOIN.replace(".model fj", ".model fk")).unwrap();
        match explore_spill(&other_net, &ReachConfig { resume: Some(dir.clone()), ..config }) {
            Err(ReachError::Checkpoint { detail }) => {
                assert!(detail.contains("net digest mismatch"), "{detail}");
                assert_eq!(detail.matches("0x").count(), 2, "{detail}");
            }
            other => panic!("expected a net digest refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_and_artifacts_are_refused_by_name() {
        let stg = parse_g(FORK_JOIN).unwrap();
        let config = spill_config();
        let dir = test_dir("corrupt");
        run_levels_then_crash(&stg, &config, &dir, 2);
        let resume = ReachConfig { resume: Some(dir.clone()), ..config };

        // Bit-flip the manifest: checksum refusal.
        let manifest_path = dir.join("MANIFEST");
        let pristine = std::fs::read(&manifest_path).unwrap();
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&manifest_path, &flipped).unwrap();
        match explore_spill(&stg, &resume) {
            Err(ReachError::Checkpoint { detail }) => {
                assert!(detail.contains("MANIFEST") && detail.contains("corrupt"), "{detail}")
            }
            other => panic!("expected a manifest corruption refusal, got {other:?}"),
        }

        // Truncated manifest: size refusal.
        std::fs::write(&manifest_path, &pristine[..pristine.len() / 2 / 8 * 8]).unwrap();
        match explore_spill(&stg, &resume) {
            Err(ReachError::Checkpoint { detail }) => {
                assert!(detail.contains("corrupt"), "{detail}")
            }
            other => panic!("expected a truncation refusal, got {other:?}"),
        }
        std::fs::write(&manifest_path, &pristine).unwrap();

        // Bit-flip an artifact: the error names the artifact file.
        for artifact in ["state", "shard-0.records", "edges.log"] {
            let path = dir.join("gen-2").join(artifact);
            let good = std::fs::read(&path).unwrap();
            if good.is_empty() {
                continue;
            }
            let mut bad = good.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x04;
            std::fs::write(&path, &bad).unwrap();
            match explore_spill(&stg, &resume) {
                Err(ReachError::Checkpoint { detail }) => {
                    assert!(detail.contains(artifact), "`{artifact}` not named in: {detail}")
                }
                other => panic!("expected `{artifact}` corruption refusal, got {other:?}"),
            }
            std::fs::write(&path, &good).unwrap();
        }

        // Truncate an artifact: length refusal naming the file.
        let path = dir.join("gen-2").join("frontier.pending");
        let good = std::fs::read(&path).unwrap();
        if !good.is_empty() {
            std::fs::write(&path, &good[..good.len() - 8]).unwrap();
            match explore_spill(&stg, &resume) {
                Err(ReachError::Checkpoint { detail }) => {
                    assert!(detail.contains("frontier.pending"), "{detail}")
                }
                other => panic!("expected a truncation refusal, got {other:?}"),
            }
            std::fs::write(&path, &good).unwrap();
        }

        // Everything restored: the checkpoint resumes cleanly again.
        let cold = explore_spill(&stg, &spill_config()).unwrap();
        let resumed = explore_spill(&stg, &resume).unwrap();
        assert_same_exploration(&cold, &resumed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
