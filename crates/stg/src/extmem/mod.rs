//! External-memory sharded reachability —
//! [`ReachStrategy::Spill`](crate::reach::ReachStrategy::Spill).
//!
//! The spill engine runs the *same* token game as the packed engine
//! (same mask-compiled transition net, same narrow-width speculation,
//! same BFS discovery order, same error semantics) but bounds peak
//! resident memory by [`ReachConfig::memory_budget`] instead of by the
//! state count:
//!
//! * **Paged state arena** (`arena`): packed markings live in
//!   fixed-stride pages; pages past the resident budget are written
//!   back to scratch files and faulted in on demand (clock eviction).
//! * **Hash-partitioned shards** (`shard`): the marking hash selects
//!   a shard; each shard owns its intern table and arena segment.
//!   Global state ids are assigned in BFS discovery order at intern
//!   time, so the merged graph's numbering — and therefore its bytes —
//!   are identical to the packed engine's.
//! * **Spill frontier and edge log** (`frontier`): the
//!   level-synchronized BFS frontier and the fired-edge log keep
//!   bounded in-memory buffers and overflow to sequential run files.
//! * **RAII manifest** (`manifest`): every scratch file lives in one
//!   run-scoped directory removed on drop — success, error and panic
//!   paths alike.
//!
//! What stays in memory regardless of the budget: the per-shard intern
//! tables and local→global maps (16–24 bytes per distinct state) and
//! the `O(states + edges)` outputs the caller asked for (BFS parents,
//! CSR offsets, the final materialized graph). The budget governs the
//! *working set* — marking storage, frontier, edge buffering — which is
//! what otherwise dwarfs the rest on token-game state explosions.

mod arena;
mod frontier;
mod manifest;
mod shard;

use crate::petri::{Stg, TransitionId};
use crate::reach::{
    full_width, narrow_width, Abort, Exploration, FireFault, PackedNet, ReachConfig, ReachError,
};
use frontier::{EdgeLog, SpillFrontier};
use manifest::SpillManifest;
use shard::{hash_words, shard_of, Interned, Shard};
use simap_sg::{Event, SignalId, StateId};
use std::rc::Rc;

/// Disk and memory counters of one spill exploration, reported through
/// [`crate::reach::ReachStats::spill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillCounters {
    /// Total bytes written to scratch files (arena pages, frontier runs,
    /// edge log). Zero when the whole run fit in the budget.
    pub spilled_bytes: u64,
    /// Scratch files created (all inside the run directory, all removed
    /// when the exploration ends).
    pub files_created: u32,
    /// Peak resident bytes of the budgeted working set: arena page
    /// caches plus frontier and edge-log buffers. At most
    /// [`SpillCounters::budget`], up to small per-component floors (two
    /// pages per shard, one record per frontier buffer).
    pub resident_peak: u64,
    /// In-memory index bytes outside the budgeted working set (intern
    /// tables, local→global maps): `O(distinct states)`.
    pub table_bytes: u64,
    /// The effective memory budget the run was held to.
    pub budget: u64,
    /// The effective shard count.
    pub shards: u32,
}

/// Smallest honored budget (one arena page): below this the component
/// floors (two arena pages per shard, one frontier record per buffer,
/// one buffered edge) dominate anyway.
const MIN_BUDGET: usize = 4096;

/// Shard-count ceiling (each shard pins up to two arena pages).
const MAX_SHARDS: usize = 512;

/// Runs the token game with the external-memory engine. Graphs — and
/// errors — are byte-identical to [`crate::reach::explore_packed`] on
/// every net both can elaborate.
pub(crate) fn explore_spill(stg: &Stg, config: &ReachConfig) -> Result<Exploration, ReachError> {
    // Same narrow-width speculation as the packed engine: restart once
    // at full width if a field overflows. Both attempts explore in
    // identical BFS order, so the restart is invisible in the output.
    let narrow = narrow_width(stg);
    let full = full_width(stg, config.max_tokens);
    match explore_spill_at(stg, config, narrow.min(full)) {
        Err(Abort::Widen) => match explore_spill_at(stg, config, full) {
            Ok(exploration) => Ok(exploration),
            Err(Abort::Error(e)) => Err(e),
            Err(Abort::Widen) => unreachable!("full-width runs cannot ask to widen"),
        },
        Ok(exploration) => Ok(exploration),
        Err(Abort::Error(e)) => Err(e),
    }
}

fn io_abort(context: &str, e: std::io::Error) -> Abort {
    Abort::Error(ReachError::Spill { detail: format!("{context}: {e}") })
}

fn explore_spill_at(stg: &Stg, config: &ReachConfig, width: u32) -> Result<Exploration, Abort> {
    let net = PackedNet::compile(stg, config.max_tokens, width);
    let stride = net.words;
    let t_words = net.t_words;
    let n_transitions = stg.transition_count();

    let budget = config.memory_budget.max(MIN_BUDGET);
    let nshards = config.shards.clamp(1, MAX_SHARDS);
    // Working-set split: half to the sharded arena page caches, a
    // quarter to the frontier buffers, the rest to the edge log.
    let arena_share = budget / 2;
    let frontier_share = budget / 4;
    let edge_share = budget - arena_share - frontier_share;

    let manifest = Rc::new(SpillManifest::create(config.spill_dir.as_deref())?);
    let mut shards: Vec<Shard> = (0..nshards)
        .map(|i| {
            Shard::new(
                stride,
                arena_share / nshards,
                format!("shard-{i}.arena"),
                Rc::clone(&manifest),
            )
        })
        .collect();
    let mut frontier = SpillFrontier::new(stride + t_words, frontier_share, Rc::clone(&manifest));
    let mut edges = EdgeLog::new(edge_share, Rc::clone(&manifest));

    // Event code per transition: `(signal << 1) | rising` — decoded back
    // when the edge log is replayed.
    let events: Vec<u64> = stg
        .transitions()
        .iter()
        .map(|t| ((t.event.signal.0 as u64) << 1) | u64::from(t.event.rising))
        .collect();

    let mut initial = vec![0u64; stride];
    net.pack_into(stg.initial_marking(), &mut initial);
    let mut safe = net.multi.iter().zip(&initial).all(|(&m, &w)| w & m == 0);

    // The initial state's enabled set is the one full per-transition
    // scan; every other state derives its set incrementally from its
    // BFS parent's (carried through the frontier records).
    let mut mask0 = vec![0u64; t_words];
    for t in 0..n_transitions {
        if net.enabled(&initial, TransitionId(t)) {
            mask0[t / 64] |= 1u64 << (t % 64);
        }
    }

    let h0 = hash_words(&initial);
    match shards[shard_of(h0, nshards)].intern(&initial, h0).map_err(|e| io_abort("intern", e))? {
        Interned::New => shards[shard_of(h0, nshards)]
            .commit(&initial, 0)
            .map_err(|e| io_abort("arena append", e))?,
        Interned::Existing(_) => unreachable!("empty shard cannot know the initial marking"),
    }
    frontier.push(&initial, &mask0).map_err(|e| io_abort("frontier write", e))?;

    let mut count: usize = 1;
    let mut parent: Vec<Option<(usize, TransitionId)>> = vec![None];
    let mut fired = vec![false; n_transitions];
    let mut edge_off: Vec<usize> = Vec::new();
    let mut rec = vec![0u64; stride + t_words];
    let mut next = vec![0u64; stride];
    let mut succ_mask = vec![0u64; t_words];
    let mut src = 0usize;

    loop {
        if frontier.begin_level() == 0 {
            break;
        }
        while frontier.next(&mut rec).map_err(|e| io_abort("frontier read", e))? {
            let (cur, cur_mask) = rec.split_at(stride);
            edge_off.push(edges.len());
            for (w, &bits) in cur_mask.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let t = TransitionId(w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                    fired[t.0] = true;
                    if let Some(f) = net.fire(stg, cur, t, &mut next) {
                        return Err(match f {
                            FireFault::Unbounded(p) => Abort::Error(ReachError::Unbounded {
                                place: stg.places()[p.0].name.clone(),
                                max_tokens: config.max_tokens,
                                visited: src,
                            }),
                            FireFault::Widen => Abort::Widen,
                        });
                    }
                    let h = hash_words(&next);
                    let sh = shard_of(h, nshards);
                    let dst =
                        match shards[sh].intern(&next, h).map_err(|e| io_abort("intern", e))? {
                            Interned::Existing(g) => g,
                            Interned::New => {
                                let candidate = count;
                                if candidate >= config.max_states {
                                    return Err(Abort::Error(ReachError::StateLimit {
                                        limit: config.max_states,
                                        visited: src,
                                    }));
                                }
                                if safe && net.multi.iter().zip(&next).any(|(&m, &v)| v & m != 0) {
                                    safe = false;
                                }
                                // Incremental enabled set, exactly as packed:
                                // carry over what `t` cannot affect, recheck
                                // its neighborhood.
                                let keep = &net.keep[t.0 * t_words..(t.0 + 1) * t_words];
                                for (s, (&e, &k)) in
                                    succ_mask.iter_mut().zip(cur_mask.iter().zip(keep))
                                {
                                    *s = e & k;
                                }
                                let (rs, re) = net.recheck_range[t.0];
                                for &u in &net.recheck[rs as usize..re as usize] {
                                    if net.enabled(&next, TransitionId(u as usize)) {
                                        succ_mask[u as usize / 64] |= 1u64 << (u % 64);
                                    }
                                }
                                shards[sh]
                                    .commit(&next, candidate as u64)
                                    .map_err(|e| io_abort("arena append", e))?;
                                parent.push(Some((src, t)));
                                frontier
                                    .push(&next, &succ_mask)
                                    .map_err(|e| io_abort("frontier write", e))?;
                                count += 1;
                                candidate as u64
                            }
                        };
                    edges.push(events[t.0], dst).map_err(|e| io_abort("edge log write", e))?;
                }
            }
            src += 1;
        }
    }
    edge_off.push(edges.len());

    let resident_peak = shards.iter().map(Shard::arena_peak_bytes).sum::<u64>()
        + frontier.peak_bytes()
        + edges.peak_bytes();
    let table_bytes = shards.iter().map(Shard::table_bytes).sum::<u64>();
    let mut edge_arcs: Vec<(Event, StateId)> = Vec::with_capacity(edges.len());
    edges
        .replay(|code, dst| {
            let event = Event { signal: SignalId((code >> 1) as usize), rising: code & 1 == 1 };
            edge_arcs.push((event, StateId(dst as usize)));
        })
        .map_err(|e| io_abort("edge log read", e))?;

    let counters = SpillCounters {
        spilled_bytes: manifest.bytes_spilled(),
        files_created: manifest.files_created(),
        resident_peak,
        table_bytes,
        budget: budget as u64,
        shards: nshards as u32,
    };
    Ok(Exploration { count, parent, edge_off, edge_arcs, fired, safe, spill: Some(counters) })
}
