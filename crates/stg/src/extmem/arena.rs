//! A file-backed append-only record arena with a bounded page cache.
//!
//! Records are fixed-stride `u64` slices grouped into fixed-size pages.
//! Pages past the resident budget are written back to a scratch file and
//! reloaded on demand (clock eviction, second-chance bit). Pages are
//! immutable once full, so a page written back once is never re-written
//! — eviction of an already-persisted page is free.

use super::manifest::SpillManifest;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::rc::Rc;

/// Bytes per arena page. Small enough that modest test budgets force
/// real evictions, large enough that write-back stays sequential-ish.
pub(crate) const PAGE_BYTES: usize = 4096;

/// Converts `words` to little-endian bytes and writes them at `pos`
/// (a byte offset); returns the bytes written.
pub(crate) fn write_words_at(mut file: &File, pos: u64, words: &[u64]) -> std::io::Result<u64> {
    file.seek(SeekFrom::Start(pos))?;
    let mut tmp = [0u8; 4096];
    for chunk in words.chunks(512) {
        let bytes = &mut tmp[..chunk.len() * 8];
        for (i, w) in chunk.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        file.write_all(bytes)?;
    }
    Ok(words.len() as u64 * 8)
}

/// Reads `words.len()` little-endian `u64`s starting at byte offset
/// `pos`.
pub(crate) fn read_words_at(mut file: &File, pos: u64, words: &mut [u64]) -> std::io::Result<()> {
    file.seek(SeekFrom::Start(pos))?;
    let mut tmp = [0u8; 4096];
    for chunk in words.chunks_mut(512) {
        let bytes = &mut tmp[..chunk.len() * 8];
        file.read_exact(bytes)?;
        for (i, w) in chunk.iter_mut().enumerate() {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(raw);
        }
    }
    Ok(())
}

/// One page slot: the data when resident, otherwise a marker that the
/// page lives (persisted) in the scratch file.
enum PageSlot {
    Resident { words: Box<[u64]>, persisted: bool, referenced: bool },
    Evicted,
}

/// The file-backed record arena.
pub(crate) struct PagedArena {
    /// `u64` words per record.
    stride: usize,
    /// Records per page (≥ 1).
    per_page: usize,
    /// `per_page * stride`.
    page_words: usize,
    /// Total records appended.
    len: u64,
    pages: Vec<PageSlot>,
    /// Resident pages right now / at peak.
    resident: usize,
    resident_peak: usize,
    /// Resident-page budget (≥ 2: the mutable tail plus one readable).
    max_resident: usize,
    /// Clock hand for second-chance eviction.
    hand: usize,
    /// Scratch file, created on first eviction only.
    file: Option<File>,
    file_name: String,
    manifest: Rc<SpillManifest>,
}

impl PagedArena {
    /// An arena for `stride`-word records whose resident pages fit in
    /// roughly `budget_bytes` (floored at two pages).
    pub(crate) fn new(
        stride: usize,
        budget_bytes: usize,
        file_name: String,
        manifest: Rc<SpillManifest>,
    ) -> PagedArena {
        let stride = stride.max(1);
        let per_page = (PAGE_BYTES / (stride * 8)).max(1);
        let page_words = per_page * stride;
        let max_resident = (budget_bytes / (page_words * 8)).max(2);
        PagedArena {
            stride,
            per_page,
            page_words,
            len: 0,
            pages: Vec::new(),
            resident: 0,
            resident_peak: 0,
            max_resident,
            hand: 0,
            file: None,
            file_name,
            manifest,
        }
    }

    /// Records appended so far.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Streams every record, in append order, through `f` — resident
    /// pages straight from memory, evicted pages read from the scratch
    /// file into one transient page buffer (the cache is left exactly as
    /// it was, so a snapshot never perturbs eviction state).
    pub(crate) fn snapshot_records(
        &self,
        mut f: impl FnMut(&[u64]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let mut spare: Option<Box<[u64]>> = None;
        for page in 0..self.pages.len() {
            let full = ((page + 1) * self.per_page) as u64 <= self.len;
            let records_here = if full {
                self.per_page
            } else {
                (self.len - (page * self.per_page) as u64) as usize
            };
            match &self.pages[page] {
                PageSlot::Resident { words, .. } => {
                    f(&words[..records_here * self.stride])?;
                }
                PageSlot::Evicted => {
                    let words =
                        spare.get_or_insert_with(|| vec![0u64; self.page_words].into_boxed_slice());
                    let file = self.file.as_ref().expect("evicted pages imply a scratch file");
                    read_words_at(file, page as u64 * self.page_words as u64 * 8, words)?;
                    f(&words[..records_here * self.stride])?;
                }
            }
        }
        Ok(())
    }

    /// Peak resident page-cache footprint in bytes.
    pub(crate) fn resident_peak_bytes(&self) -> u64 {
        self.resident_peak as u64 * self.page_words as u64 * 8
    }

    /// Appends one record, evicting a cold page first if the cache is at
    /// budget; returns the record's index.
    pub(crate) fn push(&mut self, record: &[u64]) -> std::io::Result<u64> {
        debug_assert_eq!(record.len(), self.stride);
        let idx = self.len;
        let slot_in_page = (idx % self.per_page as u64) as usize;
        if slot_in_page == 0 {
            // Starting a fresh tail page: make room, then allocate it.
            if self.resident >= self.max_resident {
                self.evict_one()?;
            }
            self.pages.push(PageSlot::Resident {
                words: vec![0u64; self.page_words].into_boxed_slice(),
                persisted: false,
                referenced: false,
            });
            self.resident += 1;
            self.resident_peak = self.resident_peak.max(self.resident);
        }
        let tail = self.pages.len() - 1;
        match &mut self.pages[tail] {
            PageSlot::Resident { words, .. } => {
                let off = slot_in_page * self.stride;
                words[off..off + self.stride].copy_from_slice(record);
            }
            PageSlot::Evicted => unreachable!("tail page is never evicted"),
        }
        self.len = idx + 1;
        Ok(idx)
    }

    /// Compares record `idx` against `needle` without copying it out,
    /// faulting the page in if needed.
    pub(crate) fn record_eq(&mut self, idx: u64, needle: &[u64]) -> std::io::Result<bool> {
        debug_assert_eq!(needle.len(), self.stride);
        let page = (idx / self.per_page as u64) as usize;
        let off = (idx % self.per_page as u64) as usize * self.stride;
        self.ensure_resident(page)?;
        match &mut self.pages[page] {
            PageSlot::Resident { words, referenced, .. } => {
                *referenced = true;
                Ok(&words[off..off + self.stride] == needle)
            }
            PageSlot::Evicted => unreachable!("ensure_resident loaded the page"),
        }
    }

    /// Copies record `idx` into `out`, faulting the page in if needed.
    #[cfg(test)]
    pub(crate) fn read_record(&mut self, idx: u64, out: &mut [u64]) -> std::io::Result<()> {
        let page = (idx / self.per_page as u64) as usize;
        let off = (idx % self.per_page as u64) as usize * self.stride;
        self.ensure_resident(page)?;
        match &mut self.pages[page] {
            PageSlot::Resident { words, referenced, .. } => {
                *referenced = true;
                out.copy_from_slice(&words[off..off + self.stride]);
                Ok(())
            }
            PageSlot::Evicted => unreachable!("ensure_resident loaded the page"),
        }
    }

    fn ensure_resident(&mut self, page: usize) -> std::io::Result<()> {
        if matches!(self.pages[page], PageSlot::Resident { .. }) {
            return Ok(());
        }
        if self.resident >= self.max_resident {
            self.evict_one()?;
        }
        let mut words = vec![0u64; self.page_words].into_boxed_slice();
        let file = self.file.as_ref().expect("evicted pages imply a scratch file");
        read_words_at(file, page as u64 * self.page_words as u64 * 8, &mut words)?;
        self.pages[page] = PageSlot::Resident { words, persisted: true, referenced: false };
        self.resident += 1;
        self.resident_peak = self.resident_peak.max(self.resident);
        Ok(())
    }

    /// Evicts one resident non-tail page, chosen by the clock hand
    /// (skipping pages whose reference bit grants a second chance),
    /// writing it back first if it was never persisted.
    fn evict_one(&mut self) -> std::io::Result<()> {
        let n = self.pages.len();
        debug_assert!(n > 1, "eviction needs a non-tail page");
        let tail = n - 1;
        // Two sweeps suffice: the first clears reference bits, the second
        // finds a victim.
        let mut victim = None;
        for _ in 0..2 * n {
            let p = self.hand % n;
            self.hand = self.hand.wrapping_add(1);
            if p == tail {
                continue;
            }
            match &mut self.pages[p] {
                PageSlot::Resident { referenced, .. } if *referenced => *referenced = false,
                PageSlot::Resident { .. } => {
                    victim = Some(p);
                    break;
                }
                PageSlot::Evicted => {}
            }
        }
        let p = victim.expect("clock sweep finds a victim among resident non-tail pages");
        let slot = std::mem::replace(&mut self.pages[p], PageSlot::Evicted);
        if let PageSlot::Resident { words, persisted: false, .. } = slot {
            if self.file.is_none() {
                self.file = Some(self.manifest.create_file(&self.file_name)?);
            }
            let file = self.file.as_ref().expect("just created");
            let bytes = write_words_at(file, p as u64 * self.page_words as u64 * 8, &words)?;
            self.manifest.note_spilled(bytes);
        }
        self.resident -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_arena(stride: usize, budget: usize) -> (PagedArena, Rc<SpillManifest>) {
        let manifest = Rc::new(SpillManifest::create(None).unwrap());
        let arena = PagedArena::new(stride, budget, "test.arena".into(), Rc::clone(&manifest));
        (arena, manifest)
    }

    #[test]
    fn records_survive_eviction_and_reload() {
        // Budget of 2 pages with stride 4 ⇒ 128 records per page; push
        // enough for many pages so most live on disk at any moment.
        let (mut arena, manifest) = tiny_arena(4, 2 * PAGE_BYTES);
        let n: u64 = 2000;
        for i in 0..n {
            let rec = [i, i.wrapping_mul(7), !i, i ^ 0xdead];
            assert_eq!(arena.push(&rec).unwrap(), i);
        }
        assert!(manifest.bytes_spilled() > 0, "small budget must spill");
        let mut out = [0u64; 4];
        // Read back in a hostile order (alternating ends) to force
        // faults both directions.
        for k in 0..n {
            let i = if k % 2 == 0 { k / 2 } else { n - 1 - k / 2 };
            arena.read_record(i, &mut out).unwrap();
            assert_eq!(out, [i, i.wrapping_mul(7), !i, i ^ 0xdead]);
            assert!(arena.record_eq(i, &out).unwrap());
            assert!(!arena.record_eq(i, &[u64::MAX; 4]).unwrap());
        }
        assert!(
            arena.resident_peak_bytes() <= 2 * PAGE_BYTES as u64,
            "resident pages stayed within budget"
        );
    }

    #[test]
    fn generous_budget_never_touches_disk() {
        let (mut arena, manifest) = tiny_arena(2, 64 * 1024 * 1024);
        for i in 0..5000u64 {
            arena.push(&[i, i + 1]).unwrap();
        }
        assert_eq!(manifest.bytes_spilled(), 0);
        assert_eq!(manifest.files_created(), 0);
        assert_eq!(arena.len(), 5000);
    }

    #[test]
    fn word_io_roundtrips() {
        let manifest = SpillManifest::create(None).unwrap();
        let file = manifest.create_file("io.bin").unwrap();
        let words: Vec<u64> = (0..1500u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        write_words_at(&file, 24, &words).unwrap();
        let mut back = vec![0u64; 1500];
        read_words_at(&file, 24, &mut back).unwrap();
        assert_eq!(words, back);
    }
}
