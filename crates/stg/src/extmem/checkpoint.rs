//! Durable checkpoint/restart of a spill exploration.
//!
//! At a configurable level cadence ([`ReachConfig::checkpoint_every`])
//! the spill engine snapshots its complete exploration state into
//! [`ReachConfig::checkpoint_dir`] — unlike the RAII scratch files of
//! [`super::manifest`], these artifacts survive the process, so a
//! multi-hour elaboration killed at level 4,000 resumes from the last
//! snapshot instead of the initial marking.
//!
//! One checkpoint is a *generation* directory `gen-<level>/` holding:
//!
//! * `state` — BFS scalars plus the in-memory outputs (parents, CSR
//!   offsets, fired set);
//! * `shard-<i>.tables` / `shard-<i>.records` — each shard's intern
//!   table, local→global map, and arena records;
//! * `frontier.pending` — the sealed next-level frontier records;
//! * `edges.log` — the full edge log so far;
//!
//! plus one top-level `MANIFEST`: engine format version, configuration
//! and net digests, the BFS level, geometry, and a `(length, checksum)`
//! entry per artifact, closed by a checksum over the manifest itself.
//! The manifest is written to `MANIFEST.tmp` and renamed into place, so
//! it is the atomic commit point: a crash mid-snapshot leaves the
//! previous manifest (and its generation) intact, and stale generations
//! are deleted only after the rename. Checkpoints are only taken at BFS
//! level boundaries — the one moment the frontier read side is fully
//! consumed — so a snapshot is level-consistent whether the level was
//! expanded sequentially or on [`ReachConfig::jobs`] workers.
//!
//! Resume ([`ReachConfig::resume`]) validates the manifest (magic,
//! version, checksums, both digests — refusing with a message naming
//! the stored and current digest on any mismatch) and then replays every
//! artifact through the engine's ordinary `push` paths into a *fresh*
//! RAII scratch run, so the checkpoint itself survives repeated crashes
//! and the budget/eviction machinery is exercised identically to a cold
//! run. Every corruption — truncation, bit flips, geometry lies — is
//! reported as a clean [`ReachError::Checkpoint`] naming the bad
//! artifact; nothing panics and no silently wrong graph can be built.

use super::arena::{read_words_at, write_words_at};
use super::frontier::{EdgeLog, SpillFrontier};
use super::shard::Shard;
use crate::petri::{Stg, TransitionId};
use crate::reach::{ReachConfig, ReachError};
use std::fs::File;
use std::path::{Path, PathBuf};

/// Checkpoint format version; bumped on any layout change so stale
/// checkpoints refuse cleanly instead of misparsing.
const FORMAT_VERSION: u64 = 1;

/// First manifest word — eight ASCII bytes of provenance.
const MAGIC: u64 = u64::from_be_bytes(*b"SIMAPCKP");

/// Fixed manifest header words before the per-artifact table.
const HEADER_WORDS: usize = 14;

/// FNV-1a 64 over bytes. A local copy: `simap-core` (which hosts the
/// flow-level digest) depends on this crate, not the other way around.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of the net a checkpoint belongs to: FNV-1a over its canonical
/// `.g` serialization, so any structural change (places, transitions,
/// arcs, marking, names) refuses a resume.
pub(crate) fn net_digest(stg: &Stg) -> u64 {
    fnv1a64(crate::write::write_g(stg).as_bytes())
}

/// Digest of the exploration-relevant configuration: the knobs that
/// change *what* is explored (limits, shard partitioning). Fan-out and
/// memory-budget knobs are deliberately excluded — they are proven not
/// to change a single output byte.
pub(crate) fn config_digest(config: &ReachConfig, nshards: usize) -> u64 {
    let canon = format!(
        "max_states={};max_tokens={};shards={nshards}",
        config.max_states, config.max_tokens
    );
    fnv1a64(canon.as_bytes())
}

/// Streaming word checksum with the same mixing as
/// [`super::shard::hash_words`].
struct WordCheck(u64);

impl WordCheck {
    fn new() -> WordCheck {
        WordCheck(0x9e37_79b9_7f4a_7c15)
    }

    fn update(&mut self, words: &[u64]) {
        let mut h = self.0;
        for &w in words {
            h ^= w;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
            h ^= h >> 31;
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0 | 1
    }
}

fn ck_err(detail: String) -> ReachError {
    ReachError::Checkpoint { detail }
}

/// Name of artifact `i` given the shard count — the manifest's artifact
/// table is positional, so corruption reports can still name the file.
fn artifact_name(i: usize, nshards: usize) -> String {
    match i {
        0 => "state".to_string(),
        i if i <= nshards => format!("shard-{}.tables", i - 1),
        i if i <= 2 * nshards => format!("shard-{}.records", i - 1 - nshards),
        i if i == 2 * nshards + 1 => "frontier.pending".to_string(),
        _ => "edges.log".to_string(),
    }
}

fn artifact_count(nshards: usize) -> usize {
    2 * nshards + 3
}

/// Counters and identity of the checkpoint stream of one exploration.
pub(crate) struct CheckpointCtx {
    pub(crate) dir: PathBuf,
    pub(crate) config_digest: u64,
    pub(crate) net_digest: u64,
    /// Snapshots committed by this run.
    pub(crate) written: u32,
    /// Total bytes of committed checkpoint artifacts and manifests.
    pub(crate) bytes: u64,
}

/// A borrowed view of the full engine state at a level boundary —
/// everything [`write`] persists.
pub(crate) struct Snapshot<'a> {
    pub(crate) level: u64,
    pub(crate) width: u32,
    pub(crate) count: usize,
    pub(crate) src: usize,
    pub(crate) safe: bool,
    pub(crate) stride: usize,
    pub(crate) t_words: usize,
    pub(crate) shards: &'a [Shard],
    pub(crate) frontier: &'a SpillFrontier,
    pub(crate) edges: &'a EdgeLog,
    pub(crate) parent: &'a [Option<(usize, TransitionId)>],
    pub(crate) edge_off: &'a [usize],
    pub(crate) fired: &'a [bool],
}

/// One artifact being written: sequential word appends with a running
/// checksum.
struct ArtifactWriter {
    file: File,
    rel: String,
    words: u64,
    check: WordCheck,
}

impl ArtifactWriter {
    fn create(gen_dir: &Path, rel: &str) -> Result<ArtifactWriter, ReachError> {
        let file = File::create(gen_dir.join(rel)).map_err(|e| {
            ck_err(format!(
                "cannot create checkpoint artifact `{rel}` in `{}`: {e}",
                gen_dir.display()
            ))
        })?;
        Ok(ArtifactWriter { file, rel: rel.to_string(), words: 0, check: WordCheck::new() })
    }

    fn write(&mut self, words: &[u64]) -> Result<(), ReachError> {
        write_words_at(&self.file, self.words * 8, words)
            .map_err(|e| ck_err(format!("cannot write checkpoint artifact `{}`: {e}", self.rel)))?;
        self.words += words.len() as u64;
        self.check.update(words);
        Ok(())
    }

    /// Closes the artifact, returning its `(word length, checksum)`
    /// manifest entry.
    fn finish(self) -> (u64, u64) {
        (self.words, self.check.finish())
    }
}

/// Atomically commits one checkpoint generation: artifacts into
/// `gen-<level>/`, then the manifest via temp+rename, then stale
/// generations removed.
pub(crate) fn write(ctx: &mut CheckpointCtx, snap: &Snapshot<'_>) -> Result<(), ReachError> {
    let gen_name = format!("gen-{}", snap.level);
    let gen_dir = ctx.dir.join(&gen_name);
    // A crashed (uncommitted) or superseded generation of the same level
    // may linger; start it from scratch.
    if gen_dir.exists() {
        std::fs::remove_dir_all(&gen_dir).map_err(|e| {
            ck_err(format!("cannot clear stale generation `{}`: {e}", gen_dir.display()))
        })?;
    }
    std::fs::create_dir_all(&gen_dir).map_err(|e| {
        ck_err(format!("cannot create checkpoint generation `{}`: {e}", gen_dir.display()))
    })?;

    let nshards = snap.shards.len();
    let mut entries: Vec<(u64, u64)> = Vec::with_capacity(artifact_count(nshards));

    // Artifact 0: scalars + parents + CSR offsets + fired set.
    let mut w = ArtifactWriter::create(&gen_dir, "state")?;
    let n_transitions = snap.fired.len();
    w.write(&[snap.count as u64, snap.src as u64, n_transitions as u64])?;
    let mut buf: Vec<u64> = Vec::with_capacity(4096);
    for p in snap.parent {
        let (a, b) = match p {
            None => (u64::MAX, u64::MAX),
            Some((src, t)) => (*src as u64, t.0 as u64),
        };
        buf.push(a);
        buf.push(b);
        if buf.len() >= 4096 {
            w.write(&buf)?;
            buf.clear();
        }
    }
    for &off in snap.edge_off {
        buf.push(off as u64);
        if buf.len() >= 4096 {
            w.write(&buf)?;
            buf.clear();
        }
    }
    w.write(&buf)?;
    let mut fired_words = vec![0u64; n_transitions.div_ceil(64).max(1)];
    for (t, &fired) in snap.fired.iter().enumerate() {
        if fired {
            fired_words[t / 64] |= 1u64 << (t % 64);
        }
    }
    w.write(&fired_words)?;
    entries.push(w.finish());

    // Artifacts 1..=n: intern tables; n+1..=2n: arena records. A write
    // failure inside the streaming callback is smuggled out through
    // `ck_fail` (the components' snapshot hooks only speak io::Error).
    for (i, shard) in snap.shards.iter().enumerate() {
        let mut w = ArtifactWriter::create(&gen_dir, &format!("shard-{i}.tables"))?;
        w.write(&shard.snapshot_tables())?;
        entries.push(w.finish());
    }
    let smuggle = |ck_fail: &mut Option<ReachError>, ck: ReachError| {
        *ck_fail = Some(ck);
        std::io::Error::other("checkpoint write failed")
    };
    for (i, shard) in snap.shards.iter().enumerate() {
        let mut w = ArtifactWriter::create(&gen_dir, &format!("shard-{i}.records"))?;
        let mut ck_fail = None;
        shard
            .snapshot_records(|words| w.write(words).map_err(|ck| smuggle(&mut ck_fail, ck)))
            .map_err(|e| {
                ck_fail.take().unwrap_or_else(|| {
                    ck_err(format!("cannot read shard {i} arena for snapshot: {e}"))
                })
            })?;
        entries.push(w.finish());
    }

    // Pending next-level frontier, then the edge log.
    let mut w = ArtifactWriter::create(&gen_dir, "frontier.pending")?;
    let mut ck_fail = None;
    snap.frontier
        .snapshot_pending(|words| w.write(words).map_err(|ck| smuggle(&mut ck_fail, ck)))
        .map_err(|e| {
            ck_fail.take().unwrap_or_else(|| {
                ck_err(format!("cannot read pending frontier for snapshot: {e}"))
            })
        })?;
    entries.push(w.finish());

    let mut w = ArtifactWriter::create(&gen_dir, "edges.log")?;
    let mut ck_fail = None;
    snap.edges.snapshot(|words| w.write(words).map_err(|ck| smuggle(&mut ck_fail, ck))).map_err(
        |e| {
            ck_fail
                .take()
                .unwrap_or_else(|| ck_err(format!("cannot read edge log for snapshot: {e}")))
        },
    )?;
    entries.push(w.finish());

    // The manifest: header, artifact table, self-checksum. Written to a
    // temp name and renamed — the rename is the commit point.
    let mut manifest: Vec<u64> = Vec::with_capacity(HEADER_WORDS + 2 * entries.len() + 1);
    manifest.extend_from_slice(&[
        MAGIC,
        FORMAT_VERSION,
        ctx.config_digest,
        ctx.net_digest,
        snap.level,
        u64::from(snap.width),
        snap.count as u64,
        snap.src as u64,
        u64::from(snap.safe),
        nshards as u64,
        snap.stride as u64,
        snap.t_words as u64,
        snap.edges.len() as u64,
        entries.len() as u64,
    ]);
    debug_assert_eq!(manifest.len(), HEADER_WORDS);
    for &(words, check) in &entries {
        manifest.push(words);
        manifest.push(check);
    }
    let mut check = WordCheck::new();
    check.update(&manifest);
    manifest.push(check.finish());

    let tmp = ctx.dir.join("MANIFEST.tmp");
    let file = File::create(&tmp)
        .map_err(|e| ck_err(format!("cannot create manifest `{}`: {e}", tmp.display())))?;
    write_words_at(&file, 0, &manifest)
        .map_err(|e| ck_err(format!("cannot write manifest `{}`: {e}", tmp.display())))?;
    file.sync_all()
        .map_err(|e| ck_err(format!("cannot sync manifest `{}`: {e}", tmp.display())))?;
    drop(file);
    std::fs::rename(&tmp, ctx.dir.join("MANIFEST"))
        .map_err(|e| ck_err(format!("cannot commit manifest in `{}`: {e}", ctx.dir.display())))?;

    // Committed: stale generations are now unreachable — drop them. A
    // failure here must not fail the run (the checkpoint is valid).
    if let Ok(read) = std::fs::read_dir(&ctx.dir) {
        for entry in read.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("gen-") && name != gen_name.as_str() {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }

    ctx.written += 1;
    ctx.bytes +=
        entries.iter().map(|&(words, _)| words * 8).sum::<u64>() + manifest.len() as u64 * 8;
    Ok(())
}

/// A parsed, checksum- and digest-validated manifest.
pub(crate) struct LoadedManifest {
    pub(crate) level: u64,
    pub(crate) width: u32,
    pub(crate) count: usize,
    pub(crate) src: usize,
    pub(crate) safe: bool,
    pub(crate) nshards: usize,
    pub(crate) stride: usize,
    pub(crate) t_words: usize,
    pub(crate) n_edges: usize,
    /// Per artifact (positional; see [`artifact_name`]): word length and
    /// checksum.
    artifacts: Vec<(u64, u64)>,
}

/// Reads and validates `dir/MANIFEST` against the current net and
/// configuration. Every failure is a [`ReachError::Checkpoint`] naming
/// what is wrong; digest mismatches name both digests.
pub(crate) fn load_manifest(
    dir: &Path,
    stg: &Stg,
    config: &ReachConfig,
    nshards: usize,
) -> Result<LoadedManifest, ReachError> {
    let path = dir.join("MANIFEST");
    let corrupt =
        |what: &str| ck_err(format!("checkpoint manifest `{}` is corrupt: {what}", path.display()));
    let file = File::open(&path).map_err(|e| {
        ck_err(format!(
            "cannot open checkpoint manifest `{}`: {e} (nothing to resume?)",
            path.display()
        ))
    })?;
    let bytes = file
        .metadata()
        .map_err(|e| ck_err(format!("cannot stat checkpoint manifest `{}`: {e}", path.display())))?
        .len();
    if bytes % 8 != 0 || bytes / 8 < (HEADER_WORDS + 1) as u64 || bytes > 1 << 30 {
        return Err(corrupt("implausible size"));
    }
    let mut words = vec![0u64; (bytes / 8) as usize];
    read_words_at(&file, 0, &mut words).map_err(|e| {
        ck_err(format!("cannot read checkpoint manifest `{}`: {e}", path.display()))
    })?;

    let (body, tail) = words.split_at(words.len() - 1);
    let mut check = WordCheck::new();
    check.update(body);
    if check.finish() != tail[0] {
        return Err(corrupt("checksum mismatch"));
    }
    if body[0] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if body[1] != FORMAT_VERSION {
        return Err(ck_err(format!(
            "checkpoint manifest `{}` has format version {}, this engine reads version {}",
            path.display(),
            body[1],
            FORMAT_VERSION
        )));
    }
    let want_config = config_digest(config, nshards);
    if body[2] != want_config {
        return Err(ck_err(format!(
            "configuration digest mismatch: checkpoint was written under config digest \
             {:#018x}, the resuming run uses {want_config:#018x} (max_states, max_tokens and \
             shards must match)",
            body[2]
        )));
    }
    let want_net = net_digest(stg);
    if body[3] != want_net {
        return Err(ck_err(format!(
            "net digest mismatch: checkpoint was written for net digest {:#018x}, the current \
             net digests to {want_net:#018x} (resume must use the exact same specification)",
            body[3]
        )));
    }
    let m_nshards = body[9] as usize;
    let n_artifacts = body[13] as usize;
    if m_nshards != nshards
        || n_artifacts != artifact_count(nshards)
        || body.len() != HEADER_WORDS + 2 * n_artifacts
    {
        return Err(corrupt("artifact table disagrees with the shard count"));
    }
    let width = body[5];
    if !(2..=64).contains(&width) {
        return Err(corrupt("implausible field width"));
    }
    let artifacts = body[HEADER_WORDS..].chunks_exact(2).map(|pair| (pair[0], pair[1])).collect();
    Ok(LoadedManifest {
        level: body[4],
        width: width as u32,
        count: body[6] as usize,
        src: body[7] as usize,
        safe: body[8] != 0,
        nshards: m_nshards,
        stride: body[10] as usize,
        t_words: body[11] as usize,
        n_edges: body[12] as usize,
        artifacts,
    })
}

/// One artifact being read back: bounded sequential word reads with a
/// running checksum, verified at the end.
struct ArtifactReader {
    file: File,
    rel: String,
    pos: u64,
    words: u64,
    check: WordCheck,
    expect_check: u64,
}

impl ArtifactReader {
    fn open(gen_dir: &Path, rel: String, entry: (u64, u64)) -> Result<ArtifactReader, ReachError> {
        let path = gen_dir.join(&rel);
        let file = File::open(&path)
            .map_err(|e| ck_err(format!("cannot open checkpoint artifact `{rel}`: {e}")))?;
        let bytes = file
            .metadata()
            .map_err(|e| ck_err(format!("cannot stat checkpoint artifact `{rel}`: {e}")))?
            .len();
        if bytes != entry.0 * 8 {
            return Err(ck_err(format!(
                "checkpoint artifact `{rel}` is corrupt: {} bytes on disk, manifest records {}",
                bytes,
                entry.0 * 8
            )));
        }
        Ok(ArtifactReader {
            file,
            rel,
            pos: 0,
            words: entry.0,
            check: WordCheck::new(),
            expect_check: entry.1,
        })
    }

    fn remaining(&self) -> u64 {
        self.words - self.pos
    }

    fn read(&mut self, out: &mut [u64]) -> Result<(), ReachError> {
        debug_assert!(out.len() as u64 <= self.remaining());
        read_words_at(&self.file, self.pos * 8, out)
            .map_err(|e| ck_err(format!("cannot read checkpoint artifact `{}`: {e}", self.rel)))?;
        self.pos += out.len() as u64;
        self.check.update(out);
        Ok(())
    }

    /// Verifies the running checksum once everything was consumed.
    fn verify(self) -> Result<(), ReachError> {
        debug_assert_eq!(self.pos, self.words);
        if self.check.finish() != self.expect_check {
            return Err(ck_err(format!(
                "checkpoint artifact `{}` is corrupt: checksum mismatch",
                self.rel
            )));
        }
        Ok(())
    }
}

/// The in-memory exploration state [`restore`] hands back to the engine
/// (the file-backed components are refilled in place).
pub(crate) struct RestoredState {
    pub(crate) count: usize,
    pub(crate) src: usize,
    pub(crate) parent: Vec<Option<(usize, TransitionId)>>,
    pub(crate) edge_off: Vec<usize>,
    pub(crate) fired: Vec<bool>,
}

/// Replays every artifact of the manifest's generation into freshly
/// constructed engine components, via their ordinary `push` paths.
pub(crate) fn restore(
    dir: &Path,
    m: &LoadedManifest,
    n_transitions: usize,
    shards: &mut [Shard],
    frontier: &mut SpillFrontier,
    edges: &mut EdgeLog,
) -> Result<RestoredState, ReachError> {
    let gen_dir = dir.join(format!("gen-{}", m.level));
    let nshards = m.nshards;
    let name = |i: usize| artifact_name(i, nshards);
    let bad =
        |rel: &str, what: &str| ck_err(format!("checkpoint artifact `{rel}` is corrupt: {what}"));

    // Artifact 0: state.
    let rel = name(0);
    let mut r = ArtifactReader::open(&gen_dir, rel.clone(), m.artifacts[0])?;
    let fired_words = n_transitions.div_ceil(64).max(1);
    let expect = 3 + 2 * m.count as u64 + m.src as u64 + fired_words as u64;
    if r.words != expect {
        return Err(bad(&rel, "length disagrees with the manifest geometry"));
    }
    let mut words = vec![0u64; r.words as usize];
    r.read(&mut words)?;
    r.verify()?;
    if words[0] != m.count as u64 || words[1] != m.src as u64 || words[2] != n_transitions as u64 {
        return Err(bad(&rel, "header disagrees with the manifest"));
    }
    let mut parent: Vec<Option<(usize, TransitionId)>> = Vec::with_capacity(m.count);
    for pair in words[3..3 + 2 * m.count].chunks_exact(2) {
        let (p, t) = (pair[0], pair[1]);
        parent.push(if p == u64::MAX && t == u64::MAX {
            None
        } else {
            if p as usize >= m.count || t as usize >= n_transitions {
                return Err(bad(&rel, "parent entry out of range"));
            }
            Some((p as usize, TransitionId(t as usize)))
        });
    }
    let off_base = 3 + 2 * m.count;
    let mut edge_off: Vec<usize> = Vec::with_capacity(m.src + 1);
    let mut last = 0u64;
    for &off in &words[off_base..off_base + m.src] {
        if off < last || off > m.n_edges as u64 {
            return Err(bad(&rel, "CSR offsets are not monotone within the edge count"));
        }
        last = off;
        edge_off.push(off as usize);
    }
    let fired_base = off_base + m.src;
    let mut fired = vec![false; n_transitions];
    for (t, f) in fired.iter_mut().enumerate() {
        *f = words[fired_base + t / 64] >> (t % 64) & 1 == 1;
    }
    drop(words);

    // Shard tables, then shard records (streamed through the arenas).
    for (i, shard) in shards.iter_mut().enumerate() {
        let rel = name(1 + i);
        let mut r = ArtifactReader::open(&gen_dir, rel.clone(), m.artifacts[1 + i])?;
        if r.words > 1 << 33 {
            return Err(bad(&rel, "implausible size"));
        }
        let mut words = vec![0u64; r.words as usize];
        r.read(&mut words)?;
        r.verify()?;
        shard.restore_tables(&words).map_err(|what| bad(&rel, &what))?;
    }
    let mut total_records = 0u64;
    let mut rec = vec![0u64; m.stride];
    for (i, shard) in shards.iter_mut().enumerate() {
        let rel = name(1 + nshards + i);
        let mut r = ArtifactReader::open(&gen_dir, rel.clone(), m.artifacts[1 + nshards + i])?;
        let records = shard.records_expected();
        if r.words != records * m.stride as u64 {
            return Err(bad(&rel, "length disagrees with the shard's intern table"));
        }
        for _ in 0..records {
            r.read(&mut rec)?;
            shard
                .restore_record(&rec)
                .map_err(|e| ck_err(format!("cannot replay `{rel}` into the arena: {e}")))?;
        }
        r.verify()?;
        total_records += records;
    }
    if total_records != m.count as u64 {
        return Err(ck_err(format!(
            "checkpoint artifacts are corrupt: shards hold {total_records} markings, manifest \
             records {}",
            m.count
        )));
    }

    // Pending frontier records, then the edge log — both via push.
    let rel = name(1 + 2 * nshards);
    let mut r = ArtifactReader::open(&gen_dir, rel.clone(), m.artifacts[1 + 2 * nshards])?;
    let rec_words = m.stride + m.t_words;
    if r.words % rec_words as u64 != 0 {
        return Err(bad(&rel, "not a whole number of frontier records"));
    }
    let mut frec = vec![0u64; rec_words];
    while r.remaining() > 0 {
        r.read(&mut frec)?;
        frontier
            .push_record(&frec)
            .map_err(|e| ck_err(format!("cannot replay `{rel}` into the frontier: {e}")))?;
    }
    r.verify()?;

    let rel = name(2 + 2 * nshards);
    let mut r = ArtifactReader::open(&gen_dir, rel.clone(), m.artifacts[2 + 2 * nshards])?;
    if r.words != 2 * m.n_edges as u64 {
        return Err(bad(&rel, "length disagrees with the manifest edge count"));
    }
    let mut pair = [0u64; 2];
    while r.remaining() > 0 {
        r.read(&mut pair)?;
        edges
            .push(pair[0], pair[1])
            .map_err(|e| ck_err(format!("cannot replay `{rel}` into the edge log: {e}")))?;
    }
    r.verify()?;

    Ok(RestoredState { count: m.count, src: m.src, parent, edge_off, fired })
}

/// Removes the managed artifacts (manifest + generations) from a
/// checkpoint directory once the exploration completed — the directory
/// itself, and anything else in it, is left alone. Failures are
/// swallowed: cleanup must never fail a finished run.
pub(crate) fn clean(dir: &Path) {
    let _ = std::fs::remove_file(dir.join("MANIFEST"));
    let _ = std::fs::remove_file(dir.join("MANIFEST.tmp"));
    if let Ok(read) = std::fs::read_dir(dir) {
        for entry in read.flatten() {
            if entry.file_name().to_string_lossy().starts_with("gen-") {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
}
