//! Hash-partitioned marking shards.
//!
//! Each shard owns an open-addressing intern table (full 64-bit hash +
//! local record index per slot — collisions confirm against the actual
//! marking, faulting its arena page in if spilled) and a file-backed
//! [`PagedArena`] holding the shard's markings. A shard maps its local
//! record indices to *global* BFS state ids, so the merged state graph
//! keeps the exact discovery-order numbering of the packed engine.

use super::arena::PagedArena;
use super::manifest::SpillManifest;
use std::rc::Rc;

/// SplitMix64-style fold of a packed marking; also drives shard
/// selection (high bits) and slot probing (low bits).
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h | 1 // 0 marks an empty slot
}

/// Which shard owns a marking with hash `h` (high bits, independent of
/// the low bits the slot probe consumes).
pub(crate) fn shard_of(h: u64, shards: usize) -> usize {
    ((h >> 48) as usize) % shards
}

/// Outcome of an intern probe.
pub(crate) enum Interned {
    /// The marking is already known, with this global state id.
    Existing(u64),
    /// New marking: a table slot was reserved; the caller must either
    /// follow up with [`Shard::commit`] or abort the exploration.
    New,
}

/// One marking shard: intern table + file-backed arena + local→global
/// id map.
pub(crate) struct Shard {
    /// Full hash per slot (0 = empty), power-of-two sized.
    slot_hash: Vec<u64>,
    /// Local record index + 1 per slot (0 = empty), parallel to
    /// `slot_hash`.
    slot_local: Vec<u64>,
    /// Occupied slots.
    len: usize,
    mask: usize,
    arena: PagedArena,
    /// Local record index → global BFS state id.
    globals: Vec<u64>,
}

impl Shard {
    pub(crate) fn new(
        stride: usize,
        budget_bytes: usize,
        file_name: String,
        manifest: Rc<SpillManifest>,
    ) -> Shard {
        let cap = 1024;
        Shard {
            slot_hash: vec![0; cap],
            slot_local: vec![0; cap],
            len: 0,
            mask: cap - 1,
            arena: PagedArena::new(stride, budget_bytes, file_name, manifest),
            globals: Vec::new(),
        }
    }

    /// Looks `needle` (with precomputed hash `h`) up, reserving a slot on
    /// a miss. A reserved slot points at the *next* local record index;
    /// the caller commits it (or abandons the whole exploration — a
    /// dangling reservation is never observed again).
    pub(crate) fn intern(&mut self, needle: &[u64], h: u64) -> std::io::Result<Interned> {
        if (self.len + 1) * 3 > self.slot_hash.len() * 2 {
            self.grow();
        }
        let mut slot = (h as usize) & self.mask;
        loop {
            let occupied = self.slot_local[slot];
            if occupied == 0 {
                self.slot_hash[slot] = h;
                self.slot_local[slot] = self.globals.len() as u64 + 1;
                self.len += 1;
                return Ok(Interned::New);
            }
            let local = occupied - 1;
            if self.slot_hash[slot] == h && self.arena.record_eq(local, needle)? {
                return Ok(Interned::Existing(self.globals[local as usize]));
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Completes the reservation made by the last [`Interned::New`]:
    /// appends the marking to the arena and records its global id.
    pub(crate) fn commit(&mut self, needle: &[u64], global: u64) -> std::io::Result<()> {
        let local = self.arena.push(needle)?;
        debug_assert_eq!(local, self.globals.len() as u64);
        self.globals.push(global);
        Ok(())
    }

    /// Doubling rehash; needs no arena access since full hashes are
    /// stored per slot.
    fn grow(&mut self) {
        let cap = self.slot_hash.len() * 2;
        let mask = cap - 1;
        let mut slot_hash = vec![0u64; cap];
        let mut slot_local = vec![0u64; cap];
        for (i, &h) in self.slot_hash.iter().enumerate() {
            if self.slot_local[i] == 0 {
                continue;
            }
            let mut slot = (h as usize) & mask;
            while slot_local[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            slot_hash[slot] = h;
            slot_local[slot] = self.slot_local[i];
        }
        self.slot_hash = slot_hash;
        self.slot_local = slot_local;
        self.mask = mask;
    }

    /// Peak resident bytes of the shard's arena page cache.
    pub(crate) fn arena_peak_bytes(&self) -> u64 {
        self.arena.resident_peak_bytes()
    }

    /// Arena records this shard's restored tables expect (the
    /// local→global map length) — the record artifact must replay
    /// exactly this many markings.
    pub(crate) fn records_expected(&self) -> u64 {
        debug_assert!(self.arena.len() == 0 || self.arena.len() == self.globals.len() as u64);
        self.globals.len() as u64
    }

    /// Serializes the intern table and local→global map as one flat
    /// word vector: `[cap, len, slot_hash.., slot_local.., nglobals,
    /// globals..]` — everything a checkpoint needs besides the arena
    /// records themselves.
    pub(crate) fn snapshot_tables(&self) -> Vec<u64> {
        let cap = self.slot_hash.len();
        let mut out = Vec::with_capacity(2 * cap + self.globals.len() + 3);
        out.push(cap as u64);
        out.push(self.len as u64);
        out.extend_from_slice(&self.slot_hash);
        out.extend_from_slice(&self.slot_local);
        out.push(self.globals.len() as u64);
        out.extend_from_slice(&self.globals);
        out
    }

    /// Restores the intern table and local→global map from a
    /// [`Shard::snapshot_tables`] dump; the arena must be refilled
    /// separately through [`Shard::restore_record`].
    pub(crate) fn restore_tables(&mut self, words: &[u64]) -> Result<(), String> {
        let fail = |what: &str| Err(format!("shard table dump is corrupt: {what}"));
        if words.len() < 3 {
            return fail("too short");
        }
        let cap = words[0] as usize;
        if !cap.is_power_of_two() || !(1024..=(1usize << 40)).contains(&cap) {
            return fail("implausible table capacity");
        }
        let len = words[1] as usize;
        if words.len() < 2 + 2 * cap + 1 {
            return fail("truncated slot arrays");
        }
        let slot_hash = &words[2..2 + cap];
        let slot_local = &words[2 + cap..2 + 2 * cap];
        let nglobals = words[2 + 2 * cap] as usize;
        if words.len() != 2 + 2 * cap + 1 + nglobals {
            return fail("length disagrees with its own header");
        }
        if len > cap || nglobals != len {
            return fail("occupancy disagrees with the local\u{2192}global map");
        }
        if slot_local.iter().any(|&l| l as usize > nglobals) {
            return fail("slot points past the local\u{2192}global map");
        }
        self.slot_hash = slot_hash.to_vec();
        self.slot_local = slot_local.to_vec();
        self.len = len;
        self.mask = cap - 1;
        self.globals = words[3 + 2 * cap..].to_vec();
        Ok(())
    }

    /// Re-appends one marking record during a checkpoint restore; the
    /// table entry pointing at it was restored by
    /// [`Shard::restore_tables`].
    pub(crate) fn restore_record(&mut self, record: &[u64]) -> std::io::Result<()> {
        self.arena.push(record)?;
        Ok(())
    }

    /// Streams every committed marking (in local order) through `f`.
    pub(crate) fn snapshot_records(
        &self,
        f: impl FnMut(&[u64]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        self.arena.snapshot_records(f)
    }

    /// Bytes of in-memory index structures (intern table + local→global
    /// map) — deliberately *outside* the spillable working set, reported
    /// for observability.
    pub(crate) fn table_bytes(&self) -> u64 {
        (self.slot_hash.len() * 16 + self.globals.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_across_eviction() {
        let manifest = Rc::new(SpillManifest::create(None).unwrap());
        // Tiny arena budget: confirms collision checks fault pages back
        // in correctly.
        let mut shard = Shard::new(3, 8192, "s.arena".into(), Rc::clone(&manifest));
        let n = 4000u64;
        for i in 0..n {
            let rec = [i, i * 31, i ^ 0xabcdef];
            let h = hash_words(&rec);
            match shard.intern(&rec, h).unwrap() {
                Interned::New => shard.commit(&rec, i * 10).unwrap(),
                Interned::Existing(_) => panic!("fresh marking reported as existing"),
            }
        }
        assert!(manifest.bytes_spilled() > 0, "arena must have spilled");
        for i in 0..n {
            let rec = [i, i * 31, i ^ 0xabcdef];
            let h = hash_words(&rec);
            match shard.intern(&rec, h).unwrap() {
                Interned::Existing(g) => assert_eq!(g, i * 10),
                Interned::New => panic!("known marking reported as new"),
            }
        }
    }

    #[test]
    fn shard_of_covers_all_shards() {
        let shards = 8;
        let mut seen = vec![false; shards];
        for i in 0..512u64 {
            seen[shard_of(hash_words(&[i]), shards)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash high bits spread across shards");
    }
}
