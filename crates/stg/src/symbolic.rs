//! Symbolic BDD reachability for 1-safe STGs.
//!
//! Where the enumerative engines ([`crate::reach`]) intern one object per
//! marking, this engine manipulates the *set* of reachable markings as a
//! Boolean function. States are bit vectors — one bit per place, one bit
//! per signal — encoded over an **interleaved current/next variable
//! order** (the state bit at position `q` owns BDD variables `2q` and
//! `2q + 1`), the order under which the frame conditions `nextᵩ ↔ curᵩ`
//! stay linear. Bit positions themselves follow a structural locality
//! pass: walking the transitions in order, each signal is placed next to
//! the places its transitions consume and produce, so independent
//! subnets occupy disjoint variable ranges and the reachable set of a
//! product net stays a product (linear, not exponential, BDD).
//!
//! Every transition compiles into a (guard, update) relation:
//!
//! * place bits: pre places must be 1 and move to 0 unless also produced;
//!   produced places must be 0 (the 1-safe token game) and move to 1;
//! * the fired signal's bit moves from the event's pre-value to its
//!   post-value; every untouched bit carries a frame equivalence.
//!
//! The reachable set is the least fixed point of the union of the
//! per-transition images, each computed with the relational-product
//! primitive [`simap_boolean::Bdd::and_exists`] (conjoin with the
//! relation and existentially quantify the current-state variables in
//! one pass) followed by a [`simap_boolean::Bdd::rename`] swap of next
//! back to current. From the reachable BDD everything downstream needs
//! falls out without enumeration:
//!
//! * the **exact state count** via [`simap_boolean::Bdd::sat_count_set`];
//! * per-signal **excitation/quiescence region sizes**;
//! * the **CSC verdict**: conflict codes are derived by pairing the
//!   reachable set with a primed copy of itself, constraining the signal
//!   codes to be equal and the enabled non-input event sets to differ;
//! * dead transitions and the fired-edge count.
//!
//! Initial signal values are inferred symbolically, mirroring the
//! enumerative rule ("the first reachable transition of a signal fixes
//! its initial value"): for each signal the engine computes the markings
//! reachable *without ever firing that signal* — stopping at the first
//! sweep that surfaces an enabling — and reads the pre-value of the
//! enabled transition.
//!
//! An explicit [`StateGraph`] is materialized only when the counted state
//! space is at most [`ReachConfig::materialize_limit`] (and
//! [`ReachConfig::max_states`]). Materialization delegates to the packed
//! core, so the graph — state numbering, codes, arcs — is byte-identical
//! to the other strategies, and the independently computed symbolic
//! count, edge count, initial code and CSC codes are cross-checked
//! against it; any disagreement is reported as [`ReachError::Build`]
//! instead of silently trusted. Beyond the threshold, [`reach_symbolic`]
//! still answers with counts and verdicts — the "huge state space"
//! workload no enumerative engine can touch.
//!
//! Nets that are not 1-safe are outside this engine's scope and rejected
//! with [`ReachError::NotSafe`]; the enumerative strategies remain the
//! tool for multi-token nets.

use crate::petri::{PlaceId, Stg, TransitionId};
use crate::reach::{
    elaborate_with_stats, explore_packed, Exploration, ReachConfig, ReachError, ReachStats,
    ReachStrategy,
};
use simap_boolean::{Bdd, BddRef, VarSet};
use simap_sg::{check_csc, PropertyViolation, SignalId, StateGraph};

/// Per-signal excitation/quiescence region sizes, counted over the full
/// reachable set (states, not markings — the two coincide for consistent
/// nets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicRegions {
    /// The signal the counts describe.
    pub signal: SignalId,
    /// States where some rising transition of the signal is enabled.
    pub rise_excited: u64,
    /// States where some falling transition of the signal is enabled.
    pub fall_excited: u64,
    /// States where the signal is stable at 1 (no transition of it
    /// enabled).
    pub quiescent_high: u64,
    /// States where the signal is stable at 0.
    pub quiescent_low: u64,
}

/// The outcome of a symbolic reachability run ([`reach_symbolic`]).
#[derive(Debug)]
pub struct SymbolicReach {
    /// Exact number of reachable states.
    pub states: u64,
    /// Exact number of fired (state, transition) edges.
    pub edges: u64,
    /// The inferred initial signal code (bit `i` = signal `i`).
    pub initial_code: u64,
    /// Exact number of distinct signal codes involved in a CSC conflict
    /// (0 iff Complete State Coding holds), counted symbolically.
    pub csc_conflict_code_count: u64,
    /// The distinct signal codes involved in a CSC conflict, ascending.
    /// Enumerated up to [`MAX_CONFLICT_CODES`]; when
    /// [`SymbolicReach::csc_conflict_code_count`] exceeds the cap —
    /// conflicts multiplied through signals they are independent of can
    /// be astronomically many on product nets — the list holds only the
    /// first `MAX_CONFLICT_CODES` codes and the count is the authority.
    pub csc_conflict_codes: Vec<u64>,
    /// Excitation/quiescence region sizes, one entry per signal.
    pub regions: Vec<SymbolicRegions>,
    /// Transitions that never fire anywhere in the reachable set.
    pub dead_transitions: Vec<TransitionId>,
    /// The explicit state graph, materialized (byte-identically to the
    /// enumerative strategies) when `states` fits both
    /// [`ReachConfig::max_states`] and
    /// [`ReachConfig::materialize_limit`]; `None` above the threshold.
    pub graph: Option<StateGraph>,
    /// Reachability counters, reported whether or not a graph was
    /// materialized ([`ReachStats::strategy`] is
    /// [`ReachStrategy::Symbolic`]).
    pub stats: ReachStats,
    /// Live BDD nodes after the run (observability).
    pub bdd_nodes: usize,
}

/// The compiled symbolic space: variable layout, per-transition guards
/// and relations, quantification sets and rename maps.
struct Space<'a> {
    stg: &'a Stg,
    bdd: Bdd,
    nplaces: usize,
    /// Tracked signal count; 0 in place-only spaces (the
    /// [`explore_symbolic`] fast path doesn't need signal bits).
    nsignals: usize,
    /// Variable-order position of each state bit (places `0..nplaces`,
    /// then signals), from the structural locality pass.
    pos: Vec<usize>,
    /// Current-state variables of the place bits.
    cur_places: VarSet,
    /// Current-state variables of every tracked bit.
    cur_all: VarSet,
    /// Next→current rename maps (the post-image swap).
    down_places: Vec<(usize, usize)>,
    down_all: Vec<(usize, usize)>,
    /// Current→next rename map over every tracked bit (the priming pass
    /// of the CSC pairing).
    up_all: Vec<(usize, usize)>,
    /// Per transition: the place-only enabledness guard (pre places = 1).
    place_guard: Vec<BddRef>,
    /// Per transition: the place-only (guard, update, frame) relation.
    place_rel: Vec<BddRef>,
    /// Per transition: the full relation including the signal bits (same
    /// as `place_rel` in place-only spaces).
    full_rel: Vec<BddRef>,
}

/// Orders the state bits for locality: walking the transitions in order,
/// a transition's signal bit and its pre/post places are assigned
/// adjacent positions. Disjoint subnets end up in disjoint variable
/// ranges, which keeps the reachable set of a composed net in product
/// form — the difference between a linear and an exponential BDD.
fn bit_order(stg: &Stg, nplaces: usize, nsignals: usize) -> Vec<usize> {
    let bits = nplaces + nsignals;
    let mut pos = vec![usize::MAX; bits];
    let mut next = 0usize;
    let assign = |b: usize, pos: &mut Vec<usize>, next: &mut usize| {
        if pos[b] == usize::MAX {
            pos[b] = *next;
            *next += 1;
        }
    };
    for t in 0..stg.transition_count() {
        let t = TransitionId(t);
        if nsignals > 0 {
            assign(nplaces + stg.transitions()[t.0].event.signal.0, &mut pos, &mut next);
        }
        for &p in stg.pre(t) {
            assign(p.0, &mut pos, &mut next);
        }
        for &p in stg.post(t) {
            assign(p.0, &mut pos, &mut next);
        }
    }
    // Isolated places and never-labeled signals go last.
    for b in 0..bits {
        assign(b, &mut pos, &mut next);
    }
    pos
}

fn saturate(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

impl<'a> Space<'a> {
    fn new(stg: &'a Stg, track_signals: bool) -> Result<Space<'a>, ReachError> {
        let nplaces = stg.place_count();
        let nsignals = if track_signals { stg.signals().len() } else { 0 };
        let bits = nplaces + nsignals;
        if bits > 127 {
            return Err(ReachError::Build(format!(
                "net too large for the symbolic engine: {bits} state bits (max 127)"
            )));
        }
        if let Some(p) = stg.initial_marking().iter().position(|&t| t > 1) {
            return Err(ReachError::NotSafe { place: stg.places()[p].name.clone() });
        }

        let pos = bit_order(stg, nplaces, nsignals);
        let cur = |b: usize| 2 * pos[b];
        let nxt = |b: usize| 2 * pos[b] + 1;

        let mut bdd = Bdd::new();
        let cur_places: VarSet = (0..nplaces).map(cur).collect();
        let cur_all: VarSet = (0..bits).map(cur).collect();
        let mut down_places: Vec<(usize, usize)> = (0..nplaces).map(|b| (nxt(b), cur(b))).collect();
        down_places.sort_unstable();
        let down_all: Vec<(usize, usize)> = (0..bits).map(|q| (2 * q + 1, 2 * q)).collect();
        let up_all: Vec<(usize, usize)> = (0..bits).map(|q| (2 * q, 2 * q + 1)).collect();

        // Bits in descending variable-order position: conjunctions below
        // are built bottom-up so every `and` extends the diagram at the
        // top for linear growth.
        let mut bits_desc: Vec<usize> = (0..bits).collect();
        bits_desc.sort_unstable_by_key(|&b| std::cmp::Reverse(pos[b]));

        let n_transitions = stg.transition_count();
        let mut place_guard = Vec::with_capacity(n_transitions);
        let mut place_rel = Vec::with_capacity(n_transitions);
        let mut full_rel = Vec::with_capacity(n_transitions);
        for t in 0..n_transitions {
            let t = TransitionId(t);
            let pre = stg.pre(t);
            let post = stg.post(t);
            let event = stg.transitions()[t.0].event;

            let mut pre_vars: Vec<usize> = pre.iter().map(|p| cur(p.0)).collect();
            pre_vars.sort_unstable();
            let mut guard = BddRef::TRUE;
            for &v in pre_vars.iter().rev() {
                let x = bdd.var(v);
                guard = bdd.and(x, guard);
            }
            place_guard.push(guard);

            // The relation: one term per state bit, conjoined in
            // descending variable order.
            let mut prel = BddRef::TRUE;
            let mut frel = BddRef::TRUE;
            for &b in &bits_desc {
                if b < nplaces {
                    let in_pre = pre.contains(&PlaceId(b));
                    let in_post = post.contains(&PlaceId(b));
                    let term = match (in_pre, in_post) {
                        // Consumed and re-produced (read arc): stays 1.
                        (true, true) => bdd_fixed(&mut bdd, cur(b), nxt(b), true, true),
                        (true, false) => bdd_fixed(&mut bdd, cur(b), nxt(b), true, false),
                        // Produced: the 1-safe game requires it empty.
                        (false, true) => bdd_fixed(&mut bdd, cur(b), nxt(b), false, true),
                        (false, false) => bdd_frame(&mut bdd, cur(b), nxt(b)),
                    };
                    prel = bdd.and(term, prel);
                    frel = bdd.and(term, frel);
                } else {
                    let s = b - nplaces;
                    let term = if s == event.signal.0 {
                        bdd_fixed(&mut bdd, cur(b), nxt(b), event.pre_value(), event.post_value())
                    } else {
                        bdd_frame(&mut bdd, cur(b), nxt(b))
                    };
                    frel = bdd.and(term, frel);
                }
            }
            place_rel.push(prel);
            full_rel.push(frel);
        }

        Ok(Space {
            stg,
            bdd,
            nplaces,
            nsignals,
            pos,
            cur_places,
            cur_all,
            down_places,
            down_all,
            up_all,
            place_guard,
            place_rel,
            full_rel,
        })
    }

    /// Current-state variable of state bit `b`.
    fn cur_var(&self, b: usize) -> usize {
        2 * self.pos[b]
    }

    /// The literal `bit = value` over current-state variables.
    fn bit_lit(&mut self, b: usize, value: bool) -> BddRef {
        let v = self.bdd.var(self.cur_var(b));
        if value {
            v
        } else {
            self.bdd.not(v)
        }
    }

    /// A cube over current-state variables of the given (bit, value)
    /// assignments, conjoined highest-variable-first.
    fn cube(&mut self, assignment: impl Iterator<Item = (usize, bool)>) -> BddRef {
        let mut lits: Vec<(usize, bool)> = assignment.map(|(b, v)| (self.cur_var(b), v)).collect();
        lits.sort_unstable();
        let mut acc = BddRef::TRUE;
        for &(var, value) in lits.iter().rev() {
            let x = self.bdd.var(var);
            let lit = if value { x } else { self.bdd.not(x) };
            acc = self.bdd.and(lit, acc);
        }
        acc
    }

    /// The initial marking as a cube over current place variables.
    fn initial_places(&mut self) -> BddRef {
        let marking = self.stg.initial_marking().to_vec();
        self.cube(marking.iter().enumerate().map(|(p, &t)| (p, t == 1)))
    }

    /// The full initial state: marking plus the inferred signal values.
    fn initial_state(&mut self, signal_values: &[bool]) -> BddRef {
        let marking = self.stg.initial_marking().to_vec();
        let nplaces = self.nplaces;
        self.cube(
            marking
                .iter()
                .enumerate()
                .map(|(p, &t)| (p, t == 1))
                .chain(signal_values.iter().enumerate().map(|(s, &v)| (nplaces + s, v))),
        )
    }

    /// Least fixed point of the union of per-transition images, by
    /// *chaining*: each transition's image is folded into the reached set
    /// immediately, so one sweep over the transitions can propagate whole
    /// causal chains and the loop converges in a handful of sweeps
    /// instead of one iteration per BFS level. The callback sees the set
    /// after every sweep and may stop the iteration early (`false`).
    fn fixed_point_until(
        &mut self,
        init: BddRef,
        rels: &[BddRef],
        place_only: bool,
        mut keep_going: impl FnMut(&mut Self, BddRef) -> bool,
    ) -> BddRef {
        let quant = if place_only { self.cur_places.clone() } else { self.cur_all.clone() };
        let down = if place_only { self.down_places.clone() } else { self.down_all.clone() };
        let mut reached = init;
        loop {
            let before = reached;
            for &rel in rels {
                let step = self.bdd.and_exists(reached, rel, &quant);
                let step = self.bdd.rename(step, &down);
                reached = self.bdd.or(reached, step);
            }
            if reached == before || !keep_going(self, reached) {
                return reached;
            }
        }
    }

    /// [`Space::fixed_point_until`] run to convergence.
    fn fixed_point(&mut self, init: BddRef, rels: &[BddRef], place_only: bool) -> BddRef {
        self.fixed_point_until(init, rels, place_only, |_, _| true)
    }

    /// Exact state count of a set over the tracked current variables.
    fn count(&self, set: BddRef, place_only: bool) -> u64 {
        let vars = if place_only { &self.cur_places } else { &self.cur_all };
        self.bdd.sat_count_set(set, vars)
    }

    /// Rejects reachable states from which a firing would put a second
    /// token into a place — the 1-safe scope boundary.
    fn check_safe(&mut self, reached: BddRef) -> Result<(), ReachError> {
        for t in 0..self.stg.transition_count() {
            let t = TransitionId(t);
            let enabled = self.bdd.and(reached, self.place_guard[t.0]);
            if enabled == BddRef::FALSE {
                continue;
            }
            for &p in self.stg.post(t) {
                if self.stg.pre(t).contains(&p) {
                    continue;
                }
                let occupied = self.bdd.var(self.cur_var(p.0));
                if self.bdd.and(enabled, occupied) != BddRef::FALSE {
                    return Err(ReachError::NotSafe { place: self.stg.places()[p.0].name.clone() });
                }
            }
        }
        Ok(())
    }

    /// Rejects reachable states where a transition is place-enabled but
    /// its signal already sits at the post-transition value — the
    /// symbolic face of an inconsistent (non-alternating) specification.
    fn check_consistent(&mut self, reached: BddRef) -> Result<(), ReachError> {
        for t in 0..self.stg.transition_count() {
            let t = TransitionId(t);
            let event = self.stg.transitions()[t.0].event;
            let blocked = self.bit_lit(self.nplaces + event.signal.0, event.post_value());
            let enabled = self.bdd.and(reached, self.place_guard[t.0]);
            if self.bdd.and(enabled, blocked) != BddRef::FALSE {
                let signal = &self.stg.signals()[event.signal.0].name;
                return Err(ReachError::Inconsistent {
                    detail: format!(
                        "signal `{signal}` does not alternate: `{}` is reachable with \
                         `{signal}` already {}",
                        self.stg.transition_label(t),
                        if event.post_value() { "high" } else { "low" }
                    ),
                });
            }
        }
        Ok(())
    }

    /// The candidate initial value of signal `s` visible in `set`: the
    /// pre-value of any of its transitions place-enabled there.
    ///
    /// # Errors
    /// [`ReachError::Inconsistent`] when both polarities are enabled
    /// before the signal ever fired — the initial value would be
    /// contradictory.
    fn first_enabling(&mut self, s: usize, set: BddRef) -> Result<Option<bool>, ReachError> {
        let mut candidate: Option<bool> = None;
        for t in 0..self.stg.transition_count() {
            let event = self.stg.transitions()[t].event;
            if event.signal.0 != s {
                continue;
            }
            if self.bdd.and(set, self.place_guard[t]) == BddRef::FALSE {
                continue;
            }
            let value = event.pre_value();
            match candidate {
                None => candidate = Some(value),
                Some(prev) if prev != value => {
                    return Err(ReachError::Inconsistent {
                        detail: format!(
                            "signal `{}` can first become enabled both rising and \
                             falling: its initial value is contradictory",
                            self.stg.signals()[s].name
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(candidate)
    }

    /// Infers every signal's initial value: the pre-value of any of its
    /// transitions enabled among the markings reachable without firing
    /// the signal (`false` for signals that never fire), exactly the
    /// value the enumerative engines fix at the first BFS enabling.
    ///
    /// Signals enabled right at the initial marking are resolved
    /// structurally; the per-signal frozen fixed point stops at the first
    /// sweep that surfaces an enabling, so the inference never explores
    /// deeper than the signal's first activity.
    fn infer_initial_values(&mut self) -> Result<Vec<bool>, ReachError> {
        let signals = self.stg.signals().len();
        let init = self.initial_places();
        let mut values = Vec::with_capacity(signals);
        for s in 0..signals {
            if let Some(value) = self.first_enabling(s, init)? {
                values.push(value);
                continue;
            }
            let rels: Vec<BddRef> = (0..self.stg.transition_count())
                .filter(|&t| self.stg.transitions()[t].event.signal.0 != s)
                .map(|t| self.place_rel[t])
                .collect();
            let mut outcome: Result<Option<bool>, ReachError> = Ok(None);
            self.fixed_point_until(init, &rels, true, |space, reached| {
                outcome = space.first_enabling(s, reached);
                matches!(outcome, Ok(None))
            });
            values.push(outcome?.unwrap_or(false));
        }
        Ok(values)
    }

    /// Disjunction of the place guards of every transition labeled with
    /// `signal` at `rising` polarity.
    fn enabled_event(&mut self, signal: usize, rising: bool) -> BddRef {
        let mut acc = BddRef::FALSE;
        for t in 0..self.stg.transition_count() {
            let event = self.stg.transitions()[t].event;
            if event.signal.0 == signal && event.rising == rising {
                acc = self.bdd.or(acc, self.place_guard[t]);
            }
        }
        acc
    }

    /// The distinct signal codes carrying a CSC conflict: two reachable
    /// states with equal codes but different enabled non-input event
    /// sets, detected by pairing the reachable set with a primed copy.
    /// Returns the exact count plus up to [`MAX_CONFLICT_CODES`]
    /// enumerated codes.
    fn csc_conflict_codes(&mut self, reached: BddRef) -> (u64, Vec<u64>) {
        let up = self.up_all.clone();
        let primed = self.bdd.rename(reached, &up);
        let mut sig_desc: Vec<usize> = (0..self.nsignals).collect();
        sig_desc.sort_unstable_by_key(|&s| std::cmp::Reverse(self.pos[self.nplaces + s]));
        let mut same_code = BddRef::TRUE;
        for &s in &sig_desc {
            let v = self.cur_var(self.nplaces + s);
            let eq = bdd_frame(&mut self.bdd, v, v + 1);
            same_code = self.bdd.and(eq, same_code);
        }
        let both = self.bdd.and(reached, primed);
        let pair = self.bdd.and(both, same_code);

        let mut conflicts = BddRef::FALSE;
        for s in 0..self.nsignals {
            if !self.stg.signals()[s].kind.is_implementable() {
                continue;
            }
            for rising in [true, false] {
                let en = self.enabled_event(s, rising);
                if en == BddRef::FALSE {
                    continue;
                }
                let en_primed = self.bdd.rename(en, &up);
                let missing = self.bdd.not(en_primed);
                let here = self.bdd.and(pair, en);
                let asym = self.bdd.and(here, missing);
                conflicts = self.bdd.or(conflicts, asym);
            }
        }

        // Project onto the current signal variables; the exact number of
        // conflicting codes is a satisfy count, and the codes themselves
        // are enumerated only up to the cap (a conflict independent of k
        // unrelated signals — routine on product nets — stands for 2^k
        // codes, which must never be expanded wholesale).
        let bits = self.nplaces + self.nsignals;
        let drop: VarSet = (0..bits)
            .map(|q| 2 * q + 1)
            .chain((0..self.nplaces).map(|p| self.cur_var(p)))
            .collect();
        let code_fn = self.bdd.exists_set(conflicts, &drop);
        let mut sig_vars: Vec<(usize, usize)> =
            (0..self.nsignals).map(|s| (self.cur_var(self.nplaces + s), s)).collect();
        sig_vars.sort_unstable();
        let sig_set: VarSet = sig_vars.iter().map(|&(v, _)| v).collect();
        let count = self.bdd.sat_count_set(code_fn, &sig_set);
        let mut codes = Vec::new();
        enumerate_codes(&self.bdd, code_fn, &sig_vars, 0, 0, &mut codes);
        codes.sort_unstable();
        (count, codes)
    }

    /// Excitation/quiescence region sizes of every signal.
    fn regions(&mut self, reached: BddRef) -> Vec<SymbolicRegions> {
        (0..self.nsignals)
            .map(|s| {
                let en_rise = self.enabled_event(s, true);
                let en_fall = self.enabled_event(s, false);
                let rise_excited = {
                    let x = self.bdd.and(reached, en_rise);
                    self.count(x, false)
                };
                let fall_excited = {
                    let x = self.bdd.and(reached, en_fall);
                    self.count(x, false)
                };
                let no_rise = self.bdd.not(en_rise);
                let no_fall = self.bdd.not(en_fall);
                let stable = self.bdd.and(no_rise, no_fall);
                let stable = self.bdd.and(reached, stable);
                let high_lit = self.bit_lit(self.nplaces + s, true);
                let low_lit = self.bdd.not(high_lit);
                let quiescent_high = {
                    let x = self.bdd.and(stable, high_lit);
                    self.count(x, false)
                };
                let quiescent_low = {
                    let x = self.bdd.and(stable, low_lit);
                    self.count(x, false)
                };
                SymbolicRegions {
                    signal: SignalId(s),
                    rise_excited,
                    fall_excited,
                    quiescent_high,
                    quiescent_low,
                }
            })
            .collect()
    }
}

/// The relation term `x_cur = from ∧ x_next = to`.
fn bdd_fixed(bdd: &mut Bdd, cur: usize, nxt: usize, from: bool, to: bool) -> BddRef {
    let c = bdd.var(cur);
    let c = if from { c } else { bdd.not(c) };
    let n = bdd.var(nxt);
    let n = if to { n } else { bdd.not(n) };
    bdd.and(c, n)
}

/// The frame term `x_next ↔ x_cur`.
fn bdd_frame(bdd: &mut Bdd, cur: usize, nxt: usize) -> BddRef {
    let c = bdd.var(cur);
    let n = bdd.var(nxt);
    let x = bdd.xor(c, n);
    bdd.not(x)
}

/// Largest number of CSC conflict codes [`reach_symbolic`] enumerates
/// into [`SymbolicReach::csc_conflict_codes`];
/// [`SymbolicReach::csc_conflict_code_count`] stays exact beyond it.
pub const MAX_CONFLICT_CODES: usize = 4096;

/// Expands satisfying assignments of `r` over the listed
/// `(variable, code bit)` pairs (ascending variables; the emitted codes
/// set the paired bit), stopping at [`MAX_CONFLICT_CODES`] entries.
fn enumerate_codes(
    bdd: &Bdd,
    r: BddRef,
    vars: &[(usize, usize)],
    idx: usize,
    acc: u64,
    out: &mut Vec<u64>,
) {
    if r == BddRef::FALSE || out.len() >= MAX_CONFLICT_CODES {
        return;
    }
    if idx == vars.len() {
        debug_assert_eq!(r, BddRef::TRUE, "support must lie within the enumerated variables");
        out.push(acc);
        return;
    }
    let (var, bit) = vars[idx];
    match bdd.node(r) {
        Some((v, lo, hi)) if v == var => {
            enumerate_codes(bdd, lo, vars, idx + 1, acc, out);
            enumerate_codes(bdd, hi, vars, idx + 1, acc | 1 << bit, out);
        }
        _ => {
            // `r` does not branch on this variable: both values satisfy.
            enumerate_codes(bdd, r, vars, idx + 1, acc, out);
            enumerate_codes(bdd, r, vars, idx + 1, acc | 1 << bit, out);
        }
    }
}

/// Full symbolic reachability: exact state/edge counts, initial code,
/// per-signal regions, CSC conflict codes and — when the space fits the
/// configured thresholds — the materialized explicit state graph.
///
/// # Errors
/// [`ReachError::NotSafe`] for nets that are not 1-safe,
/// [`ReachError::Inconsistent`] for non-alternating specifications,
/// [`ReachError::Build`] when the symbolic and enumerative results
/// disagree (a bug trap, not an expected outcome) or the net exceeds the
/// engine's structural limits.
pub fn reach_symbolic(stg: &Stg, config: &ReachConfig) -> Result<SymbolicReach, ReachError> {
    if stg.signals().len() > 64 {
        return Err(ReachError::Build(format!(
            "too many signals: {} (max 64)",
            stg.signals().len()
        )));
    }
    let mut space = Space::new(stg, true)?;
    let initial_values = space.infer_initial_values()?;
    let init = space.initial_state(&initial_values);
    let rels = space.full_rel.clone();
    let reached = space.fixed_point(init, &rels, false);
    space.check_safe(reached)?;
    space.check_consistent(reached)?;

    let states = space.count(reached, false);
    let mut edges = 0u64;
    let mut dead_transitions = Vec::new();
    for t in 0..stg.transition_count() {
        let fired = space.bdd.and(reached, space.place_guard[t]);
        if fired == BddRef::FALSE {
            dead_transitions.push(TransitionId(t));
        } else {
            edges = edges.saturating_add(space.count(fired, false));
        }
    }
    let regions = space.regions(reached);
    let (csc_conflict_code_count, csc_conflict_codes) = space.csc_conflict_codes(reached);
    let mut initial_code = 0u64;
    for (s, &v) in initial_values.iter().enumerate() {
        if v {
            initial_code |= 1 << s;
        }
    }

    let threshold = config.max_states.min(config.materialize_limit) as u64;
    let (graph, stats) = if states <= threshold {
        let packed = ReachConfig { strategy: ReachStrategy::Packed, ..config.clone() };
        let (sg, stats) = elaborate_with_stats(stg, &packed)?;
        // The symbolic quantities were computed without enumerating a
        // single marking; any disagreement with the packed engine is a
        // bug in one of the two and must never pass silently.
        if sg.state_count() as u64 != states || stats.edges as u64 != edges {
            return Err(ReachError::Build(format!(
                "symbolic reachability disagrees with the packed engine: \
                 {states} states / {edges} edges symbolically, {} / {} packed",
                sg.state_count(),
                stats.edges
            )));
        }
        if sg.code(sg.initial()) != initial_code {
            return Err(ReachError::Build(format!(
                "symbolic initial-code inference disagrees with the packed engine: \
                 {initial_code:#b} vs {:#b}",
                sg.code(sg.initial())
            )));
        }
        let mut graph_codes: Vec<u64> = check_csc(&sg)
            .into_iter()
            .filter_map(|v| match v {
                PropertyViolation::CscConflict { code, .. } => Some(code),
                _ => None,
            })
            .collect();
        graph_codes.sort_unstable();
        graph_codes.dedup();
        if graph_codes.len() as u64 != csc_conflict_code_count
            || (csc_conflict_code_count <= MAX_CONFLICT_CODES as u64
                && graph_codes != csc_conflict_codes)
        {
            return Err(ReachError::Build(format!(
                "symbolic CSC conflict codes disagree with the state graph: \
                 {csc_conflict_code_count} code(s) {csc_conflict_codes:?} vs \
                 {graph_codes:?}"
            )));
        }
        (Some(sg), ReachStats { strategy: ReachStrategy::Symbolic, ..stats })
    } else {
        let stats = ReachStats {
            visited: saturate(states),
            interned: saturate(states),
            edges: saturate(edges),
            strategy: ReachStrategy::Symbolic,
            spill: None,
        };
        (None, stats)
    };

    Ok(SymbolicReach {
        states,
        edges,
        initial_code,
        csc_conflict_code_count,
        csc_conflict_codes,
        regions,
        dead_transitions,
        graph,
        stats,
        bdd_nodes: space.bdd.node_count(),
    })
}

/// The [`crate::reach`] back-end of [`ReachStrategy::Symbolic`]: a
/// place-only symbolic pass establishes 1-safety and the exact marking
/// count, then the packed core materializes the byte-identical
/// exploration under that precomputed bound — with the two counts
/// cross-checked.
pub(crate) fn explore_symbolic(stg: &Stg, config: &ReachConfig) -> Result<Exploration, ReachError> {
    let mut space = Space::new(stg, false)?;
    let init = space.initial_places();
    let rels = space.place_rel.clone();
    let reached = space.fixed_point(init, &rels, true);
    space.check_safe(reached)?;
    let states = space.count(reached, true);

    if states > config.max_states as u64 {
        // Let the packed core run into the limit so the StateLimit error
        // (limit, progress counter) is byte-identical to the oracle's.
        return explore_packed(stg, config);
    }
    if states > config.materialize_limit as u64 {
        return Err(ReachError::MaterializeLimit { states, limit: config.materialize_limit });
    }
    let exploration = explore_packed(stg, config)?;
    if exploration.count as u64 != states {
        return Err(ReachError::Build(format!(
            "symbolic reachability disagrees with the packed engine: \
             {states} vs {} markings",
            exploration.count
        )));
    }
    Ok(exploration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_g;
    use crate::patterns;
    use crate::reach::elaborate_with;

    const RING: &str = "\
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    fn symbolic() -> ReachConfig {
        ReachConfig { strategy: ReachStrategy::Symbolic, ..ReachConfig::default() }
    }

    #[test]
    fn ring_counts_and_materializes() {
        let stg = parse_g(RING).unwrap();
        let sym = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
        assert_eq!(sym.states, 4);
        assert_eq!(sym.edges, 4);
        assert_eq!(sym.initial_code, 0);
        assert!(sym.csc_conflict_codes.is_empty());
        assert!(sym.dead_transitions.is_empty());
        let sg = sym.graph.expect("under the threshold");
        assert_eq!(sg.state_count(), 4);
        assert_eq!(sym.stats.strategy, ReachStrategy::Symbolic);
        assert_eq!(sym.stats.interned, 4);
    }

    #[test]
    fn ring_regions_are_exact() {
        // Each of the four states excites exactly one event; each signal
        // is stable in two states (one per value).
        let stg = parse_g(RING).unwrap();
        let sym = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
        for r in &sym.regions {
            assert_eq!(r.rise_excited, 1, "{:?}", r.signal);
            assert_eq!(r.fall_excited, 1);
            assert_eq!(r.quiescent_high, 1);
            assert_eq!(r.quiescent_low, 1);
        }
    }

    #[test]
    fn elaborate_matches_packed_byte_for_byte() {
        let stg = patterns::pipeline(3);
        let sym = elaborate_with(&stg, &symbolic()).unwrap();
        let packed = elaborate_with(&stg, &ReachConfig::default()).unwrap();
        assert_eq!(sym.state_count(), packed.state_count());
        for s in sym.states() {
            assert_eq!(sym.code(s), packed.code(s));
            assert_eq!(sym.succ(s), packed.succ(s));
        }
    }

    #[test]
    fn csc_conflict_codes_found_symbolically() {
        // The classic conflict: a+ b+ b- a- over two outputs — the states
        // after a+ and after b- share code 01 with different enabled
        // outputs.
        let src = "\
.model conflict
.outputs a b
.graph
a+ b+
b+ b-
b- a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let sym = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
        assert_eq!(sym.states, 4);
        assert_eq!(sym.csc_conflict_code_count, 1);
        assert_eq!(sym.csc_conflict_codes, vec![0b01]);
    }

    #[test]
    fn conflict_codes_are_counted_exactly_but_enumerated_capped() {
        // A conflicted pair composed with independent rings: the conflict
        // is independent of every ring signal, so each free signal
        // doubles the number of conflicting codes — 4^7 = 16384 here,
        // far past the enumeration cap. The count must stay exact (and
        // the materialization cross-check count-based) without ever
        // expanding the code set wholesale.
        let conflict = "\
.model conflict
.outputs a b
.graph
a+ b+
b+ b-
b- a-
a- a+
.marking { <a-,a+> }
.end
";
        let mut parts = vec![parse_g(conflict).unwrap()];
        parts.extend((0..7).map(|_| patterns::sequencer(2, None)));
        let stg = patterns::parallel("mix", &parts);
        let sym = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
        assert_eq!(sym.states, 4 * 4u64.pow(7));
        assert_eq!(sym.csc_conflict_code_count, 4u64.pow(7));
        assert_eq!(sym.csc_conflict_codes.len(), MAX_CONFLICT_CODES);
        assert!(sym.graph.is_some(), "still materialized; cross-check is count-based");
    }

    #[test]
    fn unsafe_nets_are_rejected() {
        let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
        let stg = parse_g(src).unwrap();
        let err = reach_symbolic(&stg, &ReachConfig::default()).unwrap_err();
        assert!(matches!(err, ReachError::NotSafe { ref place } if place == "q"), "{err}");
        let err = elaborate_with(&stg, &symbolic()).unwrap_err();
        assert!(matches!(err, ReachError::NotSafe { .. }), "{err}");
        // A multi-token initial marking is rejected up front.
        let marked = "\
.model wide
.inputs a
.graph
p a+
a+ q
q a-
a- p
.marking { p=2 }
.end
";
        let stg = parse_g(marked).unwrap();
        let err = elaborate_with(&stg, &symbolic()).unwrap_err();
        assert!(matches!(err, ReachError::NotSafe { ref place } if place == "p"), "{err}");
    }

    #[test]
    fn inconsistent_nets_are_rejected_symbolically() {
        let src = "\
.model bad
.inputs a
.graph
a+ a+/2
a+/2 a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(src).unwrap();
        let err = reach_symbolic(&stg, &ReachConfig::default()).unwrap_err();
        assert!(matches!(err, ReachError::Inconsistent { .. }), "{err}");
    }

    #[test]
    fn materialize_limit_gates_the_graph_but_not_the_count() {
        let stg = patterns::pipeline(4); // 60 states
        let config = ReachConfig { materialize_limit: 10, ..ReachConfig::default() };
        let sym = reach_symbolic(&stg, &config).unwrap();
        assert!(sym.graph.is_none());
        assert!(sym.states > 10);
        assert_eq!(sym.stats.interned as u64, sym.states);
        // Elaboration refuses with the dedicated error.
        let config = ReachConfig { strategy: ReachStrategy::Symbolic, ..config };
        let err = elaborate_with(&stg, &config).unwrap_err();
        assert!(matches!(err, ReachError::MaterializeLimit { limit: 10, .. }), "{err}");
    }

    #[test]
    fn state_limit_matches_the_enumerative_error() {
        let stg = parse_g(RING).unwrap();
        let config =
            ReachConfig { max_states: 2, strategy: ReachStrategy::Symbolic, ..Default::default() };
        let sym_err = elaborate_with(&stg, &config).unwrap_err();
        let packed_err =
            elaborate_with(&stg, &ReachConfig { max_states: 2, ..ReachConfig::default() })
                .unwrap_err();
        assert_eq!(sym_err, packed_err);
    }

    #[test]
    fn initial_values_inferred_mid_cycle() {
        // Marking after a+: a starts high — the symbolic inference must
        // agree with the enumerative engines' first-enabling rule.
        let src = "\
.model mid
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <a+,b+> }
.end
";
        let stg = parse_g(src).unwrap();
        let sym = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
        assert_eq!(sym.initial_code, 0b01, "a high, b low");
    }

    #[test]
    fn dead_transitions_are_reported() {
        let src = "\
.model dead
.inputs a b
.graph
p a+
a+ a-
a- p
q b+
b+ q
.marking { p }
.end
";
        let stg = parse_g(src).unwrap();
        let sym = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
        assert_eq!(sym.dead_transitions.len(), 1);
        assert_eq!(stg.transition_label(sym.dead_transitions[0]), "b+");
    }

    #[test]
    fn counts_a_state_space_beyond_the_enumerative_limit() {
        // Twelve independent 4-state rings: 4^12 ≈ 16.8M markings — far
        // past the enumerative engines' default StateLimit, counted
        // exactly (product form) by the BDD without enumeration.
        let parts: Vec<Stg> = (0..12).map(|_| patterns::sequencer(2, None)).collect();
        let stg = patterns::parallel("grid", &parts);
        let config = ReachConfig { max_states: 10_000, ..ReachConfig::default() };
        let sym = reach_symbolic(&stg, &config).unwrap();
        assert_eq!(sym.states, 4u64.pow(12));
        assert!(sym.graph.is_none());
        assert!(sym.csc_conflict_codes.is_empty(), "independent rings keep CSC");
        // The enumerative engines cannot touch this net.
        let err = elaborate_with(&stg, &config).unwrap_err();
        assert!(matches!(err, ReachError::StateLimit { limit: 10_000, .. }), "{err}");
    }
}
