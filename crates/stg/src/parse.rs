//! Parser for the `astg` / SIS `.g` textual STG format.
//!
//! Supported directives: `.model`/`.name`, `.inputs`, `.outputs`,
//! `.internal`, `.graph`, `.marking { ... }`, `.capacity` (ignored),
//! `.end`. Comments start with `#`. Transition tokens look like `a+`,
//! `b-`, `a+/2`; every other token inside `.graph` is an explicit place.

use crate::petri::{Stg, TransitionId};
use simap_sg::{Event, Signal, SignalKind};
use std::fmt;

/// A `.g` parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStgError {
    /// Line where the problem was found (0 when global).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseStgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseStgError {}

fn err(line: usize, message: impl Into<String>) -> ParseStgError {
    ParseStgError { line, message: message.into() }
}

/// Parses `.g` source text into an [`Stg`].
///
/// # Errors
/// Returns [`ParseStgError`] on malformed input: unknown directives inside
/// the graph, transitions of undeclared signals, markings of unknown
/// places, or missing sections.
pub fn parse_g(source: &str) -> Result<Stg, ParseStgError> {
    let mut name = String::from("unnamed");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut internal: Vec<String> = Vec::new();
    let mut graph_lines: Vec<(usize, String)> = Vec::new();
    let mut marking_text: Option<(usize, String)> = None;
    let mut in_graph = false;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".model").or_else(|| line.strip_prefix(".name")) {
            name = rest.trim().to_string();
            in_graph = false;
        } else if let Some(rest) = line.strip_prefix(".inputs") {
            inputs.extend(rest.split_whitespace().map(String::from));
            in_graph = false;
        } else if let Some(rest) = line.strip_prefix(".outputs") {
            outputs.extend(rest.split_whitespace().map(String::from));
            in_graph = false;
        } else if let Some(rest) = line.strip_prefix(".internal") {
            internal.extend(rest.split_whitespace().map(String::from));
            in_graph = false;
        } else if line.starts_with(".dummy") {
            return Err(err(lineno, "dummy transitions are not supported"));
        } else if line.starts_with(".graph") {
            in_graph = true;
        } else if let Some(rest) = line.strip_prefix(".marking") {
            marking_text = Some((lineno, rest.trim().to_string()));
            in_graph = false;
        } else if line.starts_with(".capacity") {
            // Capacities are ignored: reachability enforces its own bound.
        } else if line.starts_with(".end") {
            break;
        } else if line.starts_with('.') {
            return Err(err(lineno, format!("unknown directive `{line}`")));
        } else if in_graph {
            graph_lines.push((lineno, line.to_string()));
        } else {
            return Err(err(lineno, format!("unexpected line outside .graph: `{line}`")));
        }
    }

    let mut signals: Vec<Signal> = Vec::new();
    for (names, kind) in [
        (&inputs, SignalKind::Input),
        (&outputs, SignalKind::Output),
        (&internal, SignalKind::Internal),
    ] {
        for n in names {
            if signals.iter().any(|s| &s.name == n) {
                return Err(err(0, format!("signal `{n}` declared twice")));
            }
            signals.push(Signal::new(n.clone(), kind));
        }
    }
    if signals.is_empty() {
        return Err(err(0, "no signals declared"));
    }

    let mut stg = Stg::new(name, signals);

    // Node parsing helpers.
    #[derive(Clone, Copy)]
    enum Node {
        Transition(TransitionId),
        Place(crate::petri::PlaceId),
    }
    let node_of = |stg: &mut Stg, token: &str, lineno: usize| -> Result<Node, ParseStgError> {
        if let Some((event, instance)) = parse_transition_token(stg, token) {
            return Ok(Node::Transition(stg.add_transition(event, instance)));
        }
        if token.contains('+') || token.contains('-') || token.contains('/') {
            return Err(err(lineno, format!("`{token}` is not a transition of a declared signal")));
        }
        let p = match stg.place_by_name(token) {
            Some(p) => p,
            None => stg.add_place(token, 0),
        };
        Ok(Node::Place(p))
    };

    for (lineno, line) in &graph_lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(err(*lineno, "graph line needs a source and at least one target"));
        }
        let src = node_of(&mut stg, tokens[0], *lineno)?;
        for tok in &tokens[1..] {
            let dst = node_of(&mut stg, tok, *lineno)?;
            match (src, dst) {
                (Node::Transition(a), Node::Transition(b)) => {
                    stg.connect(a, b);
                }
                (Node::Transition(a), Node::Place(p)) => stg.add_arc_tp(a, p),
                (Node::Place(p), Node::Transition(b)) => stg.add_arc_pt(p, b),
                (Node::Place(_), Node::Place(_)) => {
                    return Err(err(*lineno, "place-to-place arcs are not allowed"));
                }
            }
        }
    }

    if let Some((lineno, text)) = marking_text {
        parse_marking(&mut stg, &text, lineno)?;
    }

    Ok(stg)
}

/// Parses a transition token like `a+`, `b-`, `c+/3` against the declared
/// signals of `stg`. Returns `None` when the token is not a transition.
fn parse_transition_token(stg: &Stg, token: &str) -> Option<(Event, u32)> {
    let (base, instance) = match token.split_once('/') {
        Some((b, i)) => (b, i.parse::<u32>().ok()?),
        None => (token, 1),
    };
    let (name, rising) = if let Some(n) = base.strip_suffix('+') {
        (n, true)
    } else if let Some(n) = base.strip_suffix('-') {
        (n, false)
    } else {
        return None;
    };
    let sig = stg.signal_by_name(name)?;
    Some((if rising { Event::rise(sig) } else { Event::fall(sig) }, instance))
}

fn parse_marking(stg: &mut Stg, text: &str, lineno: usize) -> Result<(), ParseStgError> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err(lineno, "marking must be wrapped in { }"))?;
    // Tokenize: implicit places `<a+,b+>` may not contain spaces in our
    // dialect; entries are whitespace-separated, optionally `=k` suffixed.
    for entry in inner.split_whitespace() {
        let (place_txt, tokens) = match entry.split_once('=') {
            Some((p, k)) => {
                let k: u8 = k.parse().map_err(|_| err(lineno, format!("bad token count `{k}`")))?;
                (p, k)
            }
            None => (entry, 1),
        };
        if let Some(pair) = place_txt.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
            let (t1_txt, t2_txt) = pair
                .split_once(',')
                .ok_or_else(|| err(lineno, format!("bad implicit place `{place_txt}`")))?;
            let t1 = parse_transition_token(stg, t1_txt)
                .and_then(|(e, i)| stg.transition(e, i))
                .ok_or_else(|| err(lineno, format!("unknown transition `{t1_txt}` in marking")))?;
            let t2 = parse_transition_token(stg, t2_txt)
                .and_then(|(e, i)| stg.transition(e, i))
                .ok_or_else(|| err(lineno, format!("unknown transition `{t2_txt}` in marking")))?;
            let p = stg
                .implicit_place(t1, t2)
                .ok_or_else(|| err(lineno, format!("no implicit place `{place_txt}`")))?;
            stg.set_marking(p, tokens);
        } else {
            let p = stg
                .place_by_name(place_txt)
                .ok_or_else(|| err(lineno, format!("unknown place `{place_txt}`")))?;
            stg.set_marking(p, tokens);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const RING: &str = "\
# simplest handshake
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn parses_ring() {
        let stg = parse_g(RING).unwrap();
        assert_eq!(stg.name(), "ring");
        assert_eq!(stg.signals().len(), 2);
        assert_eq!(stg.transitions().len(), 4);
        assert_eq!(stg.places().len(), 4);
        assert_eq!(stg.initial_marking().iter().sum::<u8>(), 1);
    }

    #[test]
    fn parses_explicit_places_and_instances() {
        let src = "\
.model two
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ a-/1
a-/1 b-
b- p0
a+ p1
p1 b+
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        assert!(stg.place_by_name("p0").is_some());
        assert!(stg.place_by_name("p1").is_some());
        let p0 = stg.place_by_name("p0").unwrap();
        assert_eq!(stg.initial_marking()[p0.0], 1);
    }

    #[test]
    fn rejects_unknown_signal() {
        let src = ".model x\n.inputs a\n.graph\na+ zz+\n.marking { <zz+,a+> }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("zz+"), "{e}");
    }

    #[test]
    fn rejects_place_to_place() {
        let src = ".model x\n.inputs a\n.graph\np q\n.marking { p }\n.end\n";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn rejects_dummy() {
        let src = ".model x\n.inputs a\n.dummy e\n.graph\na+ a-\n.marking { }\n.end\n";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn marking_with_counts() {
        let src = "\
.model counts
.inputs a
.graph
p a+
a+ p2
p2 a-
a- p
.marking { p=2 }
.end
";
        let stg = parse_g(src).unwrap();
        let p = stg.place_by_name("p").unwrap();
        assert_eq!(stg.initial_marking()[p.0], 2);
    }

    #[test]
    fn default_model_name_and_split_declarations() {
        let src = "\
.inputs a
.inputs b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
        let stg = parse_g(src).unwrap();
        assert_eq!(stg.name(), "unnamed");
        assert_eq!(stg.signals().len(), 3);
        assert_eq!(stg.initial_marking().iter().filter(|&&t| t > 0).count(), 2);
    }

    #[test]
    fn rejects_duplicate_signal_declaration() {
        let src = ".inputs a\n.outputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("declared twice"), "{e}");
    }

    #[test]
    fn rejects_graph_line_with_one_token() {
        let src = ".inputs a\n.graph\na+\n.marking { }\n.end\n";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn rejects_marking_of_unknown_place() {
        let src = ".inputs a\n.graph\na+ a-\na- a+\n.marking { nowhere }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("unknown place"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "\
# leading comment

.model c   # trailing
.inputs a
.outputs b
.graph
a+ b+   # arc
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        assert!(parse_g(src).is_ok());
    }
}
