//! Parser for the `astg` / SIS `.g` textual STG format.
//!
//! Supported directives: `.model`/`.name`, `.inputs`, `.outputs`,
//! `.internal`, `.graph`, `.marking { ... }`, `.capacity` (ignored),
//! `.end`. Comments start with `#`. Transition tokens look like `a+`,
//! `b-`, `a+/2`; every other token inside `.graph` is an explicit place.
//!
//! # Hardening
//!
//! The parser is exposed to untrusted input (`simap check/map <file.g>`
//! and the `POST /stg` serve endpoint), so it follows the same idiom as
//! the hardened JSON parser in `simap-core`:
//!
//! * every error carries a 1-based line and byte column
//!   ([`ParseStgError`]);
//! * directives are matched as whole tokens — `.inputsx` is an unknown
//!   directive, not `.inputs` with a run-on argument;
//! * resource caps bound what a hostile spec can allocate before the
//!   parser gives up: [`MAX_LINE_BYTES`], [`MAX_SIGNALS`],
//!   [`MAX_TRANSITIONS`], [`MAX_PLACES`], [`MAX_ARCS`]. The caps are an
//!   out-of-memory guard sized well past every legitimate net family;
//!   they are not a CPU quota (the flow behind the parser costs far more
//!   than the parse).
//!
//! `parse_g ∘ write_g` is the identity on everything `parse_g` accepts
//! (modulo the one id-renumbering first trip; see `tests/stg_roundtrip.rs`
//! and `tests/g_parse_fuzz.rs`).

use crate::petri::{PlaceId, Stg, TransitionId};
use simap_sg::{Event, Signal, SignalKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Longest accepted raw line, in bytes.
pub const MAX_LINE_BYTES: usize = 65_536;
/// Most signals a spec may declare across `.inputs`/`.outputs`/`.internal`.
pub const MAX_SIGNALS: usize = 1_024;
/// Most distinct transitions a `.graph` section may introduce.
pub const MAX_TRANSITIONS: usize = 16_384;
/// Most places (explicit and implicit) a `.graph` section may introduce.
pub const MAX_PLACES: usize = 16_384;
/// Most arcs a `.graph` section may introduce.
pub const MAX_ARCS: usize = 65_536;

/// A `.g` parse error with its 1-based line number and byte column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStgError {
    /// Line where the problem was found (0 when global).
    pub line: usize,
    /// 1-based byte column of the offending token (0 when the error
    /// concerns the whole line or the whole file).
    pub column: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseStgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.column > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.column, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseStgError {}

fn err(line: usize, message: impl Into<String>) -> ParseStgError {
    ParseStgError { line, column: 0, message: message.into() }
}

fn err_at(line: usize, column: usize, message: impl Into<String>) -> ParseStgError {
    ParseStgError { line, column, message: message.into() }
}

/// Splits `s` into whitespace-separated tokens, each paired with the
/// 1-based byte column of its first byte, offset by `base` (the byte
/// position of `s` within its line).
fn tokens_with_cols(s: &str, base: usize) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut rest = s;
    let mut pos = base;
    loop {
        let trimmed = rest.trim_start();
        pos += rest.len() - trimmed.len();
        if trimmed.is_empty() {
            return out;
        }
        let end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
        out.push((pos + 1, &trimmed[..end]));
        pos += end;
        rest = &trimmed[end..];
    }
}

/// One signal declaration with the line/column that introduced it.
struct Decl {
    name: String,
    kind: SignalKind,
    line: usize,
    column: usize,
}

/// Parses `.g` source text into an [`Stg`].
///
/// # Errors
/// Returns [`ParseStgError`] on malformed input: unknown or run-on
/// directives, transitions of undeclared signals, markings of unknown or
/// already-marked places, duplicate `.marking` sections, missing
/// sections, or a spec exceeding the resource caps ([`MAX_LINE_BYTES`],
/// [`MAX_SIGNALS`], [`MAX_TRANSITIONS`], [`MAX_PLACES`], [`MAX_ARCS`]).
/// Every error names the 1-based line (and, where a single token is at
/// fault, byte column) involved.
pub fn parse_g(source: &str) -> Result<Stg, ParseStgError> {
    let mut name = String::from("unnamed");
    let mut decls: Vec<Decl> = Vec::new();
    let mut graph_lines: Vec<(usize, String)> = Vec::new();
    let mut marking_text: Option<(usize, usize, String)> = None;
    let mut graph_line: Option<usize> = None;
    let mut in_graph = false;
    let mut last_lineno = 0;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        last_lineno = lineno;
        if raw.len() > MAX_LINE_BYTES {
            return Err(err(lineno, format!("line exceeds {MAX_LINE_BYTES} bytes")));
        }
        let content = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let toks = tokens_with_cols(content, 0);
        let Some(&(dcol, first)) = toks.first() else { continue };
        if !first.starts_with('.') {
            if in_graph {
                graph_lines.push((lineno, content.to_string()));
                continue;
            }
            return Err(err_at(
                lineno,
                dcol,
                format!("unexpected line outside .graph: `{}`", content.trim()),
            ));
        }
        match first {
            ".model" | ".name" => {
                let after = dcol - 1 + first.len();
                name = content[after..].trim().to_string();
                in_graph = false;
            }
            ".inputs" | ".outputs" | ".internal" => {
                let kind = match first {
                    ".inputs" => SignalKind::Input,
                    ".outputs" => SignalKind::Output,
                    _ => SignalKind::Internal,
                };
                for &(col, tok) in &toks[1..] {
                    if decls.len() == MAX_SIGNALS {
                        return Err(err_at(
                            lineno,
                            col,
                            format!("spec declares more than {MAX_SIGNALS} signals"),
                        ));
                    }
                    decls.push(Decl { name: tok.to_string(), kind, line: lineno, column: col });
                }
                in_graph = false;
            }
            ".dummy" => return Err(err_at(lineno, dcol, "dummy transitions are not supported")),
            ".graph" => {
                if let Some(&(col, tok)) = toks.get(1) {
                    return Err(err_at(
                        lineno,
                        col,
                        format!("unexpected token after .graph: `{tok}`"),
                    ));
                }
                graph_line = Some(lineno);
                in_graph = true;
            }
            ".marking" => {
                if let Some((first_line, _, _)) = marking_text {
                    return Err(err_at(
                        lineno,
                        dcol,
                        format!("duplicate .marking directive (first on line {first_line})"),
                    ));
                }
                let after = dcol - 1 + first.len();
                marking_text = Some((lineno, after, content[after..].to_string()));
                in_graph = false;
            }
            ".capacity" => {
                // Capacities are ignored: reachability enforces its own bound.
            }
            ".end" => {
                if let Some(&(col, tok)) = toks.get(1) {
                    return Err(err_at(
                        lineno,
                        col,
                        format!("unexpected token after .end: `{tok}`"),
                    ));
                }
                break;
            }
            _ => return Err(err_at(lineno, dcol, format!("unknown directive `{first}`"))),
        }
    }

    let mut signals: Vec<Signal> = Vec::new();
    let mut seen: HashMap<&str, usize> = HashMap::new();
    // Declarations keep file order within each kind, but kinds are grouped
    // inputs → outputs → internal to match `Stg`'s signal layout.
    for kind in [SignalKind::Input, SignalKind::Output, SignalKind::Internal] {
        for d in decls.iter().filter(|d| d.kind == kind) {
            if let Some(&first_line) = seen.get(d.name.as_str()) {
                return Err(err_at(
                    d.line,
                    d.column,
                    format!(
                        "signal `{}` declared twice (first declared on line {first_line})",
                        d.name
                    ),
                ));
            }
            seen.insert(&d.name, d.line);
            signals.push(Signal::new(d.name.clone(), kind));
        }
    }
    if signals.is_empty() {
        return Err(err(graph_line.unwrap_or(last_lineno), "no signals declared"));
    }

    let mut stg = Stg::new(name, signals);

    // Node parsing helpers. The parser keeps its own hash indices so a
    // hostile spec near the caps cannot turn the `Stg`'s linear name
    // scans into quadratic work.
    #[derive(Clone, Copy)]
    enum Node {
        Transition(TransitionId),
        Place(PlaceId),
    }
    let mut place_ids: HashMap<String, PlaceId> = HashMap::new();
    let mut connected: HashSet<(usize, usize)> = HashSet::new();
    let mut arc_seen: HashSet<(bool, usize, usize)> = HashSet::new();
    let mut arcs = 0usize;

    fn node_of(
        stg: &mut Stg,
        place_ids: &mut HashMap<String, PlaceId>,
        token: &str,
        lineno: usize,
        col: usize,
    ) -> Result<Node, ParseStgError> {
        if let Some((event, instance)) = parse_transition_token(stg, token) {
            let t = stg.add_transition(event, instance);
            if stg.transitions().len() > MAX_TRANSITIONS {
                return Err(err_at(
                    lineno,
                    col,
                    format!("net exceeds {MAX_TRANSITIONS} transitions"),
                ));
            }
            return Ok(Node::Transition(t));
        }
        if token.contains('+') || token.contains('-') || token.contains('/') {
            return Err(err_at(
                lineno,
                col,
                format!("`{token}` is not a transition of a declared signal"),
            ));
        }
        if let Some(&p) = place_ids.get(token) {
            return Ok(Node::Place(p));
        }
        if stg.places().len() == MAX_PLACES {
            return Err(err_at(lineno, col, format!("net exceeds {MAX_PLACES} places")));
        }
        let p = stg.add_place(token, 0);
        place_ids.insert(token.to_string(), p);
        Ok(Node::Place(p))
    }

    for (lineno, line) in &graph_lines {
        let tokens = tokens_with_cols(line, 0);
        if tokens.len() < 2 {
            return Err(err(*lineno, "graph line needs a source and at least one target"));
        }
        let (src_col, src_tok) = tokens[0];
        let src = node_of(&mut stg, &mut place_ids, src_tok, *lineno, src_col)?;
        for &(col, tok) in &tokens[1..] {
            let dst = node_of(&mut stg, &mut place_ids, tok, *lineno, col)?;
            let added = match (src, dst) {
                (Node::Transition(a), Node::Transition(b)) => {
                    if connected.insert((a.0, b.0)) {
                        if stg.places().len() == MAX_PLACES {
                            return Err(err_at(
                                *lineno,
                                col,
                                format!("net exceeds {MAX_PLACES} places"),
                            ));
                        }
                        stg.connect(a, b);
                        2
                    } else {
                        0
                    }
                }
                (Node::Transition(a), Node::Place(p)) => {
                    if arc_seen.insert((true, a.0, p.0)) {
                        stg.add_arc_tp(a, p);
                        1
                    } else {
                        0
                    }
                }
                (Node::Place(p), Node::Transition(b)) => {
                    if arc_seen.insert((false, b.0, p.0)) {
                        stg.add_arc_pt(p, b);
                        1
                    } else {
                        0
                    }
                }
                (Node::Place(_), Node::Place(_)) => {
                    return Err(err_at(*lineno, col, "place-to-place arcs are not allowed"));
                }
            };
            arcs += added;
            if arcs > MAX_ARCS {
                return Err(err_at(*lineno, col, format!("net exceeds {MAX_ARCS} arcs")));
            }
        }
    }

    if let Some((lineno, base, text)) = marking_text {
        parse_marking(&mut stg, &text, lineno, base)?;
    }

    Ok(stg)
}

/// Parses a transition token like `a+`, `b-`, `c+/3` against the declared
/// signals of `stg`. Returns `None` when the token is not a transition.
fn parse_transition_token(stg: &Stg, token: &str) -> Option<(Event, u32)> {
    let (base, instance) = match token.split_once('/') {
        Some((b, i)) => (b, i.parse::<u32>().ok()?),
        None => (token, 1),
    };
    let (name, rising) = if let Some(n) = base.strip_suffix('+') {
        (n, true)
    } else if let Some(n) = base.strip_suffix('-') {
        (n, false)
    } else {
        return None;
    };
    let sig = stg.signal_by_name(name)?;
    Some((if rising { Event::rise(sig) } else { Event::fall(sig) }, instance))
}

fn parse_marking(
    stg: &mut Stg,
    text: &str,
    lineno: usize,
    base: usize,
) -> Result<(), ParseStgError> {
    let trimmed = text.trim_start();
    let inner_base = base + (text.len() - trimmed.len()) + 1;
    let inner = trimmed
        .trim_end()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err(lineno, "marking must be wrapped in { }"))?;
    // Tokenize: implicit places `<a+,b+>` may not contain spaces in our
    // dialect; entries are whitespace-separated, optionally `=k` suffixed.
    let mut marked: HashMap<usize, &str> = HashMap::new();
    for (col, entry) in tokens_with_cols(inner, inner_base) {
        let (place_txt, tokens) = match entry.split_once('=') {
            Some((p, k)) => {
                let k: u8 =
                    k.parse().map_err(|_| err_at(lineno, col, format!("bad token count `{k}`")))?;
                (p, k)
            }
            None => (entry, 1),
        };
        let p = if let Some(pair) = place_txt.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
            let (t1_txt, t2_txt) = pair
                .split_once(',')
                .ok_or_else(|| err_at(lineno, col, format!("bad implicit place `{place_txt}`")))?;
            let t1 = parse_transition_token(stg, t1_txt)
                .and_then(|(e, i)| stg.transition(e, i))
                .ok_or_else(|| {
                    err_at(lineno, col, format!("unknown transition `{t1_txt}` in marking"))
                })?;
            let t2 = parse_transition_token(stg, t2_txt)
                .and_then(|(e, i)| stg.transition(e, i))
                .ok_or_else(|| {
                    err_at(lineno, col, format!("unknown transition `{t2_txt}` in marking"))
                })?;
            stg.implicit_place(t1, t2)
                .ok_or_else(|| err_at(lineno, col, format!("no implicit place `{place_txt}`")))?
        } else {
            stg.place_by_name(place_txt)
                .ok_or_else(|| err_at(lineno, col, format!("unknown place `{place_txt}`")))?
        };
        if let Some(first) = marked.insert(p.0, place_txt) {
            return Err(err_at(
                lineno,
                col,
                format!("place `{place_txt}` marked twice on line {lineno} (first as `{first}`)"),
            ));
        }
        stg.set_marking(p, tokens);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const RING: &str = "\
# simplest handshake
.model ring
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";

    #[test]
    fn parses_ring() {
        let stg = parse_g(RING).unwrap();
        assert_eq!(stg.name(), "ring");
        assert_eq!(stg.signals().len(), 2);
        assert_eq!(stg.transitions().len(), 4);
        assert_eq!(stg.places().len(), 4);
        assert_eq!(stg.initial_marking().iter().sum::<u8>(), 1);
    }

    #[test]
    fn parses_explicit_places_and_instances() {
        let src = "\
.model two
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ a-/1
a-/1 b-
b- p0
a+ p1
p1 b+
.marking { p0 }
.end
";
        let stg = parse_g(src).unwrap();
        assert!(stg.place_by_name("p0").is_some());
        assert!(stg.place_by_name("p1").is_some());
        let p0 = stg.place_by_name("p0").unwrap();
        assert_eq!(stg.initial_marking()[p0.0], 1);
    }

    #[test]
    fn rejects_unknown_signal() {
        let src = ".model x\n.inputs a\n.graph\na+ zz+\n.marking { <zz+,a+> }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("zz+"), "{e}");
        assert_eq!((e.line, e.column), (4, 4));
    }

    #[test]
    fn rejects_place_to_place() {
        let src = ".model x\n.inputs a\n.graph\np q\n.marking { p }\n.end\n";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn rejects_dummy() {
        let src = ".model x\n.inputs a\n.dummy e\n.graph\na+ a-\n.marking { }\n.end\n";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn marking_with_counts() {
        let src = "\
.model counts
.inputs a
.graph
p a+
a+ p2
p2 a-
a- p
.marking { p=2 }
.end
";
        let stg = parse_g(src).unwrap();
        let p = stg.place_by_name("p").unwrap();
        assert_eq!(stg.initial_marking()[p.0], 2);
    }

    #[test]
    fn default_model_name_and_split_declarations() {
        let src = "\
.inputs a
.inputs b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";
        let stg = parse_g(src).unwrap();
        assert_eq!(stg.name(), "unnamed");
        assert_eq!(stg.signals().len(), 3);
        assert_eq!(stg.initial_marking().iter().filter(|&&t| t > 0).count(), 2);
    }

    #[test]
    fn rejects_duplicate_signal_declaration() {
        let src = ".inputs a\n.outputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("declared twice"), "{e}");
        // The error names the re-declaring line/column and the first line.
        assert_eq!((e.line, e.column), (2, 10));
        assert!(e.message.contains("first declared on line 1"), "{e}");
    }

    #[test]
    fn rejects_graph_line_with_one_token() {
        let src = ".inputs a\n.graph\na+\n.marking { }\n.end\n";
        assert!(parse_g(src).is_err());
    }

    #[test]
    fn rejects_marking_of_unknown_place() {
        let src = ".inputs a\n.graph\na+ a-\na- a+\n.marking { nowhere }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("unknown place"), "{e}");
        assert_eq!(e.line, 5);
        assert!(e.column > 0, "{e:?}");
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "\
# leading comment

.model c   # trailing
.inputs a
.outputs b
.graph
a+ b+   # arc
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
";
        assert!(parse_g(src).is_ok());
    }

    #[test]
    fn rejects_run_on_directives() {
        // A directive must be followed by whitespace or end-of-line;
        // `.inputsx` is an unknown directive, not `.inputs x`.
        for (src, bad) in [
            (".inputsx y\n.graph\ny+ y-\ny- y+\n.marking { }\n.end\n", ".inputsx"),
            (".inputs a\n.graph2\na+ a-\na- a+\n.marking { }\n.end\n", ".graph2"),
            (".modelfoo\n.inputs a\n.graph\na+ a-\na- a+\n.marking { }\n.end\n", ".modelfoo"),
            (".inputs a\n.graph\na+ a-\na- a+\n.marking { }\n.endzzz\n", ".endzzz"),
            (".inputs a\n.outputsb c\n.graph\na+ a-\na- a+\n.marking { }\n.end\n", ".outputsb"),
            (".inputs a\n.internalq\n.graph\na+ a-\na- a+\n.marking { }\n.end\n", ".internalq"),
            (".inputs a\n.markingz { }\n.graph\na+ a-\na- a+\n.end\n", ".markingz"),
        ] {
            let e = parse_g(src).unwrap_err();
            assert!(
                e.message.contains("unknown directive") && e.message.contains(bad),
                "`{bad}`: {e}"
            );
            assert!(e.line > 0 && e.column > 0, "`{bad}`: {e:?}");
        }
    }

    #[test]
    fn rejects_trailing_tokens_after_graph_and_end() {
        let e = parse_g(".inputs a\n.graph junk\na+ a-\n.marking { }\n.end\n").unwrap_err();
        assert!(e.message.contains("after .graph"), "{e}");
        assert_eq!((e.line, e.column), (2, 8));
        let e = parse_g(".inputs a\n.graph\na+ a-\na- a+\n.marking { }\n.end junk\n").unwrap_err();
        assert!(e.message.contains("after .end"), "{e}");
    }

    #[test]
    fn no_signals_error_names_a_real_line() {
        let e = parse_g(".model x\n.graph\np q\n.marking { }\n.end\n").unwrap_err();
        assert_eq!(e.message, "no signals declared");
        assert_eq!(e.line, 2, "error should point at the .graph line, got {e}");
        // Without a .graph section the error still names a real line.
        let e = parse_g(".model x\n.end\n").unwrap_err();
        assert_eq!(e.message, "no signals declared");
        assert_eq!(e.line, 2, "{e}");
    }

    #[test]
    fn rejects_duplicate_marking_directive() {
        let src = "\
.inputs a
.graph
a+ a-
a- a+
.marking { <a+,a-> }
.marking { <a-,a+> }
.end
";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("duplicate .marking"), "{e}");
        assert!(e.message.contains("first on line 5"), "{e}");
        assert_eq!(e.line, 6);
    }

    #[test]
    fn rejects_place_marked_twice() {
        let src = ".inputs a\n.graph\np a+\na+ p2\np2 a-\na- p\n.marking { p=2 p=1 }\n.end\n";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("marked twice"), "{e}");
        assert!(e.message.contains("line 7"), "{e}");
        // Implicit places too, even when spelled from both directions.
        let src = "\
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> <b-,a+> }
.end
";
        let e = parse_g(src).unwrap_err();
        assert!(e.message.contains("marked twice"), "{e}");
    }

    #[test]
    fn rejects_overlong_line() {
        let long = "a".repeat(MAX_LINE_BYTES + 1);
        let src = format!(".inputs a\n# {long}\n.graph\na+ a-\n.marking {{ }}\n.end\n");
        let e = parse_g(&src).unwrap_err();
        assert!(e.message.contains("exceeds"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_too_many_signals() {
        let names: Vec<String> = (0..=MAX_SIGNALS).map(|i| format!("s{i}")).collect();
        let src = format!(".inputs {}\n.graph\ns0+ s0-\n.marking {{ }}\n.end\n", names.join(" "));
        let e = parse_g(&src).unwrap_err();
        assert!(e.message.contains("signals"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_too_many_transitions() {
        let lines: Vec<String> =
            (1..=MAX_TRANSITIONS).map(|i| format!("a+/{i} a+/{}", i + 1)).collect();
        let src = format!(".inputs a\n.graph\n{}\n.marking {{ }}\n.end\n", lines.join("\n"));
        let e = parse_g(&src).unwrap_err();
        assert!(e.message.contains("transitions"), "{e}");
    }

    #[test]
    fn rejects_too_many_places() {
        let lines: Vec<String> = (0..=MAX_PLACES).map(|i| format!("p{i} a+")).collect();
        let src = format!(".inputs a\n.graph\n{}\n.marking {{ }}\n.end\n", lines.join("\n"));
        let e = parse_g(&src).unwrap_err();
        assert!(e.message.contains("places"), "{e}");
    }

    #[test]
    fn rejects_too_many_arcs() {
        // A 256×257 bipartite net stays under the place/transition caps
        // but crosses MAX_ARCS = 65_536 on its last arc.
        let mut lines = Vec::new();
        for p in 0..256 {
            let targets: Vec<String> = (1..=256).map(|i| format!("a+/{i}")).collect();
            lines.push(format!("p{p} {}", targets.join(" ")));
        }
        lines.push("p0 b+".to_string());
        let src = format!(".inputs a b\n.graph\n{}\n.marking {{ }}\n.end\n", lines.join("\n"));
        let e = parse_g(&src).unwrap_err();
        assert!(e.message.contains("arcs"), "{e}");
    }

    #[test]
    fn repeated_arcs_do_not_count_against_the_cap() {
        let src =
            ".inputs a\n.graph\np a+\np a+\na+ p\na+ p\na+ a-\na+ a-\na- p\n.marking { p }\n.end\n";
        let stg = parse_g(src).unwrap();
        assert_eq!(stg.transitions().len(), 2);
    }

    #[test]
    fn error_display_includes_line_and_column() {
        let e = err_at(3, 7, "boom");
        assert_eq!(e.to_string(), "line 3, col 7: boom");
        let e = err(3, "boom");
        assert_eq!(e.to_string(), "line 3: boom");
    }
}
