//! Service metrics: lock-free counters behind `GET /metrics` — request
//! and response tallies, job-queue accounting, the shared engine's
//! elaboration-cache statistics and per-stage latency histograms.
//!
//! Everything is an atomic, so observers on worker threads and the
//! render path on connection threads never contend on a lock. The
//! histogram buckets are powers of two in microseconds: bucket `i`
//! counts stage executions with `2^(i-1) <= elapsed_us < 2^i` (bucket 0
//! holds sub-microsecond runs), rendered as `[upper_bound_us, count]`
//! pairs for the nonzero buckets only.

use simap_core::{CacheStats, Stage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The service endpoints tallied individually (anything else lands in
/// `Other`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Synthesize,
    Stg,
    Batch,
    Benchmarks,
    Jobs,
    Healthz,
    Metrics,
    Other,
}

const ENDPOINTS: [(Endpoint, &str); 8] = [
    (Endpoint::Synthesize, "synthesize"),
    (Endpoint::Stg, "stg"),
    (Endpoint::Batch, "batch"),
    (Endpoint::Benchmarks, "benchmarks"),
    (Endpoint::Jobs, "jobs"),
    (Endpoint::Healthz, "healthz"),
    (Endpoint::Metrics, "metrics"),
    (Endpoint::Other, "other"),
];

const STATUSES: [u16; 12] = [200, 202, 400, 401, 403, 404, 405, 413, 422, 429, 500, 503];

/// The pipeline stages, in flow order, for histogram indexing.
const STAGES: [(Stage, &str); 7] = [
    (Stage::Configure, "configure"),
    (Stage::Load, "load"),
    (Stage::Elaborate, "elaborate"),
    (Stage::Covers, "covers"),
    (Stage::Decompose, "decompose"),
    (Stage::Map, "map"),
    (Stage::Verify, "verify"),
];

pub(crate) fn stage_index(stage: Stage) -> usize {
    STAGES.iter().position(|(s, _)| *s == stage).expect("every stage is listed")
}

const BUCKETS: usize = 32;

#[derive(Default)]
struct StageHist {
    count: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Point-in-time queue and worker gauges sampled by the render path
/// (the queue's depth and the job table's expiry counter live outside
/// [`Metrics`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueGauges {
    pub(crate) depth: usize,
    pub(crate) limit: usize,
    pub(crate) workers: usize,
    pub(crate) alive: usize,
    pub(crate) expired: u64,
}

/// All counters of one server instance.
#[derive(Default)]
pub(crate) struct Metrics {
    requests_total: AtomicU64,
    endpoints: [AtomicU64; ENDPOINTS.len()],
    statuses: [AtomicU64; STATUSES.len()],
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) jobs_failed: AtomicU64,
    pub(crate) jobs_rejected: AtomicU64,
    stages: [StageHist; STAGES.len()],
    // Spill-strategy gauges, accumulated from the reachability counters
    // of completed jobs (zero until a job runs the spill engine).
    // Clients cannot request checkpointing over the API, but the
    // operator's base configuration can — so the checkpoint gauges are
    // surfaced here too.
    spill_runs: AtomicU64,
    spill_spilled_bytes: AtomicU64,
    spill_files_created: AtomicU64,
    spill_resident_peak: AtomicU64,
    spill_checkpoints_written: AtomicU64,
    spill_checkpoint_bytes: AtomicU64,
    spill_resumed_runs: AtomicU64,
}

impl Metrics {
    pub(crate) fn count_request(&self, endpoint: Endpoint) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let i = ENDPOINTS.iter().position(|(e, _)| *e == endpoint).expect("listed");
        self.endpoints[i].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_status(&self, status: u16) {
        if let Some(i) = STATUSES.iter().position(|&s| s == status) {
            self.statuses[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one completed stage execution in its latency histogram.
    pub(crate) fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let hist = &self.stages[stage_index(stage)];
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        hist.count.fetch_add(1, Ordering::Relaxed);
        hist.total_us.fetch_add(us, Ordering::Relaxed);
        let bucket = if us == 0 { 0 } else { (64 - us.leading_zeros() as usize).min(BUCKETS - 1) };
        hist.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates the spill counters of one completed job's
    /// elaboration. `resident_peak` keeps the maximum across jobs (a
    /// high-water gauge); everything else is a running sum.
    pub(crate) fn record_spill(&self, c: &simap_stg::SpillCounters) {
        self.spill_runs.fetch_add(1, Ordering::Relaxed);
        self.spill_spilled_bytes.fetch_add(c.spilled_bytes, Ordering::Relaxed);
        self.spill_files_created.fetch_add(u64::from(c.files_created), Ordering::Relaxed);
        self.spill_resident_peak.fetch_max(c.resident_peak, Ordering::Relaxed);
        self.spill_checkpoints_written
            .fetch_add(u64::from(c.checkpoints_written), Ordering::Relaxed);
        self.spill_checkpoint_bytes.fetch_add(c.checkpoint_bytes, Ordering::Relaxed);
        if c.resume_level > 0 {
            self.spill_resumed_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the full metrics document (one line, trailing newline).
    /// `gateway` is the pre-rendered gateway section (one JSON object,
    /// from `Gateway::metrics_json`).
    pub(crate) fn render(&self, engine: CacheStats, queue: QueueGauges, gateway: &str) -> String {
        let QueueGauges { depth: queue_depth, limit: queue_limit, workers, alive, expired } = queue;
        use std::fmt::Write as _;
        let mut out = String::from("{\"requests\":{\"total\":");
        let _ = write!(out, "{}", self.requests_total.load(Ordering::Relaxed));
        out.push_str(",\"by_endpoint\":{");
        for (i, (_, name)) in ENDPOINTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", self.endpoints[i].load(Ordering::Relaxed));
        }
        out.push_str("},\"by_status\":{");
        for (i, status) in STATUSES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{status}\":{}", self.statuses[i].load(Ordering::Relaxed));
        }
        let _ = write!(
            out,
            "}}}},\"queue\":{{\"depth\":{queue_depth},\"limit\":{queue_limit},\
             \"workers\":{workers},\"workers_alive\":{alive},\"submitted\":{},\
             \"completed\":{},\"failed\":{},\"rejected\":{},\"expired\":{expired}}}",
            self.jobs_submitted.load(Ordering::Relaxed),
            self.jobs_completed.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_rejected.load(Ordering::Relaxed),
        );
        let _ = write!(
            out,
            ",\"engine\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"evicted\":{}}}",
            engine.hits, engine.misses, engine.entries, engine.evicted
        );
        let _ = write!(
            out,
            ",\"spill\":{{\"runs\":{},\"spilled_bytes\":{},\"files_created\":{},\
             \"resident_peak\":{},\"checkpoints_written\":{},\"checkpoint_bytes\":{},\
             \"resumed_runs\":{}}}",
            self.spill_runs.load(Ordering::Relaxed),
            self.spill_spilled_bytes.load(Ordering::Relaxed),
            self.spill_files_created.load(Ordering::Relaxed),
            self.spill_resident_peak.load(Ordering::Relaxed),
            self.spill_checkpoints_written.load(Ordering::Relaxed),
            self.spill_checkpoint_bytes.load(Ordering::Relaxed),
            self.spill_resumed_runs.load(Ordering::Relaxed),
        );
        let _ = write!(out, ",\"gateway\":{gateway}");
        out.push_str(",\"stage_latency_us\":{");
        let mut first = true;
        for (i, (_, name)) in STAGES.iter().enumerate() {
            let hist = &self.stages[i];
            let count = hist.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{count},\"total\":{},\"histogram\":[",
                hist.total_us.load(Ordering::Relaxed)
            );
            let mut first_bucket = true;
            for (b, counter) in hist.buckets.iter().enumerate() {
                let n = counter.load(Ordering::Relaxed);
                if n == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let bound = 1u64.checked_shl(b as u32).unwrap_or(u64::MAX);
                let _ = write!(out, "[{bound},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_json_and_counts_tally() {
        let m = Metrics::default();
        m.count_request(Endpoint::Synthesize);
        m.count_request(Endpoint::Synthesize);
        m.count_request(Endpoint::Healthz);
        m.count_status(200);
        m.count_status(429);
        m.record_stage(Stage::Elaborate, Duration::from_micros(100));
        m.record_stage(Stage::Elaborate, Duration::from_micros(3));
        m.record_stage(Stage::Verify, Duration::from_secs(1));
        m.count_status(401);
        let doc = m.render(
            CacheStats { hits: 5, misses: 2, entries: 2, evicted: 1 },
            QueueGauges { depth: 1, limit: 8, workers: 4, alive: 4, expired: 7 },
            "{\"auth_mode\":\"anonymous\"}",
        );
        let parsed = simap_core::json::parse(doc.trim_end()).expect("valid JSON");
        let requests = parsed.get("requests").unwrap();
        assert_eq!(requests.get("total").unwrap().as_usize(), Some(3));
        assert_eq!(
            requests.get("by_endpoint").unwrap().get("synthesize").unwrap().as_usize(),
            Some(2)
        );
        assert_eq!(requests.get("by_status").unwrap().get("429").unwrap().as_usize(), Some(1));
        assert_eq!(requests.get("by_status").unwrap().get("401").unwrap().as_usize(), Some(1));
        assert_eq!(parsed.get("queue").unwrap().get("limit").unwrap().as_usize(), Some(8));
        assert_eq!(parsed.get("queue").unwrap().get("workers_alive").unwrap().as_usize(), Some(4));
        assert_eq!(parsed.get("queue").unwrap().get("expired").unwrap().as_usize(), Some(7));
        assert_eq!(
            parsed.get("gateway").unwrap().get("auth_mode").unwrap().as_str(),
            Some("anonymous")
        );
        assert_eq!(parsed.get("engine").unwrap().get("hits").unwrap().as_usize(), Some(5));
        assert_eq!(parsed.get("engine").unwrap().get("evicted").unwrap().as_usize(), Some(1));
        let elaborate = parsed.get("stage_latency_us").unwrap().get("elaborate").unwrap();
        assert_eq!(elaborate.get("count").unwrap().as_usize(), Some(2));
        assert_eq!(elaborate.get("total").unwrap().as_usize(), Some(103));
        assert_eq!(elaborate.get("histogram").unwrap().as_array().unwrap().len(), 2);
        assert!(parsed.get("stage_latency_us").unwrap().get("decompose").is_none());
    }

    #[test]
    fn spill_gauges_accumulate_and_track_resumes() {
        let m = Metrics::default();
        let cold = simap_stg::SpillCounters {
            spilled_bytes: 1000,
            files_created: 3,
            resident_peak: 4096,
            table_bytes: 0,
            budget: 8192,
            shards: 1,
            checkpoints_written: 2,
            checkpoint_bytes: 500,
            resume_level: 0,
        };
        m.record_spill(&cold);
        m.record_spill(&simap_stg::SpillCounters { resident_peak: 2048, resume_level: 4, ..cold });
        let doc = m.render(
            CacheStats { hits: 0, misses: 0, entries: 0, evicted: 0 },
            QueueGauges { depth: 0, limit: 1, workers: 1, alive: 1, expired: 0 },
            "{}",
        );
        let parsed = simap_core::json::parse(doc.trim_end()).expect("valid JSON");
        let spill = parsed.get("spill").unwrap();
        assert_eq!(spill.get("runs").unwrap().as_usize(), Some(2));
        assert_eq!(spill.get("spilled_bytes").unwrap().as_usize(), Some(2000));
        assert_eq!(spill.get("files_created").unwrap().as_usize(), Some(6));
        // resident_peak is a high-water mark, not a sum.
        assert_eq!(spill.get("resident_peak").unwrap().as_usize(), Some(4096));
        assert_eq!(spill.get("checkpoints_written").unwrap().as_usize(), Some(4));
        assert_eq!(spill.get("checkpoint_bytes").unwrap().as_usize(), Some(1000));
        assert_eq!(spill.get("resumed_runs").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        let m = Metrics::default();
        // 100us lands in the bucket with upper bound 128.
        m.record_stage(Stage::Map, Duration::from_micros(100));
        let doc = m.render(
            CacheStats { hits: 0, misses: 0, entries: 0, evicted: 0 },
            QueueGauges { depth: 0, limit: 1, workers: 1, alive: 1, expired: 0 },
            "{}",
        );
        assert!(
            doc.contains("\"map\":{\"count\":1,\"total\":100,\"histogram\":[[128,1]]}"),
            "{doc}"
        );
    }
}
