//! Minimal HTTP/1.1 message handling over `std::net::TcpStream`: just
//! enough of RFC 9112 for the wire protocol in the [crate docs](crate) —
//! request-line + headers + `Content-Length` bodies in, fixed-length or
//! close-delimited (NDJSON streaming) responses out. Every response
//! carries `Connection: close`; a connection serves exactly one request.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Header section cap: a request line plus headers larger than this is
/// rejected ([`ReadError::TooLarge`], answered as `413` by the router).
pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Body cap (ad-hoc `.g` sources are the largest legitimate payload).
pub(crate) const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
pub(crate) struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// The presented API key, from `Authorization: Bearer <key>` or
    /// `X-Api-Key: <key>` (the former wins when both appear).
    pub api_key: Option<String>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
pub(crate) enum ReadError {
    /// The peer closed (or broke) the connection before a full request
    /// arrived; nothing to respond to.
    Disconnected,
    /// Malformed request — respond `400` with this message.
    Bad(String),
    /// The headers or declared body exceed the caps — respond `413`.
    TooLarge(String),
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one full request (headers + body) from the stream.
pub(crate) fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge(format!(
                "header section exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return Err(ReadError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ReadError::Bad("header section is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("malformed request line `{request_line}`")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut expects_continue = false;
    let mut bearer_key = None;
    let mut header_key = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header line `{line}`")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad Content-Length `{}`", value.trim())))?;
        } else if name.eq_ignore_ascii_case("expect")
            && value.trim().eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        } else if name.eq_ignore_ascii_case("authorization") {
            let value = value.trim();
            if value.len() >= 7 && value[..7].eq_ignore_ascii_case("bearer ") {
                bearer_key = Some(value[7..].trim().to_string());
            }
        } else if name.eq_ignore_ascii_case("x-api-key") {
            header_key = Some(value.trim().to_string());
        }
    }
    let api_key = bearer_key.or(header_key).filter(|k| !k.is_empty());
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!("body of {content_length} bytes exceeds the cap")));
    }
    // curl sends `Expect: 100-continue` for POST bodies over 1KB and
    // stalls ~1s waiting for this interim response before transmitting
    // the body; acknowledge it unless the body already arrived.
    if expects_continue && buf.len() < header_end + 4 + content_length {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        let _ = stream.flush();
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return Err(ReadError::Disconnected),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    Ok(Request { method, path, api_key, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Writes one complete JSON response and flushes it.
pub(crate) fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    respond_retry(stream, status, None, body)
}

/// [`respond`] with an optional `Retry-After: <seconds>` header — every
/// backpressure answer (`429`, breaker `503`, queue-full `429`) carries
/// one so well-behaved clients know when to come back.
pub(crate) fn respond_retry(
    stream: &mut TcpStream,
    status: u16,
    retry_after: Option<u64>,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    )?;
    if let Some(seconds) = retry_after {
        write!(stream, "Retry-After: {seconds}\r\n")?;
    }
    write!(stream, "Connection: close\r\n\r\n")?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a close-delimited NDJSON response: status line and headers
/// only; the caller streams newline-terminated JSON lines afterwards and
/// ends the body by closing the connection.
pub(crate) fn start_ndjson(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}
