//! Wire-protocol request bodies: strict JSON parsing of `POST
//! /synthesize` and `POST /batch` payloads into typed [`Work`] plus a
//! validated [`simap_core::Config`], and the dual-shape `POST /stg`
//! body (raw `.g` text or a JSON envelope with a `source` field).
//!
//! Parsing mirrors the CLI's strict flag handling: unknown fields,
//! wrong types and invalid knob values are all rejected with a message
//! (the router responds `400`), never silently ignored.

use simap_core::json::{self, Json};
use simap_core::{Config, ConfigBuilder};
use simap_stg::ReachStrategy;

/// How the client wants the response delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Wait for the job and answer with its result.
    Sync,
    /// Answer `202` with a job id immediately; poll `GET /jobs/{id}`.
    Async,
    /// Answer with an NDJSON stream of [`simap_core::FlowEvent`]s as the
    /// flow progresses, ending in the report (synthesize only).
    Stream,
}

/// Where a synthesize job gets its specification.
#[derive(Debug, Clone)]
pub(crate) enum WorkSource {
    /// A named circuit of the embedded Table 1 suite.
    Benchmark(String),
    /// Ad-hoc `.g` source text.
    GSource(String),
}

/// One unit of work for the worker pool.
#[derive(Debug, Clone)]
pub(crate) enum Work {
    /// One full mapping flow; the response body is byte-identical to
    /// `simap map --json` for the same specification and configuration.
    Synthesize { source: WorkSource, config: Config },
    /// A batch over benchmark names; the response body is byte-identical
    /// to `simap bench run --json`.
    Batch { names: Vec<String>, limits: Vec<usize>, config: Config },
}

/// The canonical identity of one unit of work, for the persistent
/// result cache: a human-auditable key string covering the work
/// description and the full configuration fingerprint
/// ([`Config::digest`]), plus its FNV-1a digest (the cache file
/// address). Two requests get the same fingerprint exactly when the
/// service contract promises them byte-identical responses.
///
/// Ad-hoc `g_source` text is folded in as `length:digest` rather than
/// verbatim, so the key stays one short line; the cache layer still
/// stores and verifies this full canonical string, so a digest collision
/// inside that folding is caught the same way any other collision is.
pub(crate) fn work_fingerprint(work: &Work) -> (u64, String) {
    let canon = match work {
        Work::Synthesize { source, config } => {
            let source = match source {
                WorkSource::Benchmark(name) => format!("bench={name}"),
                WorkSource::GSource(text) => {
                    format!("g_source={}:{:016x}", text.len(), simap_core::fnv1a64(text.as_bytes()))
                }
            };
            format!("synthesize;{source};cfg={:016x}", config.digest())
        }
        Work::Batch { names, limits, config } => format!(
            "batch;names={};limits={limits:?};cfg={:016x}",
            names.join(","),
            config.digest()
        ),
    };
    (simap_core::fnv1a64(canon.as_bytes()), canon)
}

fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        // An absent body means "all defaults".
        return Ok(Json::Object(Vec::new()));
    }
    json::parse(text).map_err(|e| e.to_string())
}

fn expect_str(key: &str, value: &Json) -> Result<String, String> {
    value.as_str().map(str::to_string).ok_or_else(|| format!("field `{key}` must be a string"))
}

fn expect_usize(key: &str, value: &Json) -> Result<usize, String> {
    value.as_usize().ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn expect_bool(key: &str, value: &Json) -> Result<bool, String> {
    value.as_bool().ok_or_else(|| format!("field `{key}` must be a boolean"))
}

/// Applies one shared configuration field to the builder; `Ok(None)`
/// means the key is not a configuration field.
fn apply_config_field(
    builder: ConfigBuilder,
    key: &str,
    value: &Json,
) -> Result<Option<ConfigBuilder>, String> {
    Ok(Some(match key {
        "literal_limit" => builder.literal_limit(expect_usize(key, value)?),
        "or_limit" => builder.or_limit(expect_usize(key, value)?),
        "csc_repair" => builder.repair_csc(expect_bool(key, value)?),
        "verify" => builder.verify(expect_bool(key, value)?),
        "strategy" => {
            let strategy: ReachStrategy = expect_str(key, value)?.parse()?;
            builder.reach_strategy(strategy)
        }
        "reach_jobs" => builder.reach_jobs(expect_usize(key, value)?),
        "synth_jobs" => builder.synth_jobs(expect_usize(key, value)?),
        "materialize_limit" => builder.reach_materialize_limit(expect_usize(key, value)?),
        "memory_budget" => builder.reach_memory_budget(expect_usize(key, value)?),
        "shards" => builder.reach_shards(expect_usize(key, value)?),
        // Scratch placement is an operator decision: clients must not
        // name paths on the server's filesystem. The spill strategy is
        // still available — it uses the server's temp directory.
        "spill_dir" => {
            return Err(
                "field `spill_dir` is not accepted over the API: spill scratch files go to \
                 the server's temp directory"
                    .to_string(),
            )
        }
        // Same reasoning, stronger consequences: a checkpoint directory
        // is written to (and a resume directory read from) the server's
        // filesystem at client-chosen paths, and checkpoints are only
        // meaningful across process lifetimes the client does not own.
        "checkpoint_dir" | "checkpoint_every" | "resume" => {
            return Err(format!(
                "field `{key}` is not accepted over the API: spill checkpointing names paths \
                 on the server's filesystem (run `simap check/map --checkpoint-dir` locally)"
            ))
        }
        _ => return Ok(None),
    }))
}

fn mode_of(asynchronous: bool, stream: bool) -> Result<Mode, String> {
    match (asynchronous, stream) {
        (true, true) => Err("`async` and `stream` are mutually exclusive".to_string()),
        (true, false) => Ok(Mode::Async),
        (false, true) => Ok(Mode::Stream),
        (false, false) => Ok(Mode::Sync),
    }
}

/// Parses a `POST /synthesize` body against the server's base
/// configuration.
pub(crate) fn parse_synthesize(body: &[u8], base: &Config) -> Result<(Work, Mode), String> {
    let doc = parse_body(body)?;
    let members = doc.as_object().ok_or_else(|| "body must be a JSON object".to_string())?;
    let mut builder = base.to_builder();
    let mut source = None;
    let mut asynchronous = false;
    let mut stream = false;
    for (key, value) in members {
        match key.as_str() {
            "bench" => source = Some(WorkSource::Benchmark(expect_str(key, value)?)),
            "g_source" => source = Some(WorkSource::GSource(expect_str(key, value)?)),
            "async" => asynchronous = expect_bool(key, value)?,
            "stream" => stream = expect_bool(key, value)?,
            other => match apply_config_field(builder.clone(), other, value)? {
                Some(updated) => builder = updated,
                None => return Err(format!("unknown field `{other}`")),
            },
        }
    }
    let source = source.ok_or_else(|| "one of `bench` or `g_source` is required".to_string())?;
    if members.iter().filter(|(k, _)| k == "bench" || k == "g_source").count() > 1 {
        return Err("`bench` and `g_source` are mutually exclusive".to_string());
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    Ok((Work::Synthesize { source, config }, mode_of(asynchronous, stream)?))
}

/// Parses a `POST /stg` body against the server's base configuration.
///
/// Two body shapes are accepted:
///
/// * **raw `.g` text** — the file a user would pass to `simap map
///   <file.g>`, posted verbatim. A `.g` spec always opens with a
///   directive, a comment or whitespace, never `{`, so the first
///   non-whitespace byte disambiguates. Runs with the server's base
///   configuration in [`Mode::Sync`].
/// * **a JSON envelope** `{"source": "...", ...}` — the `.g` text in a
///   `source` string plus any of the `/synthesize` configuration knobs
///   and the `async`/`stream` delivery flags.
///
/// Both shapes produce the same [`Work`] as `POST /synthesize` with a
/// `g_source` field: identical [`work_fingerprint`] (the result cache is
/// shared across all three spellings) and a response byte-identical to
/// `simap map <file.g> --json`.
pub(crate) fn parse_stg(body: &[u8], base: &Config) -> Result<(Work, Mode), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body: send raw `.g` text or {\"source\": \"...\"}".to_string());
    }
    if !text.trim_start().starts_with('{') {
        // Raw `.g` text, cached and synthesized exactly as the CLI would.
        let source = WorkSource::GSource(text.to_string());
        return Ok((Work::Synthesize { source, config: base.clone() }, Mode::Sync));
    }
    let doc = json::parse(text)
        .map_err(|e| format!("body opens with `{{` so it must be a JSON envelope, but: {e}"))?;
    let members = doc.as_object().ok_or_else(|| "body must be a JSON object".to_string())?;
    let mut builder = base.to_builder();
    let mut source = None;
    let mut asynchronous = false;
    let mut stream = false;
    for (key, value) in members {
        match key.as_str() {
            "source" => source = Some(expect_str(key, value)?),
            "async" => asynchronous = expect_bool(key, value)?,
            "stream" => stream = expect_bool(key, value)?,
            other => match apply_config_field(builder.clone(), other, value)? {
                Some(updated) => builder = updated,
                None => return Err(format!("unknown field `{other}`")),
            },
        }
    }
    let source = source.ok_or_else(|| "field `source` is required".to_string())?;
    let config = builder.build().map_err(|e| e.to_string())?;
    let work = Work::Synthesize { source: WorkSource::GSource(source), config };
    Ok((work, mode_of(asynchronous, stream)?))
}

/// Parses a `POST /batch` body against the server's base configuration.
pub(crate) fn parse_batch(body: &[u8], base: &Config) -> Result<(Work, Mode), String> {
    let doc = parse_body(body)?;
    let members = doc.as_object().ok_or_else(|| "body must be a JSON object".to_string())?;
    let mut builder = base.to_builder();
    let mut names = Vec::new();
    let mut limits = vec![2];
    let mut asynchronous = false;
    for (key, value) in members {
        match key.as_str() {
            "names" => {
                let items =
                    value.as_array().ok_or_else(|| "field `names` must be an array".to_string())?;
                names = items
                    .iter()
                    .map(|item| expect_str("names", item))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "limits" => {
                let items = value
                    .as_array()
                    .ok_or_else(|| "field `limits` must be an array".to_string())?;
                limits = items
                    .iter()
                    .map(|item| expect_usize("limits", item))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "async" => asynchronous = expect_bool(key, value)?,
            "stream" => return Err("`stream` is not supported for batches".to_string()),
            other => match apply_config_field(builder.clone(), other, value)? {
                Some(updated) => builder = updated,
                None => return Err(format!("unknown field `{other}`")),
            },
        }
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    Ok((Work::Batch { names, limits, config }, mode_of(asynchronous, false)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_defaults_and_knobs() {
        let base = Config::default();
        let (work, mode) = parse_synthesize(br#"{"bench":"half"}"#, &base).unwrap();
        assert_eq!(mode, Mode::Sync);
        match work {
            Work::Synthesize { source: WorkSource::Benchmark(name), config } => {
                assert_eq!(name, "half");
                assert_eq!(config.literal_limit(), 2);
                assert!(config.verify());
            }
            other => panic!("{other:?}"),
        }

        let (work, mode) = parse_synthesize(
            br#"{"g_source":".model x\n.end","literal_limit":3,"verify":false,
                 "strategy":"symbolic","async":true}"#,
            &base,
        )
        .unwrap();
        assert_eq!(mode, Mode::Async);
        match work {
            Work::Synthesize { source: WorkSource::GSource(_), config } => {
                assert_eq!(config.literal_limit(), 3);
                assert!(!config.verify());
                assert_eq!(config.reach_config().strategy, ReachStrategy::Symbolic);
            }
            other => panic!("{other:?}"),
        }

        let (work, _) = parse_synthesize(
            br#"{"bench":"half","strategy":"spill","memory_budget":1048576,"shards":4}"#,
            &base,
        )
        .unwrap();
        match work {
            Work::Synthesize { config, .. } => {
                assert_eq!(config.reach_config().strategy, ReachStrategy::Spill);
                assert_eq!(config.reach_config().memory_budget, 1048576);
                assert_eq!(config.reach_config().shards, 4);
                assert_eq!(config.reach_config().spill_dir, None, "server default placement");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn synthesize_rejections() {
        let base = Config::default();
        for (body, fragment) in [
            (&br#"{"unknown":1,"bench":"half"}"#[..], "unknown field `unknown`"),
            (br#"{}"#, "`bench` or `g_source` is required"),
            (br#"{"bench":"a","g_source":"b"}"#, "mutually exclusive"),
            (br#"{"bench":"a","async":true,"stream":true}"#, "mutually exclusive"),
            (br#"{"bench":"a","literal_limit":1}"#, "literal_limit"),
            (br#"{"bench":"a","strategy":"warp"}"#, "unknown reachability strategy"),
            (br#"{"bench":"a","spill_dir":"/etc"}"#, "not accepted over the API"),
            (br#"{"bench":"a","checkpoint_dir":"/etc"}"#, "not accepted over the API"),
            (br#"{"bench":"a","checkpoint_every":4}"#, "not accepted over the API"),
            (br#"{"bench":"a","resume":"/etc"}"#, "not accepted over the API"),
            (br#"{"bench":"a","memory_budget":0}"#, "memory_budget"),
            (br#"{"bench":"a","shards":0}"#, "shards"),
            (br#"{"bench":1}"#, "must be a string"),
            (br#"[1]"#, "must be a JSON object"),
            (b"not json", "invalid JSON"),
        ] {
            let err = parse_synthesize(body, &base).unwrap_err();
            assert!(err.contains(fragment), "{body:?} -> {err}");
        }
    }

    #[test]
    fn batch_fields() {
        let base = Config::default();
        let (work, mode) =
            parse_batch(br#"{"names":["half","hazard"],"limits":[2,3],"verify":false}"#, &base)
                .unwrap();
        assert_eq!(mode, Mode::Sync);
        match work {
            Work::Batch { names, limits, config } => {
                assert_eq!(names, ["half", "hazard"]);
                assert_eq!(limits, [2, 3]);
                assert!(!config.verify());
            }
            other => panic!("{other:?}"),
        }
        // Empty body: all benchmarks at the default limit.
        let (work, _) = parse_batch(b"", &base).unwrap();
        match work {
            Work::Batch { names, limits, .. } => {
                assert!(names.is_empty());
                assert_eq!(limits, [2]);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_batch(br#"{"stream":true}"#, &base).unwrap_err().contains("not supported"));
    }

    #[test]
    fn stg_accepts_raw_g_and_json_envelope() {
        let base = Config::default();
        let raw = ".model x\n.inputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.end\n";

        let (work, mode) = parse_stg(raw.as_bytes(), &base).unwrap();
        assert_eq!(mode, Mode::Sync);
        let Work::Synthesize { source: WorkSource::GSource(text), config } = &work else {
            panic!("{work:?}");
        };
        assert_eq!(text, raw, "raw bodies must be forwarded verbatim");
        assert_eq!(config.digest(), base.digest());

        let envelope = format!(
            r#"{{"source":{},"literal_limit":3,"async":true}}"#,
            json::Json::Str(raw.to_string()).emit()
        );
        let (ework, emode) = parse_stg(envelope.as_bytes(), &base).unwrap();
        assert_eq!(emode, Mode::Async);
        let Work::Synthesize { source: WorkSource::GSource(etext), config } = &ework else {
            panic!("{ework:?}");
        };
        assert_eq!(etext, raw);
        assert_eq!(config.literal_limit(), 3);

        // Same source text → same fingerprint for the raw shape, the
        // envelope shape (modulo knobs) and /synthesize's `g_source`.
        let default_envelope = format!(r#"{{"source":{}}}"#, json::Json::Str(raw.into()).emit());
        let via_envelope = parse_stg(default_envelope.as_bytes(), &base).unwrap().0;
        let synth_body = format!(r#"{{"g_source":{}}}"#, json::Json::Str(raw.into()).emit());
        let via_synthesize = parse_synthesize(synth_body.as_bytes(), &base).unwrap().0;
        assert_eq!(work_fingerprint(&work), work_fingerprint(&via_envelope));
        assert_eq!(work_fingerprint(&work), work_fingerprint(&via_synthesize));
    }

    #[test]
    fn stg_rejections() {
        let base = Config::default();
        for (body, fragment) in [
            (&b""[..], "empty body"),
            (b"   \n\t", "empty body"),
            (b"{not json", "JSON envelope"),
            (br#"{"literal_limit":3}"#, "field `source` is required"),
            (br#"{"source":".end","unknown":1}"#, "unknown field `unknown`"),
            (br#"{"source":1}"#, "must be a string"),
            (br#"{"source":".end","spill_dir":"/etc"}"#, "not accepted over the API"),
            (br#"{"source":".end","checkpoint_dir":"/etc"}"#, "not accepted over the API"),
            (br#"{"source":".end","resume":"/etc"}"#, "not accepted over the API"),
            (br#"{"source":".end","async":true,"stream":true}"#, "mutually exclusive"),
            (&[0xff, 0xfe][..], "not UTF-8"),
        ] {
            let err = parse_stg(body, &base).unwrap_err();
            assert!(err.contains(fragment), "{body:?} -> {err}");
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_requests() {
        let base = Config::default();
        let parse = |body: &[u8]| parse_synthesize(body, &base).unwrap().0;
        let (digest, canon) = work_fingerprint(&parse(br#"{"bench":"half"}"#));
        // Same request, parsed again: identical fingerprint (this is what
        // makes the cache hit across restarts).
        assert_eq!(work_fingerprint(&parse(br#"{"bench":"half"}"#)), (digest, canon.clone()));
        assert!(canon.starts_with("synthesize;bench=half;cfg="), "{canon}");
        // A different benchmark, a different knob, a different endpoint:
        // all distinct keys.
        let mut canons = vec![
            canon,
            work_fingerprint(&parse(br#"{"bench":"hazard"}"#)).1,
            work_fingerprint(&parse(br#"{"bench":"half","literal_limit":3}"#)).1,
            work_fingerprint(&parse(br#"{"g_source":".model x\n.end"}"#)).1,
            work_fingerprint(&parse_batch(br#"{"names":["half"]}"#, &base).unwrap().0).1,
            work_fingerprint(&parse_batch(br#"{"names":["half"],"limits":[3]}"#, &base).unwrap().0)
                .1,
        ];
        canons.sort();
        canons.dedup();
        assert_eq!(canons.len(), 6, "{canons:?}");
    }
}
