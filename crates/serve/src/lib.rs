//! # simap-serve
//!
//! A dependency-free HTTP/1.1 synthesis service over the shared
//! [`Engine`]: the long-running third entry tier next to the one-shot
//! CLI and the library API. One process hosts one engine, so the
//! benchmark registry is built once and the elaboration cache stays warm
//! across every client — exactly what [`Engine`] was made cheaply
//! cloneable and thread-safe for.
//!
//! Everything is `std`: `TcpListener` for transport, a hand-rolled
//! HTTP/1.1 reader/writer, [`simap_core::json`] for bodies, a bounded
//! job queue drained by a `std::thread` worker pool for execution, and
//! atomics for metrics. There is deliberately no async runtime: one
//! thread per in-flight connection parses and waits, while the *work* is
//! bounded by the worker pool and the queue — the queue, not the thread
//! count, is the backpressure surface.
//!
//! ## Wire protocol
//!
//! Every response carries `Connection: close` (one request per
//! connection) and a JSON body terminated by a newline. Errors are
//! `{"error":"..."}` objects with the status codes below.
//!
//! | Route | Behavior |
//! |---|---|
//! | `POST /synthesize` | Runs one mapping flow. Body fields: exactly one of `bench` (embedded benchmark name) or `g_source` (ad-hoc `.g` text); optional `literal_limit`, `or_limit`, `csc_repair`, `verify`, `strategy` (`packed`\|`explicit`\|`symbolic`), `reach_jobs`, `synth_jobs`, `materialize_limit`; optional `async` or `stream` booleans. The `200` body is **byte-identical** to `simap map --json` for the same spec/config. With `"async":true` answers `202 {"job":"jN","status":"queued"}` immediately. With `"stream":true` answers `application/x-ndjson`: one [`simap_core::FlowEvent`] JSON line per observer callback as stages complete, ending with `{"event":"report","report":{...}}` (or `{"event":"error",...}`). |
//! | `POST /stg` | Brings your own specification: the body is either **raw `.g` text** (post the file unchanged — a spec never opens with `{`, so the first non-whitespace byte disambiguates) or a JSON envelope `{"source":"<.g text>", ...}` accepting the same configuration knobs and `async`/`stream` flags as `/synthesize`. Both shapes run one mapping flow whose `200` body is **byte-identical** to `simap map <file.g> --json`, share one result-cache fingerprint (keyed by the source digest — a repeated spec answers from the cache without enqueueing), and are metered by the full gateway chain. The parser enforces the resource caps documented in `simap_stg::parse` (line length, signal/transition/place/arc counts); a spec that fails to parse is a `422` whose message carries the 1-based line and column. |
//! | `POST /batch` | Runs many benchmarks through one configuration. Body fields: `names` (array, empty/absent = the whole embedded suite), `limits` (array of literal limits, default `[2]`), the shared configuration fields, `async`. The `200` body is byte-identical to `simap bench run --json`. |
//! | `GET /jobs/{id}` | Polls an async job: `{"job":"jN","status":"queued"\|"running"\|"done"\|"failed"}` plus `result` (the full response document) when done or `error` when failed. `404` for unknown/evicted/expired ids. |
//! | `GET /benchmarks` | The embedded registry with signal/state counts — byte-identical to `simap bench list --json`. |
//! | `GET /healthz` | `{"status":"ok","queue_depth":…,"queue_limit":…,"breaker":"closed"\|"open"\|"half-open","workers":…,"workers_alive":…}` — liveness plus admission health, never queues, never requires a key. |
//! | `GET /metrics` | Request/response tallies, queue depth and job accounting (including age-`expired` records), the engine's elaboration [`simap_core::CacheStats`], per-stage latency histograms (power-of-two µs buckets), and a `gateway` section: per-layer allow/reject tallies, breaker state and trip counts, result-cache hit/miss/store/eviction counters, per-client admissions. |
//!
//! Status codes: `400` malformed request/body, `401` missing or unknown
//! API key, `403` a valid key whose client is blocked, `404` unknown
//! route or job, `405` wrong method, `413` oversized request, `422` the
//! flow itself failed (unknown benchmark, CSC violation, …), `429` rate
//! limit, in-flight quota, or a full job queue — every `429` and
//! breaker `503` carries `Retry-After` seconds, `500` a server-side bug
//! (a worker panic, isolated so the pool survives), `503` the circuit
//! breaker shedding load, or shutting down.
//!
//! ## The gateway
//!
//! Between the socket and the queue sits a middleware chain
//! (auth → rate limit → breaker; first rejection wins), plus a
//! persistent result cache consulted before anything is enqueued:
//!
//! 1. **Authentication/authorization** ([`ServeConfig::api_keys`]): a
//!    TSV keyfile of `key<TAB>client<TAB>tier` lines; tiers are
//!    `free`, `standard` (4× budgets), `unlimited`, and `blocked`
//!    (`403`). Without a keyfile every caller is one anonymous
//!    standard-tier client. Keys are presented as `Authorization:
//!    Bearer <key>` or `X-Api-Key: <key>`; the file reloads on SIGHUP
//!    ([`ServerHandle::reload_api_keys`]) and a bad file keeps the old
//!    keys.
//! 2. **Rate limiting and quotas** ([`ServeConfig::rate_limit`],
//!    [`ServeConfig::max_inflight`]): a token bucket per client plus an
//!    in-flight job budget, both scaled by tier, both only on the
//!    enqueueing routes — polling is always free.
//! 3. **Circuit breaker** ([`ServeConfig::breaker_threshold`],
//!    [`ServeConfig::breaker_cooldown`]): queue-full rejections and
//!    worker failures in a ten-second sliding window trip it open;
//!    while open every work request is `503` + `Retry-After`; after the
//!    cooldown one half-open probe decides between closing and another
//!    cooldown.
//! 4. **Result cache** ([`ServeConfig::cache_dir`]): finished reports,
//!    content-addressed by a stable digest of the request plus the full
//!    [`Config::digest`] fingerprint. A hit answers byte-identically
//!    from disk without enqueueing — including after a restart, or from
//!    a sibling instance sharing the directory. Corrupt entries are
//!    evicted and treated as misses; the directory is LRU-bounded by
//!    [`ServeConfig::cache_limit`].
//!
//! Every gateway decision is a [`simap_core::FlowEvent::Gateway`]:
//! streaming clients see their own admission trail at the head of the
//! NDJSON feed, and `/metrics` aggregates the tallies.
//!
//! ## Quickstart, in three tiers
//!
//! ```sh
//! # 1. Trusted dev loop: anonymous, unlimited, nothing persisted.
//! simap serve --addr 127.0.0.1:7317
//!
//! # 2. Shared instance: keyed clients, per-client budgets.
//! printf 'k-ci\tci\tstandard\nk-dev\tdev\tfree\n' > keys.tsv
//! simap serve --api-keys keys.tsv --rate-limit 5 --max-inflight 4
//! #   (edit keys.tsv, then `kill -HUP <pid>` to reload it live)
//!
//! # 3. Fleet: shared persistent cache + load shedding.
//! simap serve --api-keys keys.tsv --rate-limit 5 --max-inflight 4 \
//!             --cache-dir /var/cache/simap --cache-limit 4096 \
//!             --breaker-threshold 8 --breaker-cooldown 5
//! ```
//!
//! Bring your own `.g` spec — POST the file itself (or generate load
//! with the seeded corpus):
//!
//! ```sh
//! simap gen --seed 1 --count 1 --out-dir specs
//! curl --data-binary @specs/gen_0000000000000001_0.g \
//!      http://127.0.0.1:7317/stg          # == `simap map <file> --json`
//! ```
//!
//! ## Backpressure and shutdown
//!
//! Work is admitted through a bounded queue ([`ServeConfig::queue_limit`]);
//! when it is full the server answers `429` + `Retry-After` immediately
//! instead of accepting unbounded work (and the rejection feeds the
//! breaker). On shutdown ([`ServerHandle::shutdown`], or SIGTERM/ctrl-c
//! via [`shutdown_signal`] in the CLI) the listener stops accepting,
//! accepted jobs drain to completion, workers join, and [`Server::run`]
//! returns — in-flight synchronous clients get their responses.
//!
//! ```
//! use simap_serve::{ServeConfig, Server};
//! use std::io::{Read, Write};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port for the example
//!     jobs: 1,
//!     ..ServeConfig::default()
//! })?;
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run());
//!
//! let mut client = std::net::TcpStream::connect(addr)?;
//! write!(client, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")?;
//! let mut response = String::new();
//! client.read_to_string(&mut response)?;
//! assert!(response.starts_with("HTTP/1.1 200 OK"));
//! assert!(response.contains("\"status\":\"ok\""));
//! assert!(response.contains("\"breaker\":\"closed\""));
//!
//! handle.shutdown();
//! running.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

mod api;
mod gateway;
mod http;
mod metrics;
mod queue;

use api::{Mode, Work, WorkSource};
use gateway::middleware::RequestContext;
use gateway::{Gateway, GatewayConfig};
use http::{read_request, respond, respond_retry, start_ndjson, ReadError, Request};
use metrics::{Endpoint, Metrics};
use queue::{JobSpec, JobStatus, JobTable, Queue};
use simap_core::json;
use simap_core::{benchmarks_json, report_json, to_json, Config, Engine, EventObserver};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use simap_core::CacheStats;

/// Configuration of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral one).
    pub addr: String,
    /// Worker threads draining the job queue (`0` = one per available
    /// CPU).
    pub jobs: usize,
    /// Bounded job-queue capacity; a full queue answers `429`.
    pub queue_limit: usize,
    /// API keyfile (`key<TAB>client<TAB>tier` lines); `None` = anonymous
    /// mode, every caller is one standard-tier client. Reloadable at
    /// runtime via [`ServerHandle::reload_api_keys`] (SIGHUP in the CLI).
    pub api_keys: Option<PathBuf>,
    /// Base requests/sec per client on the work routes (scaled by the
    /// client's tier); `0` disables rate limiting.
    pub rate_limit: f64,
    /// Base queued+running jobs per client (scaled by tier); `0`
    /// disables the quota.
    pub max_inflight: usize,
    /// Directory for the persistent content-addressed result cache;
    /// `None` disables persistence. Instances sharing a directory share
    /// the cache.
    pub cache_dir: Option<PathBuf>,
    /// Maximum result-cache entries kept on disk (LRU beyond this); `0`
    /// = unbounded.
    pub cache_limit: usize,
    /// Queue-full rejections / worker failures within ten seconds that
    /// trip the circuit breaker open; `0` disables the breaker.
    pub breaker_threshold: usize,
    /// How long the tripped breaker sheds (`503` + `Retry-After`)
    /// before admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// Age after which finished job records are expired from the polling
    /// table (on top of the fixed count window).
    pub job_expiry: Duration,
    /// Base synthesis configuration; per-request fields override it
    /// through [`Config::to_builder`].
    pub config: Config,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7317".to_string(),
            jobs: 0,
            queue_limit: 64,
            api_keys: None,
            rate_limit: 0.0,
            max_inflight: 0,
            cache_dir: None,
            cache_limit: 256,
            breaker_threshold: 8,
            breaker_cooldown: Duration::from_secs(5),
            job_expiry: Duration::from_secs(900),
            config: Config::default(),
        }
    }
}

struct Shared {
    engine: Engine,
    metrics: Arc<Metrics>,
    queue: Queue,
    jobs: JobTable,
    gateway: Gateway,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    /// Worker threads currently inside their drain loop (healthz
    /// liveness: should equal `workers` while serving).
    workers_alive: AtomicUsize,
    addr: SocketAddr,
    workers: usize,
    queue_limit: usize,
    /// `GET /benchmarks` rendered once (under this lock, so concurrent
    /// cold requests serialize instead of each elaborating the whole
    /// registry on its own connection thread — the one route that could
    /// otherwise trigger heavy work without passing the bounded queue).
    benchmarks: std::sync::Mutex<Option<String>>,
}

impl Shared {
    /// The cached registry listing, computed on first use (errors are
    /// not cached, so a transient failure is retried).
    fn benchmarks_listing(&self) -> Result<String, simap_core::Error> {
        let mut cached = self.benchmarks.lock().expect("benchmarks lock");
        if let Some(listing) = cached.as_ref() {
            return Ok(listing.clone());
        }
        let listing = benchmarks_json(&self.engine)?;
        *cached = Some(listing.clone());
        Ok(listing)
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks until
/// shutdown; grab a [`ServerHandle`] first to stop it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cheap handle to a running (or bound) server, used to stop it.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Re-reads the API keyfile (the CLI calls this on SIGHUP) and
    /// returns the new key count. On any error the previous keys stay in
    /// force.
    ///
    /// # Errors
    /// No keyfile configured, or the file is unreadable or malformed.
    pub fn reload_api_keys(&self) -> Result<usize, String> {
        self.shared.gateway.reload_api_keys()
    }

    /// Requests a graceful shutdown: stop accepting, drain accepted
    /// jobs, join workers. Idempotent; returns immediately ([`Server::run`]
    /// returns once the drain completes).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.queue.wake_all();
        // Unblock the accept loop with a throwaway connection. A
        // wildcard bind (0.0.0.0 / [::]) is not connectable on every
        // platform, so aim at the loopback of the same family instead.
        let mut wake = self.shared.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }
}

impl Server {
    /// Binds the listener and builds the shared state (engine, queue,
    /// metrics). No thread is spawned yet.
    ///
    /// # Errors
    /// Address parse/bind failures; a missing or malformed API keyfile;
    /// an unusable cache directory (all reported as `InvalidInput`).
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let gateway = Gateway::open(&GatewayConfig {
            api_keys: config.api_keys.clone(),
            rate_limit: config.rate_limit,
            max_inflight: config.max_inflight,
            cache_dir: config.cache_dir.clone(),
            cache_limit: config.cache_limit,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown: config.breaker_cooldown,
            ..GatewayConfig::default()
        })
        .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidInput, message))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.jobs == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            config.jobs
        };
        let shared = Arc::new(Shared {
            engine: Engine::new(config.config),
            metrics: Arc::new(Metrics::default()),
            queue: Queue::new(config.queue_limit.max(1)),
            jobs: JobTable::new(config.job_expiry),
            gateway,
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            workers_alive: AtomicUsize::new(0),
            addr,
            workers,
            queue_limit: config.queue_limit.max(1),
            benchmarks: std::sync::Mutex::new(None),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: self.shared.clone() }
    }

    /// Serves until [`ServerHandle::shutdown`]: spawns the worker pool,
    /// accepts connections (one thread per in-flight request), then
    /// drains jobs and joins workers on shutdown.
    ///
    /// # Errors
    /// Worker-thread spawn failures; accept errors are retried.
    pub fn run(self) -> std::io::Result<()> {
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.workers);
        for i in 0..shared.workers {
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new().name(format!("simap-serve-worker-{i}")).spawn(
                    move || {
                        shared.workers_alive.fetch_add(1, Ordering::AcqRel);
                        // Decrement even if the loop unwinds, so healthz
                        // liveness reflects a lost worker.
                        struct Alive<'a>(&'a AtomicUsize);
                        impl Drop for Alive<'_> {
                            fn drop(&mut self) {
                                self.0.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        let _alive = Alive(&shared.workers_alive);
                        worker_loop(&shared);
                    },
                )?,
            );
        }

        for stream in self.listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else {
                // Persistent accept errors (fd exhaustion, EMFILE) would
                // otherwise busy-spin this loop at 100% CPU, starving the
                // very connection threads that must finish to free fds.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            let guard = ConnGuard::new(shared.clone());
            let shared = shared.clone();
            let spawned =
                std::thread::Builder::new().name("simap-serve-conn".to_string()).spawn(move || {
                    let _guard = guard;
                    handle_connection(&shared, stream);
                });
            if spawned.is_err() {
                // Thread exhaustion: shed the connection (the guard of
                // the failed spawn already decremented on drop).
                continue;
            }
        }

        // Drain: workers finish the accepted queue, then exit.
        shared.queue.wake_all();
        for worker in workers {
            let _ = worker.join();
        }
        // Give in-flight connection threads (writing final responses) a
        // bounded window to finish.
        let deadline = Instant::now() + Duration::from_secs(5);
        while shared.open_connections.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// RAII open-connection counter (so shutdown can wait for responses).
struct ConnGuard {
    shared: Arc<Shared>,
}

impl ConnGuard {
    fn new(shared: Arc<Shared>) -> Self {
        shared.open_connections.fetch_add(1, Ordering::AcqRel);
        ConnGuard { shared }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.open_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json::quote(message))
}

/// Sends a response and tallies its status.
fn send(shared: &Shared, stream: &mut TcpStream, status: u16, body: &str) {
    shared.metrics.count_status(status);
    let _ = respond(stream, status, body);
}

fn endpoint_of(request: &Request) -> Endpoint {
    match request.path.as_str() {
        "/synthesize" => Endpoint::Synthesize,
        "/stg" => Endpoint::Stg,
        "/batch" => Endpoint::Batch,
        "/benchmarks" => Endpoint::Benchmarks,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        path if path.starts_with("/jobs/") => Endpoint::Jobs,
        _ => Endpoint::Other,
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        // Malformed requests still count (as `other`) so that
        // `sum(by_status) <= requests.total` holds for every dashboard
        // computing error rates off /metrics. Disconnects get neither a
        // request nor a status tally — nothing was answered.
        Err(ReadError::Disconnected) => return,
        Err(ReadError::Bad(message)) => {
            shared.metrics.count_request(Endpoint::Other);
            send(shared, &mut stream, 400, &error_body(&message));
            return;
        }
        Err(ReadError::TooLarge(message)) => {
            shared.metrics.count_request(Endpoint::Other);
            send(shared, &mut stream, 413, &error_body(&message));
            return;
        }
    };
    shared.metrics.count_request(endpoint_of(&request));

    // Gateway admission guards everything except the liveness and
    // observability routes (`/healthz`, `/metrics` stay open so load
    // balancers and dashboards keep working when keys rotate or the
    // breaker sheds). Only the enqueueing routes are subject to rate
    // limiting and the breaker; polling an async job is always free.
    let queues_work = matches!(
        (request.method.as_str(), request.path.as_str()),
        ("POST", "/synthesize" | "/stg" | "/batch")
    );
    let protected = queues_work
        || matches!((request.method.as_str(), request.path.as_str()), ("GET", "/benchmarks"))
        || (request.method == "GET" && request.path.starts_with("/jobs/"));
    let ctx = if protected {
        match shared.gateway.admit(request.api_key.clone(), queues_work) {
            Ok(ctx) => Some(ctx),
            Err(rejected) => {
                let (rejection, _) = *rejected;
                shared.metrics.count_status(rejection.status);
                let _ = respond_retry(
                    &mut stream,
                    rejection.status,
                    rejection.retry_after,
                    &error_body(&rejection.message),
                );
                return;
            }
        }
    } else {
        None
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"queue_depth\":{},\"queue_limit\":{},\"breaker\":{},\
                 \"workers\":{},\"workers_alive\":{}}}\n",
                shared.queue.depth(),
                shared.queue_limit,
                json::quote(shared.gateway.breaker_state().as_str()),
                shared.workers,
                shared.workers_alive.load(Ordering::Acquire),
            );
            send(shared, &mut stream, 200, &body);
        }
        ("GET", "/metrics") => {
            let body = shared.metrics.render(
                shared.engine.cache_stats(),
                metrics::QueueGauges {
                    depth: shared.queue.depth(),
                    limit: shared.queue_limit,
                    workers: shared.workers,
                    alive: shared.workers_alive.load(Ordering::Acquire),
                    expired: shared.jobs.expired_total(),
                },
                &shared.gateway.metrics_json(),
            );
            send(shared, &mut stream, 200, &body);
        }
        ("GET", "/benchmarks") => match shared.benchmarks_listing() {
            Ok(doc) => send(shared, &mut stream, 200, &format!("{doc}\n")),
            Err(e) => send(shared, &mut stream, 500, &error_body(&e.to_string())),
        },
        ("GET", path) if path.starts_with("/jobs/") => job_status(shared, &mut stream, path),
        ("POST", "/synthesize") => {
            match api::parse_synthesize(&request.body, shared.engine.config()) {
                Ok((work, mode)) => {
                    submit(shared, &mut stream, work, mode, ctx.expect("work route is protected"));
                }
                Err(message) => {
                    // The admitted request never reached the queue, so a
                    // half-open probe learned nothing: free the slot.
                    if ctx.is_some_and(|c| c.breaker_probe) {
                        shared.gateway.probe_abandoned();
                    }
                    send(shared, &mut stream, 400, &error_body(&message));
                }
            }
        }
        ("POST", "/stg") => match api::parse_stg(&request.body, shared.engine.config()) {
            Ok((work, mode)) => {
                submit(shared, &mut stream, work, mode, ctx.expect("work route is protected"));
            }
            Err(message) => {
                if ctx.is_some_and(|c| c.breaker_probe) {
                    shared.gateway.probe_abandoned();
                }
                send(shared, &mut stream, 400, &error_body(&message));
            }
        },
        ("POST", "/batch") => match api::parse_batch(&request.body, shared.engine.config()) {
            Ok((work, mode)) => {
                submit(shared, &mut stream, work, mode, ctx.expect("work route is protected"));
            }
            Err(message) => {
                if ctx.is_some_and(|c| c.breaker_probe) {
                    shared.gateway.probe_abandoned();
                }
                send(shared, &mut stream, 400, &error_body(&message));
            }
        },
        (_, "/healthz" | "/metrics" | "/benchmarks" | "/synthesize" | "/stg" | "/batch") => {
            send(shared, &mut stream, 405, &error_body("method not allowed"));
        }
        (_, path) if path.starts_with("/jobs/") => {
            send(shared, &mut stream, 405, &error_body("method not allowed"));
        }
        _ => send(shared, &mut stream, 404, &error_body("not found")),
    }
}

fn job_status(shared: &Shared, stream: &mut TcpStream, path: &str) {
    let id = path
        .strip_prefix("/jobs/")
        .and_then(|rest| rest.strip_prefix('j'))
        .and_then(|digits| digits.parse::<u64>().ok());
    let Some((status, result, error)) = id.and_then(|id| shared.jobs.status(id)) else {
        send(shared, stream, 404, &error_body("unknown job"));
        return;
    };
    let id = id.expect("status implies a parsed id");
    let body = match (status, result, error) {
        (JobStatus::Done, Some(result), _) => {
            format!("{{\"job\":\"j{id}\",\"status\":\"done\",\"result\":{}}}\n", result.trim_end())
        }
        (JobStatus::Failed, _, Some(failure)) => format!(
            "{{\"job\":\"j{id}\",\"status\":\"failed\",\"error\":{}}}\n",
            json::quote(&failure.message)
        ),
        (status, _, _) => format!("{{\"job\":\"j{id}\",\"status\":\"{}\"}}\n", status.as_str()),
    };
    send(shared, stream, 200, &body);
}

fn submit(
    shared: &Shared,
    stream: &mut TcpStream,
    work: Work,
    mode: Mode,
    mut ctx: RequestContext,
) {
    // Consult the persistent result cache before anything is enqueued.
    // Streaming requests bypass the read path (their contract is a live
    // event feed, not just the final report), but their results are
    // still stored on completion like everyone else's.
    let fingerprint = shared.gateway.cache_enabled().then(|| api::work_fingerprint(&work));
    if mode != Mode::Stream {
        if let Some((digest, canon)) = &fingerprint {
            if let Some(body) = shared.gateway.cache_lookup(*digest, canon) {
                ctx.record("rescache", "hit");
                if ctx.breaker_probe {
                    // Nothing was enqueued, so the probe learned nothing
                    // about queue health: free the slot without a verdict.
                    shared.gateway.probe_abandoned();
                }
                match mode {
                    Mode::Sync => send(shared, stream, 200, &body),
                    _ => {
                        // Async hit: a pre-completed job, pollable like
                        // any other — the 202 contract is unchanged.
                        let id = shared.jobs.create(None);
                        shared.jobs.complete(id, Ok(body));
                        send(
                            shared,
                            stream,
                            202,
                            &format!("{{\"job\":\"j{id}\",\"status\":\"queued\"}}\n"),
                        );
                    }
                }
                return;
            }
            ctx.record("rescache", "miss");
        }
    }

    let (stream_tx, stream_rx) = match mode {
        Mode::Stream => {
            let (tx, rx) = std::sync::mpsc::channel();
            (Some(tx), Some(rx))
        }
        _ => (None, None),
    };
    let id = shared.jobs.create(stream_tx);
    // The shutdown flag is checked inside `submit`, under the queue lock,
    // so an accepted job is guaranteed a worker (no submit-after-drain
    // race; see `Queue::submit`).
    let spec = JobSpec { id, work, client: ctx.client.clone(), fingerprint };
    match shared.queue.submit(spec, &shared.shutdown) {
        Ok(()) => {
            // The queue accepted work while half-open: the service is
            // admitting again — close the breaker.
            if ctx.breaker_probe {
                shared.gateway.probe_result(true);
            }
            shared.gateway.job_started(&ctx.client);
        }
        Err(queue::SubmitError::ShuttingDown) => {
            shared.jobs.discard(id);
            if ctx.breaker_probe {
                shared.gateway.probe_abandoned();
            }
            send(shared, stream, 503, &error_body("shutting down"));
            return;
        }
        Err(queue::SubmitError::Full) => {
            shared.jobs.discard(id);
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            // Queue saturation is the breaker's primary distress signal;
            // a half-open probe hitting a still-full queue re-opens it.
            if ctx.breaker_probe {
                shared.gateway.probe_result(false);
            } else {
                shared.gateway.record_failure();
            }
            let body = format!(
                "{{\"error\":\"queue full\",\"queue_depth\":{},\"queue_limit\":{}}}\n",
                shared.queue.depth(),
                shared.queue_limit
            );
            shared.metrics.count_status(429);
            let _ = respond_retry(stream, 429, Some(1), &body);
            return;
        }
    }
    shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);

    match mode {
        Mode::Async => {
            send(shared, stream, 202, &format!("{{\"job\":\"j{id}\",\"status\":\"queued\"}}\n"));
        }
        Mode::Sync => {
            let (status, result, error) = shared.jobs.wait_done(id);
            match (status, result) {
                (JobStatus::Done, Some(body)) => send(shared, stream, 200, &body),
                _ => {
                    // 422 = the flow rejected this request; 500 = a
                    // server-side bug (worker panic) — keep the split so
                    // error-rate dashboards classify correctly.
                    let failure = error.unwrap_or_else(|| queue::JobFailure {
                        message: "job failed".to_string(),
                        internal: true,
                    });
                    let status = if failure.internal { 500 } else { 422 };
                    send(shared, stream, status, &error_body(&failure.message));
                }
            }
        }
        Mode::Stream => {
            shared.metrics.count_status(200);
            if start_ndjson(stream).is_err() {
                return;
            }
            // The gateway's decision trail leads the stream, so clients
            // see how their request was admitted before the flow starts.
            for event in &ctx.events {
                let _ = writeln!(stream, "{}", event.to_json());
            }
            let _ = writeln!(stream, "{{\"event\":\"job\",\"job\":\"j{id}\"}}");
            let _ = stream.flush();
            let rx = stream_rx.expect("stream mode created a channel");
            // Lines arrive until the worker completes the job and the
            // table drops the sender.
            for line in rx {
                if writeln!(stream, "{line}").and_then(|()| stream.flush()).is_err() {
                    // Client went away; the worker keeps running (its
                    // sends just fail) and the job record stays pollable.
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(JobSpec { id, work, client, fingerprint }) = shared.queue.pop(&shared.shutdown) {
        let stream = shared.jobs.mark_running(id);
        // Panic isolation: `g_source` bodies are untrusted network input,
        // and a panicking job must neither kill the worker (permanently
        // shrinking the pool) nor leave its synchronous client blocked in
        // `wait_done` forever.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_work(shared, work, stream.as_ref())
        }))
        .unwrap_or_else(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(queue::JobFailure { message: format!("internal error: {message}"), internal: true })
        });
        match &outcome {
            Ok(body) => {
                // Persist the finished report so a restarted instance (or
                // a sibling on the same --cache-dir) can answer this
                // request byte-identically without re-synthesizing.
                if let Some((digest, canon)) = &fingerprint {
                    shared.gateway.cache_store(*digest, canon, body);
                }
                if let Some(tx) = &stream {
                    let _ =
                        tx.send(format!("{{\"event\":\"report\",\"report\":{}}}", body.trim_end()));
                }
                shared.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(failure) => {
                if let Some(tx) = &stream {
                    let _ = tx.send(format!(
                        "{{\"event\":\"error\",\"error\":{}}}",
                        json::quote(&failure.message)
                    ));
                }
                shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                // Worker failures are the breaker's second distress
                // signal, alongside queue-full rejections.
                shared.gateway.record_failure();
            }
        }
        shared.gateway.job_finished(&client);
        shared.jobs.complete(id, outcome);
    }
}

/// Executes one unit of work on the shared engine. The success body is
/// byte-identical to the corresponding CLI `--json` output (including the
/// trailing newline `println!` appends).
fn run_work(
    shared: &Shared,
    work: Work,
    stream: Option<&Sender<String>>,
) -> Result<String, queue::JobFailure> {
    // Flow failures are the *request's* fault (422), never internal.
    let flow_error =
        |e: simap_core::Error| queue::JobFailure { message: e.to_string(), internal: false };
    match work {
        Work::Synthesize { source, config } => {
            let engine = shared.engine.with_config(config.clone());
            let synthesis = match source {
                WorkSource::Benchmark(name) => engine.benchmark(name),
                WorkSource::GSource(text) => engine.g_source(text),
            };
            let metrics = shared.metrics.clone();
            let forward = stream.cloned();
            let mut starts: [Option<Instant>; 7] = [None; 7];
            let synthesis = synthesis.observer(EventObserver::new(move |event| {
                match &event {
                    simap_core::FlowEvent::StageStart { stage, .. } => {
                        starts[metrics::stage_index(*stage)] = Some(Instant::now());
                    }
                    simap_core::FlowEvent::StageEnd { stage } => {
                        if let Some(start) = starts[metrics::stage_index(*stage)].take() {
                            metrics.record_stage(*stage, start.elapsed());
                        }
                    }
                    _ => {}
                }
                if let Some(tx) = &forward {
                    let _ = tx.send(event.to_json());
                }
            }));
            // Mirror the CLI's `map` driver exactly: refutation is data
            // (`verified: false`), not an error.
            let mapped = (|| {
                Ok::<_, simap_core::Error>(synthesis.elaborate()?.covers()?.decompose()?.map())
            })()
            .map_err(flow_error)?;
            let verified =
                if config.verify() { mapped.verify_compat() } else { mapped.skip_verify() };
            let report = verified.report();
            // Surface spill-engine counters (disk traffic, checkpoint
            // activity) on /metrics; warm cache hits carry the counters
            // of the run that populated the entry.
            if let Some(spill) = report.reach.as_ref().and_then(|r| r.spill) {
                shared.metrics.record_spill(&spill);
            }
            Ok(format!("{}\n", report_json(report)))
        }
        Work::Batch { names, limits, config } => {
            let engine = shared.engine.with_config(config);
            let batch = if names.is_empty() { engine.batch_all() } else { engine.batch(names) };
            let rows = batch.limits(limits.clone()).run().map_err(flow_error)?;
            Ok(format!("{}\n", to_json(&limits, &rows)))
        }
    }
}

/// Process-level SIGTERM / SIGINT latch for CLI front-ends.
///
/// The runtime has no dependency to install signal handlers with, so this
/// registers a minimal POSIX `signal(2)` handler (through the C runtime
/// `std` already links) that flips an atomic flag — the only
/// async-signal-safe thing a handler may do here. Front-ends poll
/// [`shutdown_signal::requested`] and call [`ServerHandle::shutdown`]
/// when it flips; see `simap serve`.
pub mod shutdown_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);
    static RELOAD: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" fn on_signal(signum: i32) {
        // Only async-signal-safe operations are allowed here; an atomic
        // store qualifies.
        if signum == 1 {
            RELOAD.store(true, Ordering::SeqCst);
        } else {
            REQUESTED.store(true, Ordering::SeqCst);
        }
    }

    /// Installs handlers for SIGINT (ctrl-c) and SIGTERM, which latch
    /// [`requested`], and SIGHUP, which latches [`reload_requested`]
    /// (the conventional "re-read your config" signal — the CLI reloads
    /// the API keyfile on it). A no-op on non-Unix targets.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGHUP: i32 = 1;
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the POSIX C function (the C runtime is
        // already linked by std on unix); the handler only performs an
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGHUP, on_signal);
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Installs handlers for SIGHUP/SIGINT/SIGTERM (no-op off Unix).
    #[cfg(not(unix))]
    pub fn install() {}

    /// Whether a termination signal has been received since [`install`].
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    /// Takes (and clears) a pending SIGHUP reload request, so each
    /// signal triggers exactly one reload.
    pub fn reload_requested() -> bool {
        RELOAD.swap(false, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status: u16 =
            response.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status line");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn test_server(
        jobs: usize,
        queue_limit: usize,
    ) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs,
            queue_limit,
            ..ServeConfig::default()
        })
        .expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (handle, join) = test_server(1, 4);
        let addr = handle.addr();
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.starts_with("{\"status\":\"ok\",\"queue_depth\":"), "{body}");
        assert!(body.contains("\"breaker\":\"closed\""), "{body}");
        assert!(body.contains("\"workers\":1"), "{body}");
        let (status, _) = request(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "DELETE", "/healthz", "");
        assert_eq!(status, 405);
        let (status, body) = request(addr, "POST", "/synthesize", "{\"bogus\":1}");
        assert_eq!(status, 400, "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn synthesize_and_job_polling() {
        let (handle, join) = test_server(2, 8);
        let addr = handle.addr();
        let (status, body) = request(addr, "POST", "/synthesize", "{\"bench\":\"half\"}");
        assert_eq!(status, 200, "{body}");
        assert!(body.starts_with("{\"name\":\"half\""), "{body}");
        assert!(body.ends_with('\n'));

        let (status, accepted) =
            request(addr, "POST", "/synthesize", "{\"bench\":\"half\",\"async\":true}");
        assert_eq!(status, 202, "{accepted}");
        let id = json::parse(accepted.trim_end())
            .unwrap()
            .get("job")
            .and_then(json::Json::as_str)
            .unwrap()
            .to_string();
        let deadline = Instant::now() + Duration::from_secs(60);
        let done = loop {
            let (status, poll) = request(addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "{poll}");
            let doc = json::parse(poll.trim_end()).unwrap();
            match doc.get("status").and_then(json::Json::as_str) {
                Some("done") => break doc,
                Some("failed") => panic!("job failed: {poll}"),
                _ => {
                    assert!(Instant::now() < deadline, "job never finished");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        assert_eq!(
            done.get("result").unwrap().emit() + "\n",
            body,
            "polled result matches the synchronous body"
        );
        let (status, _) = request(addr, "GET", "/jobs/j999999", "");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn stg_raw_and_envelope_match_synthesize() {
        let (handle, join) = test_server(1, 4);
        let addr = handle.addr();
        let raw = ".model ring\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n\
                   .marking { <b-,a+> }\n.end\n";
        let (status, raw_body) = request(addr, "POST", "/stg", raw);
        assert_eq!(status, 200, "{raw_body}");
        assert!(raw_body.starts_with("{\"name\":\"ring\""), "{raw_body}");

        // The JSON envelope and /synthesize's `g_source` answer with the
        // exact same bytes.
        let quoted = json::Json::Str(raw.to_string()).emit();
        let (status, env_body) = request(addr, "POST", "/stg", &format!("{{\"source\":{quoted}}}"));
        assert_eq!(status, 200, "{env_body}");
        assert_eq!(env_body, raw_body);
        let (status, synth_body) =
            request(addr, "POST", "/synthesize", &format!("{{\"g_source\":{quoted}}}"));
        assert_eq!(status, 200, "{synth_body}");
        assert_eq!(synth_body, raw_body);

        // A spec that fails to parse is a flow failure (422) carrying the
        // parser's line/column; envelope mistakes are 400s; wrong method
        // is 405.
        let (status, err) = request(addr, "POST", "/stg", ".inputsx y\n.end\n");
        assert_eq!(status, 422, "{err}");
        assert!(err.contains("line 1"), "{err}");
        let (status, err) = request(addr, "POST", "/stg", "{\"nope\":1}");
        assert_eq!(status, 400, "{err}");
        let (status, _) = request(addr, "GET", "/stg", "");
        assert_eq!(status, 405);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn unknown_benchmark_is_422() {
        let (handle, join) = test_server(1, 4);
        let addr = handle.addr();
        let (status, body) = request(addr, "POST", "/synthesize", "{\"bench\":\"nope\"}");
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("unknown benchmark"), "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
