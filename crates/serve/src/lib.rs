//! # simap-serve
//!
//! A dependency-free HTTP/1.1 synthesis service over the shared
//! [`Engine`]: the long-running third entry tier next to the one-shot
//! CLI and the library API. One process hosts one engine, so the
//! benchmark registry is built once and the elaboration cache stays warm
//! across every client — exactly what [`Engine`] was made cheaply
//! cloneable and thread-safe for.
//!
//! Everything is `std`: `TcpListener` for transport, a hand-rolled
//! HTTP/1.1 reader/writer, [`simap_core::json`] for bodies, a bounded
//! job queue drained by a `std::thread` worker pool for execution, and
//! atomics for metrics. There is deliberately no async runtime: one
//! thread per in-flight connection parses and waits, while the *work* is
//! bounded by the worker pool and the queue — the queue, not the thread
//! count, is the backpressure surface.
//!
//! ## Wire protocol
//!
//! Every response carries `Connection: close` (one request per
//! connection) and a JSON body terminated by a newline. Errors are
//! `{"error":"..."}` objects with the status codes below.
//!
//! | Route | Behavior |
//! |---|---|
//! | `POST /synthesize` | Runs one mapping flow. Body fields: exactly one of `bench` (embedded benchmark name) or `g_source` (ad-hoc `.g` text); optional `literal_limit`, `or_limit`, `csc_repair`, `verify`, `strategy` (`packed`\|`explicit`\|`symbolic`), `reach_jobs`, `materialize_limit`; optional `async` or `stream` booleans. The `200` body is **byte-identical** to `simap map --json` for the same spec/config. With `"async":true` answers `202 {"job":"jN","status":"queued"}` immediately. With `"stream":true` answers `application/x-ndjson`: one [`simap_core::FlowEvent`] JSON line per observer callback as stages complete, ending with `{"event":"report","report":{...}}` (or `{"event":"error",...}`). |
//! | `POST /batch` | Runs many benchmarks through one configuration. Body fields: `names` (array, empty/absent = the whole embedded suite), `limits` (array of literal limits, default `[2]`), the shared configuration fields, `async`. The `200` body is byte-identical to `simap bench run --json`. |
//! | `GET /jobs/{id}` | Polls an async job: `{"job":"jN","status":"queued"\|"running"\|"done"\|"failed"}` plus `result` (the full response document) when done or `error` when failed. `404` for unknown/evicted ids. |
//! | `GET /benchmarks` | The embedded registry with signal/state counts — byte-identical to `simap bench list --json`. |
//! | `GET /healthz` | `{"status":"ok"}` — liveness only, never queues. |
//! | `GET /metrics` | Request/response tallies, queue depth and job accounting, the engine's elaboration [`simap_core::CacheStats`], and per-stage latency histograms (power-of-two µs buckets). |
//!
//! Status codes: `400` malformed request/body, `404` unknown route or
//! job, `405` wrong method, `413` oversized request, `422` the flow
//! itself failed (unknown benchmark, CSC violation, …), `429` the job
//! queue is full — the backpressure signal, `500` a server-side bug (a
//! worker panic, isolated so the pool survives), `503` shutting down.
//!
//! ## Backpressure and shutdown
//!
//! Work is admitted through a bounded queue ([`ServeConfig::queue_limit`]);
//! when it is full the server answers `429` immediately instead of
//! accepting unbounded work. On shutdown ([`ServerHandle::shutdown`], or
//! SIGTERM/ctrl-c via [`shutdown_signal`] in the CLI) the listener stops
//! accepting, accepted jobs drain to completion, workers join, and
//! [`Server::run`] returns — in-flight synchronous clients get their
//! responses.
//!
//! ```
//! use simap_serve::{ServeConfig, Server};
//! use std::io::{Read, Write};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port for the example
//!     jobs: 1,
//!     ..ServeConfig::default()
//! })?;
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run());
//!
//! let mut client = std::net::TcpStream::connect(addr)?;
//! write!(client, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")?;
//! let mut response = String::new();
//! client.read_to_string(&mut response)?;
//! assert!(response.starts_with("HTTP/1.1 200 OK"));
//! assert!(response.ends_with("{\"status\":\"ok\"}\n"));
//!
//! handle.shutdown();
//! running.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

mod api;
mod http;
mod metrics;
mod queue;

use api::{Mode, Work, WorkSource};
use http::{read_request, respond, start_ndjson, ReadError, Request};
use metrics::{Endpoint, Metrics};
use queue::{JobSpec, JobStatus, JobTable, Queue};
use simap_core::json;
use simap_core::{benchmarks_json, report_json, to_json, Config, Engine, EventObserver};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use simap_core::CacheStats;

/// Configuration of one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral one).
    pub addr: String,
    /// Worker threads draining the job queue (`0` = one per available
    /// CPU).
    pub jobs: usize,
    /// Bounded job-queue capacity; a full queue answers `429`.
    pub queue_limit: usize,
    /// Base synthesis configuration; per-request fields override it
    /// through [`Config::to_builder`].
    pub config: Config,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7317".to_string(),
            jobs: 0,
            queue_limit: 64,
            config: Config::default(),
        }
    }
}

struct Shared {
    engine: Engine,
    metrics: Arc<Metrics>,
    queue: Queue,
    jobs: JobTable,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    addr: SocketAddr,
    workers: usize,
    queue_limit: usize,
    /// `GET /benchmarks` rendered once (under this lock, so concurrent
    /// cold requests serialize instead of each elaborating the whole
    /// registry on its own connection thread — the one route that could
    /// otherwise trigger heavy work without passing the bounded queue).
    benchmarks: std::sync::Mutex<Option<String>>,
}

impl Shared {
    /// The cached registry listing, computed on first use (errors are
    /// not cached, so a transient failure is retried).
    fn benchmarks_listing(&self) -> Result<String, simap_core::Error> {
        let mut cached = self.benchmarks.lock().expect("benchmarks lock");
        if let Some(listing) = cached.as_ref() {
            return Ok(listing.clone());
        }
        let listing = benchmarks_json(&self.engine)?;
        *cached = Some(listing.clone());
        Ok(listing)
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks until
/// shutdown; grab a [`ServerHandle`] first to stop it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cheap handle to a running (or bound) server, used to stop it.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown: stop accepting, drain accepted
    /// jobs, join workers. Idempotent; returns immediately ([`Server::run`]
    /// returns once the drain completes).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.queue.wake_all();
        // Unblock the accept loop with a throwaway connection. A
        // wildcard bind (0.0.0.0 / [::]) is not connectable on every
        // platform, so aim at the loopback of the same family instead.
        let mut wake = self.shared.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }
}

impl Server {
    /// Binds the listener and builds the shared state (engine, queue,
    /// metrics). No thread is spawned yet.
    ///
    /// # Errors
    /// Address parse/bind failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.jobs == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            config.jobs
        };
        let shared = Arc::new(Shared {
            engine: Engine::new(config.config),
            metrics: Arc::new(Metrics::default()),
            queue: Queue::new(config.queue_limit.max(1)),
            jobs: JobTable::new(),
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            addr,
            workers,
            queue_limit: config.queue_limit.max(1),
            benchmarks: std::sync::Mutex::new(None),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: self.shared.clone() }
    }

    /// Serves until [`ServerHandle::shutdown`]: spawns the worker pool,
    /// accepts connections (one thread per in-flight request), then
    /// drains jobs and joins workers on shutdown.
    ///
    /// # Errors
    /// Worker-thread spawn failures; accept errors are retried.
    pub fn run(self) -> std::io::Result<()> {
        let shared = self.shared;
        let mut workers = Vec::with_capacity(shared.workers);
        for i in 0..shared.workers {
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("simap-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        for stream in self.listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else {
                // Persistent accept errors (fd exhaustion, EMFILE) would
                // otherwise busy-spin this loop at 100% CPU, starving the
                // very connection threads that must finish to free fds.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            let guard = ConnGuard::new(shared.clone());
            let shared = shared.clone();
            let spawned =
                std::thread::Builder::new().name("simap-serve-conn".to_string()).spawn(move || {
                    let _guard = guard;
                    handle_connection(&shared, stream);
                });
            if spawned.is_err() {
                // Thread exhaustion: shed the connection (the guard of
                // the failed spawn already decremented on drop).
                continue;
            }
        }

        // Drain: workers finish the accepted queue, then exit.
        shared.queue.wake_all();
        for worker in workers {
            let _ = worker.join();
        }
        // Give in-flight connection threads (writing final responses) a
        // bounded window to finish.
        let deadline = Instant::now() + Duration::from_secs(5);
        while shared.open_connections.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// RAII open-connection counter (so shutdown can wait for responses).
struct ConnGuard {
    shared: Arc<Shared>,
}

impl ConnGuard {
    fn new(shared: Arc<Shared>) -> Self {
        shared.open_connections.fetch_add(1, Ordering::AcqRel);
        ConnGuard { shared }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.open_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":{}}}\n", json::quote(message))
}

/// Sends a response and tallies its status.
fn send(shared: &Shared, stream: &mut TcpStream, status: u16, body: &str) {
    shared.metrics.count_status(status);
    let _ = respond(stream, status, body);
}

fn endpoint_of(request: &Request) -> Endpoint {
    match request.path.as_str() {
        "/synthesize" => Endpoint::Synthesize,
        "/batch" => Endpoint::Batch,
        "/benchmarks" => Endpoint::Benchmarks,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        path if path.starts_with("/jobs/") => Endpoint::Jobs,
        _ => Endpoint::Other,
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        // Malformed requests still count (as `other`) so that
        // `sum(by_status) <= requests.total` holds for every dashboard
        // computing error rates off /metrics. Disconnects get neither a
        // request nor a status tally — nothing was answered.
        Err(ReadError::Disconnected) => return,
        Err(ReadError::Bad(message)) => {
            shared.metrics.count_request(Endpoint::Other);
            send(shared, &mut stream, 400, &error_body(&message));
            return;
        }
        Err(ReadError::TooLarge(message)) => {
            shared.metrics.count_request(Endpoint::Other);
            send(shared, &mut stream, 413, &error_body(&message));
            return;
        }
    };
    shared.metrics.count_request(endpoint_of(&request));

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => send(shared, &mut stream, 200, "{\"status\":\"ok\"}\n"),
        ("GET", "/metrics") => {
            let body = shared.metrics.render(
                shared.engine.cache_stats(),
                shared.queue.depth(),
                shared.queue_limit,
                shared.workers,
            );
            send(shared, &mut stream, 200, &body);
        }
        ("GET", "/benchmarks") => match shared.benchmarks_listing() {
            Ok(doc) => send(shared, &mut stream, 200, &format!("{doc}\n")),
            Err(e) => send(shared, &mut stream, 500, &error_body(&e.to_string())),
        },
        ("GET", path) if path.starts_with("/jobs/") => job_status(shared, &mut stream, path),
        ("POST", "/synthesize") => {
            match api::parse_synthesize(&request.body, shared.engine.config()) {
                Ok((work, mode)) => submit(shared, &mut stream, work, mode),
                Err(message) => send(shared, &mut stream, 400, &error_body(&message)),
            }
        }
        ("POST", "/batch") => match api::parse_batch(&request.body, shared.engine.config()) {
            Ok((work, mode)) => submit(shared, &mut stream, work, mode),
            Err(message) => send(shared, &mut stream, 400, &error_body(&message)),
        },
        (_, "/healthz" | "/metrics" | "/benchmarks" | "/synthesize" | "/batch") => {
            send(shared, &mut stream, 405, &error_body("method not allowed"));
        }
        (_, path) if path.starts_with("/jobs/") => {
            send(shared, &mut stream, 405, &error_body("method not allowed"));
        }
        _ => send(shared, &mut stream, 404, &error_body("not found")),
    }
}

fn job_status(shared: &Shared, stream: &mut TcpStream, path: &str) {
    let id = path
        .strip_prefix("/jobs/")
        .and_then(|rest| rest.strip_prefix('j'))
        .and_then(|digits| digits.parse::<u64>().ok());
    let Some((status, result, error)) = id.and_then(|id| shared.jobs.status(id)) else {
        send(shared, stream, 404, &error_body("unknown job"));
        return;
    };
    let id = id.expect("status implies a parsed id");
    let body = match (status, result, error) {
        (JobStatus::Done, Some(result), _) => {
            format!("{{\"job\":\"j{id}\",\"status\":\"done\",\"result\":{}}}\n", result.trim_end())
        }
        (JobStatus::Failed, _, Some(failure)) => format!(
            "{{\"job\":\"j{id}\",\"status\":\"failed\",\"error\":{}}}\n",
            json::quote(&failure.message)
        ),
        (status, _, _) => format!("{{\"job\":\"j{id}\",\"status\":\"{}\"}}\n", status.as_str()),
    };
    send(shared, stream, 200, &body);
}

fn submit(shared: &Shared, stream: &mut TcpStream, work: Work, mode: Mode) {
    let (stream_tx, stream_rx) = match mode {
        Mode::Stream => {
            let (tx, rx) = std::sync::mpsc::channel();
            (Some(tx), Some(rx))
        }
        _ => (None, None),
    };
    let id = shared.jobs.create(stream_tx);
    // The shutdown flag is checked inside `submit`, under the queue lock,
    // so an accepted job is guaranteed a worker (no submit-after-drain
    // race; see `Queue::submit`).
    match shared.queue.submit(JobSpec { id, work }, &shared.shutdown) {
        Ok(()) => {}
        Err(queue::SubmitError::ShuttingDown) => {
            shared.jobs.discard(id);
            send(shared, stream, 503, &error_body("shutting down"));
            return;
        }
        Err(queue::SubmitError::Full) => {
            shared.jobs.discard(id);
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let body = format!(
                "{{\"error\":\"queue full\",\"queue_depth\":{},\"queue_limit\":{}}}\n",
                shared.queue.depth(),
                shared.queue_limit
            );
            send(shared, stream, 429, &body);
            return;
        }
    }
    shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);

    match mode {
        Mode::Async => {
            send(shared, stream, 202, &format!("{{\"job\":\"j{id}\",\"status\":\"queued\"}}\n"));
        }
        Mode::Sync => {
            let (status, result, error) = shared.jobs.wait_done(id);
            match (status, result) {
                (JobStatus::Done, Some(body)) => send(shared, stream, 200, &body),
                _ => {
                    // 422 = the flow rejected this request; 500 = a
                    // server-side bug (worker panic) — keep the split so
                    // error-rate dashboards classify correctly.
                    let failure = error.unwrap_or_else(|| queue::JobFailure {
                        message: "job failed".to_string(),
                        internal: true,
                    });
                    let status = if failure.internal { 500 } else { 422 };
                    send(shared, stream, status, &error_body(&failure.message));
                }
            }
        }
        Mode::Stream => {
            shared.metrics.count_status(200);
            if start_ndjson(stream).is_err() {
                return;
            }
            let _ = writeln!(stream, "{{\"event\":\"job\",\"job\":\"j{id}\"}}");
            let _ = stream.flush();
            let rx = stream_rx.expect("stream mode created a channel");
            // Lines arrive until the worker completes the job and the
            // table drops the sender.
            for line in rx {
                if writeln!(stream, "{line}").and_then(|()| stream.flush()).is_err() {
                    // Client went away; the worker keeps running (its
                    // sends just fail) and the job record stays pollable.
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(JobSpec { id, work }) = shared.queue.pop(&shared.shutdown) {
        let stream = shared.jobs.mark_running(id);
        // Panic isolation: `g_source` bodies are untrusted network input,
        // and a panicking job must neither kill the worker (permanently
        // shrinking the pool) nor leave its synchronous client blocked in
        // `wait_done` forever.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_work(shared, work, stream.as_ref())
        }))
        .unwrap_or_else(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(queue::JobFailure { message: format!("internal error: {message}"), internal: true })
        });
        match &outcome {
            Ok(body) => {
                if let Some(tx) = &stream {
                    let _ =
                        tx.send(format!("{{\"event\":\"report\",\"report\":{}}}", body.trim_end()));
                }
                shared.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(failure) => {
                if let Some(tx) = &stream {
                    let _ = tx.send(format!(
                        "{{\"event\":\"error\",\"error\":{}}}",
                        json::quote(&failure.message)
                    ));
                }
                shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.jobs.complete(id, outcome);
    }
}

/// Executes one unit of work on the shared engine. The success body is
/// byte-identical to the corresponding CLI `--json` output (including the
/// trailing newline `println!` appends).
fn run_work(
    shared: &Shared,
    work: Work,
    stream: Option<&Sender<String>>,
) -> Result<String, queue::JobFailure> {
    // Flow failures are the *request's* fault (422), never internal.
    let flow_error =
        |e: simap_core::Error| queue::JobFailure { message: e.to_string(), internal: false };
    match work {
        Work::Synthesize { source, config } => {
            let engine = shared.engine.with_config(config.clone());
            let synthesis = match source {
                WorkSource::Benchmark(name) => engine.benchmark(name),
                WorkSource::GSource(text) => engine.g_source(text),
            };
            let metrics = shared.metrics.clone();
            let forward = stream.cloned();
            let mut starts: [Option<Instant>; 7] = [None; 7];
            let synthesis = synthesis.observer(EventObserver::new(move |event| {
                match &event {
                    simap_core::FlowEvent::StageStart { stage, .. } => {
                        starts[metrics::stage_index(*stage)] = Some(Instant::now());
                    }
                    simap_core::FlowEvent::StageEnd { stage } => {
                        if let Some(start) = starts[metrics::stage_index(*stage)].take() {
                            metrics.record_stage(*stage, start.elapsed());
                        }
                    }
                    _ => {}
                }
                if let Some(tx) = &forward {
                    let _ = tx.send(event.to_json());
                }
            }));
            // Mirror the CLI's `map` driver exactly: refutation is data
            // (`verified: false`), not an error.
            let mapped = (|| {
                Ok::<_, simap_core::Error>(synthesis.elaborate()?.covers()?.decompose()?.map())
            })()
            .map_err(flow_error)?;
            let verified =
                if config.verify() { mapped.verify_compat() } else { mapped.skip_verify() };
            Ok(format!("{}\n", report_json(verified.report())))
        }
        Work::Batch { names, limits, config } => {
            let engine = shared.engine.with_config(config);
            let batch = if names.is_empty() { engine.batch_all() } else { engine.batch(names) };
            let rows = batch.limits(limits.clone()).run().map_err(flow_error)?;
            Ok(format!("{}\n", to_json(&limits, &rows)))
        }
    }
}

/// Process-level SIGTERM / SIGINT latch for CLI front-ends.
///
/// The runtime has no dependency to install signal handlers with, so this
/// registers a minimal POSIX `signal(2)` handler (through the C runtime
/// `std` already links) that flips an atomic flag — the only
/// async-signal-safe thing a handler may do here. Front-ends poll
/// [`shutdown_signal::requested`] and call [`ServerHandle::shutdown`]
/// when it flips; see `simap serve`.
pub mod shutdown_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operations are allowed here; an atomic
        // store qualifies.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Installs handlers for SIGINT (ctrl-c) and SIGTERM that latch
    /// [`requested`]. A no-op on non-Unix targets.
    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the POSIX C function (the C runtime is
        // already linked by std on unix); the handler only performs an
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Installs handlers for SIGINT/SIGTERM (no-op off Unix).
    #[cfg(not(unix))]
    pub fn install() {}

    /// Whether a termination signal has been received since [`install`].
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status: u16 =
            response.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status line");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn test_server(
        jobs: usize,
        queue_limit: usize,
    ) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs,
            queue_limit,
            config: Config::default(),
        })
        .expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (handle, join) = test_server(1, 4);
        let addr = handle.addr();
        assert_eq!(request(addr, "GET", "/healthz", ""), (200, "{\"status\":\"ok\"}\n".into()));
        let (status, _) = request(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "DELETE", "/healthz", "");
        assert_eq!(status, 405);
        let (status, body) = request(addr, "POST", "/synthesize", "{\"bogus\":1}");
        assert_eq!(status, 400, "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn synthesize_and_job_polling() {
        let (handle, join) = test_server(2, 8);
        let addr = handle.addr();
        let (status, body) = request(addr, "POST", "/synthesize", "{\"bench\":\"half\"}");
        assert_eq!(status, 200, "{body}");
        assert!(body.starts_with("{\"name\":\"half\""), "{body}");
        assert!(body.ends_with('\n'));

        let (status, accepted) =
            request(addr, "POST", "/synthesize", "{\"bench\":\"half\",\"async\":true}");
        assert_eq!(status, 202, "{accepted}");
        let id = json::parse(accepted.trim_end())
            .unwrap()
            .get("job")
            .and_then(json::Json::as_str)
            .unwrap()
            .to_string();
        let deadline = Instant::now() + Duration::from_secs(60);
        let done = loop {
            let (status, poll) = request(addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "{poll}");
            let doc = json::parse(poll.trim_end()).unwrap();
            match doc.get("status").and_then(json::Json::as_str) {
                Some("done") => break doc,
                Some("failed") => panic!("job failed: {poll}"),
                _ => {
                    assert!(Instant::now() < deadline, "job never finished");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        assert_eq!(
            done.get("result").unwrap().emit() + "\n",
            body,
            "polled result matches the synchronous body"
        );
        let (status, _) = request(addr, "GET", "/jobs/j999999", "");
        assert_eq!(status, 404);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn unknown_benchmark_is_422() {
        let (handle, join) = test_server(1, 4);
        let addr = handle.addr();
        let (status, body) = request(addr, "POST", "/synthesize", "{\"bench\":\"nope\"}");
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("unknown benchmark"), "{body}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
