//! The multi-tenant gateway in front of the `simap serve` job queue.
//!
//! Every request that reaches a work route passes through an ordered
//! middleware chain — authentication/authorization ([`auth`]), per-client
//! rate limiting and in-flight quotas ([`ratelimit`]), and a circuit
//! breaker over queue saturation and worker failures ([`breaker`]) — and
//! the first rejection wins. Admitted synthesis requests then consult a
//! persistent content-addressed result cache ([`rescache`]) before
//! anything is enqueued: a hit answers byte-identically from disk, even
//! across server restarts.
//!
//! The [`Gateway`] owns the chain as a `Vec<Box<dyn Middleware + Send +
//! Sync>>` plus `Arc` handles to the individual layers for the
//! bookkeeping that happens *after* admission: releasing in-flight
//! quota when a job finishes, feeding queue-full rejections and worker
//! failures to the breaker, resolving a half-open probe's fate. Every
//! layer exports counters through [`Gateway::metrics_json`], and every
//! decision is recorded as a [`simap_core::FlowEvent::Gateway`] on the
//! request context so streaming clients see it in their NDJSON.

pub(crate) mod auth;
pub(crate) mod breaker;
pub(crate) mod middleware;
pub(crate) mod ratelimit;
pub(crate) mod rescache;

use auth::AuthLayer;
use breaker::{Breaker, BreakerState};
use middleware::{Decision, Middleware, Rejection, RequestContext};
use ratelimit::RateLimiter;
use rescache::ResCache;
use simap_core::json;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Everything configurable about the gateway, with defaults that keep a
/// bare `simap serve` behaving exactly as before: no keyfile (anonymous
/// mode), rate limiting and quotas off, no cache directory, and a
/// breaker tuned to stay closed under anything short of sustained
/// saturation.
#[derive(Debug, Clone)]
pub(crate) struct GatewayConfig {
    /// TSV keyfile (`--api-keys`); `None` = anonymous mode.
    pub api_keys: Option<PathBuf>,
    /// Base requests/sec per client (`--rate-limit`); `0` = off.
    pub rate_limit: f64,
    /// Base in-flight jobs per client (`--max-inflight`); `0` = off.
    pub max_inflight: usize,
    /// Result-cache directory (`--cache-dir`); `None` = no persistence.
    pub cache_dir: Option<PathBuf>,
    /// Maximum result-cache entries on disk (`--cache-limit`); `0` =
    /// unbounded.
    pub cache_limit: usize,
    /// Failures within the window that trip the breaker
    /// (`--breaker-threshold`); `0` disables the breaker.
    pub breaker_threshold: usize,
    /// Sliding window over which failures count.
    pub breaker_window: Duration,
    /// How long the breaker stays open before a half-open probe
    /// (`--breaker-cooldown`).
    pub breaker_cooldown: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            api_keys: None,
            rate_limit: 0.0,
            max_inflight: 0,
            cache_dir: None,
            cache_limit: 256,
            breaker_threshold: 8,
            breaker_window: Duration::from_secs(10),
            breaker_cooldown: Duration::from_secs(5),
        }
    }
}

/// Allowed/rejected tallies for one chain layer.
#[derive(Debug, Default)]
struct LayerStats {
    allowed: AtomicU64,
    rejected: AtomicU64,
}

impl LayerStats {
    fn json(&self) -> String {
        format!(
            "{{\"allowed\":{},\"rejected\":{}}}",
            self.allowed.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed)
        )
    }
}

/// The assembled gateway. Shared (via `Arc`) by every connection thread
/// and the worker pool.
pub(crate) struct Gateway {
    /// The ordered chain; the first rejection wins.
    chain: Vec<Box<dyn Middleware + Send + Sync>>,
    auth: Arc<AuthLayer>,
    limiter: Arc<RateLimiter>,
    breaker: Arc<Breaker>,
    rescache: Option<ResCache>,
    /// Per-layer decision tallies, keyed by layer name, in chain order.
    stats: Vec<(&'static str, LayerStats)>,
    /// Work requests admitted per client (keyfile clients + anonymous,
    /// so naturally bounded).
    admitted_by_client: Mutex<BTreeMap<String, u64>>,
}

impl Gateway {
    /// Builds the gateway: loads the keyfile, opens the cache directory,
    /// assembles the chain.
    ///
    /// # Errors
    /// An unreadable or malformed keyfile, or an unusable cache
    /// directory — both must fail at startup, loudly.
    pub(crate) fn open(config: &GatewayConfig) -> Result<Gateway, String> {
        let auth = Arc::new(AuthLayer::open(config.api_keys.as_deref())?);
        let limiter = Arc::new(RateLimiter::new(config.rate_limit, config.max_inflight));
        let breaker = Arc::new(Breaker::new(
            config.breaker_threshold,
            config.breaker_window,
            config.breaker_cooldown,
        ));
        let rescache = match &config.cache_dir {
            None => None,
            Some(dir) => Some(ResCache::open(dir, config.cache_limit)?),
        };
        let chain: Vec<Box<dyn Middleware + Send + Sync>> =
            vec![Box::new(auth.clone()), Box::new(limiter.clone()), Box::new(breaker.clone())];
        let stats = chain.iter().map(|layer| (layer.name(), LayerStats::default())).collect();
        Ok(Gateway {
            chain,
            auth,
            limiter,
            breaker,
            rescache,
            stats,
            admitted_by_client: Mutex::new(BTreeMap::new()),
        })
    }

    /// Runs the chain over one request. `Ok` carries the annotated
    /// context (identity, tier, probe flag, decision events); `Err`
    /// carries the first rejection plus the context that produced it
    /// (boxed: the rejection path should not tax the admit path's
    /// return size).
    pub(crate) fn admit(
        &self,
        api_key: Option<String>,
        queues_work: bool,
    ) -> Result<RequestContext, Box<(Rejection, RequestContext)>> {
        let mut ctx = RequestContext::new(api_key, queues_work);
        for (layer, (_, stats)) in self.chain.iter().zip(&self.stats) {
            match layer.check(&mut ctx) {
                Decision::Continue => {
                    stats.allowed.fetch_add(1, Ordering::Relaxed);
                }
                Decision::Reject(rejection) => {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(Box::new((rejection, ctx)));
                }
            }
        }
        if queues_work {
            *self
                .admitted_by_client
                .lock()
                .expect("client tally lock")
                .entry(ctx.client.clone())
                .or_insert(0) += 1;
        }
        Ok(ctx)
    }

    /// A job for `client` entered the queue (counts against its
    /// in-flight quota).
    pub(crate) fn job_started(&self, client: &str) {
        self.limiter.job_started(client);
    }

    /// A job for `client` left the queue.
    pub(crate) fn job_finished(&self, client: &str) {
        self.limiter.job_finished(client);
    }

    /// Feeds one distress signal (queue-full rejection, worker job
    /// failure) to the breaker.
    pub(crate) fn record_failure(&self) {
        self.breaker.record_failure();
    }

    /// Reports a half-open probe's fate back to the breaker.
    pub(crate) fn probe_result(&self, success: bool) {
        self.breaker.probe_result(success);
    }

    /// Releases a probe that never reached the queue (no verdict).
    pub(crate) fn probe_abandoned(&self) {
        self.breaker.probe_abandoned();
    }

    /// The breaker's current state (healthz, /metrics).
    pub(crate) fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Reloads the API keyfile (the SIGHUP path); returns the new key
    /// count.
    ///
    /// # Errors
    /// See [`AuthLayer::reload`] — on error the previous keys stay.
    pub(crate) fn reload_api_keys(&self) -> Result<usize, String> {
        self.auth.reload()
    }

    /// Whether a persistent result cache is configured.
    pub(crate) fn cache_enabled(&self) -> bool {
        self.rescache.is_some()
    }

    /// Consults the result cache. `None` when disabled or miss.
    pub(crate) fn cache_lookup(&self, digest: u64, canon: &str) -> Option<String> {
        self.rescache.as_ref()?.lookup(digest, canon)
    }

    /// Persists a finished result (no-op when the cache is disabled).
    pub(crate) fn cache_store(&self, digest: u64, canon: &str, body: &str) {
        if let Some(cache) = &self.rescache {
            cache.store(digest, canon, body);
        }
    }

    /// The gateway section of /metrics, as one JSON object: per-layer
    /// allow/reject tallies, breaker state and trip counters, result
    /// cache counters (or `null` when disabled), and per-client
    /// admission counts.
    pub(crate) fn metrics_json(&self) -> String {
        let mut out = String::from("{\"auth_mode\":");
        out.push_str(if self.auth.requires_key() { "\"keyed\"" } else { "\"anonymous\"" });
        out.push_str(&format!(",\"api_keys\":{}", self.auth.key_count()));
        for (name, stats) in &self.stats {
            out.push_str(&format!(",\"{name}\":{}", stats.json()));
        }
        let (opened, shed) = self.breaker.counters();
        out.push_str(&format!(
            ",\"breaker_state\":{},\"breaker_opened\":{opened},\"breaker_shed\":{shed}",
            json::quote(self.breaker.state().as_str())
        ));
        match &self.rescache {
            None => out.push_str(",\"rescache\":null"),
            Some(cache) => {
                let c = cache.counters();
                out.push_str(&format!(
                    ",\"rescache\":{{\"hits\":{},\"misses\":{},\"stores\":{},\
                     \"evictions\":{},\"entries\":{}}}",
                    c.hits,
                    c.misses,
                    c.stores,
                    c.evictions,
                    cache.entries()
                ));
            }
        }
        out.push_str(",\"clients\":{");
        let tally = self.admitted_by_client.lock().expect("client tally lock");
        for (i, (client, count)) in tally.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"admitted\":{count},\"inflight\":{}}}",
                json::quote(client),
                self.limiter.inflight(client)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(config: &GatewayConfig) -> Gateway {
        Gateway::open(config).unwrap()
    }

    #[test]
    fn default_gateway_admits_anonymous_work_freely() {
        let gw = open(&GatewayConfig::default());
        for _ in 0..50 {
            let ctx = gw.admit(None, true).unwrap();
            assert_eq!(ctx.client, "anonymous");
        }
        let metrics = gw.metrics_json();
        assert!(metrics.contains("\"auth_mode\":\"anonymous\""), "{metrics}");
        assert!(metrics.contains("\"auth\":{\"allowed\":50,\"rejected\":0}"), "{metrics}");
        assert!(
            metrics.contains("\"clients\":{\"anonymous\":{\"admitted\":50,\"inflight\":0}}"),
            "{metrics}"
        );
        assert!(metrics.contains("\"breaker_state\":\"closed\""), "{metrics}");
        assert!(metrics.contains("\"rescache\":null"), "{metrics}");
        // The section is itself valid JSON.
        simap_core::json::parse(&metrics).expect("gateway metrics are valid JSON");
    }

    #[test]
    fn chain_order_is_auth_then_ratelimit_then_breaker() {
        let dir = std::env::temp_dir().join(format!("simap-gw-order-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let keyfile = dir.join("keys.tsv");
        std::fs::write(&keyfile, "k-a\talice\tfree\n").unwrap();
        let gw = open(&GatewayConfig {
            api_keys: Some(keyfile),
            max_inflight: 1,
            ..GatewayConfig::default()
        });
        // Unknown key: auth rejects before the limiter is consulted.
        let (rejection, _) = *gw.admit(Some("nope".to_string()), true).unwrap_err();
        assert_eq!(rejection.status, 401);
        // Known key fills the quota, then the limiter rejects.
        let ctx = gw.admit(Some("k-a".to_string()), true).unwrap();
        gw.job_started(&ctx.client);
        let (rejection, ctx) = *gw.admit(Some("k-a".to_string()), true).unwrap_err();
        assert_eq!(rejection.status, 429);
        assert_eq!(rejection.retry_after, Some(1));
        // The rejected context still carries the decision trail.
        let events: Vec<String> = ctx.events.iter().map(|e| e.to_json()).collect();
        assert!(events[0].contains("\"layer\":\"auth\",\"decision\":\"allow\""), "{events:?}");
        assert!(
            events[1].contains("\"layer\":\"ratelimit\",\"decision\":\"reject\""),
            "{events:?}"
        );
        gw.job_finished("alice");
        assert!(gw.admit(Some("k-a".to_string()), true).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn breaker_layer_sheds_after_sustained_failures() {
        let gw = open(&GatewayConfig { breaker_threshold: 2, ..GatewayConfig::default() });
        gw.record_failure();
        gw.record_failure();
        let (rejection, _) = *gw.admit(None, true).unwrap_err();
        assert_eq!(rejection.status, 503);
        assert!(rejection.retry_after.is_some());
        assert_eq!(gw.breaker_state(), BreakerState::Open);
        // Non-work requests still pass while open.
        assert!(gw.admit(None, false).is_ok());
        let metrics = gw.metrics_json();
        assert!(metrics.contains("\"breaker_state\":\"open\""), "{metrics}");
        assert!(metrics.contains("\"breaker_opened\":1"), "{metrics}");
    }

    #[test]
    fn cache_round_trips_through_the_gateway_facade() {
        let dir = std::env::temp_dir().join(format!("simap-gw-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gw = open(&GatewayConfig { cache_dir: Some(dir.clone()), ..GatewayConfig::default() });
        assert!(gw.cache_enabled());
        assert_eq!(gw.cache_lookup(5, "canon"), None);
        gw.cache_store(5, "canon", "body");
        assert_eq!(gw.cache_lookup(5, "canon").as_deref(), Some("body"));
        let metrics = gw.metrics_json();
        assert!(metrics.contains("\"rescache\":{\"hits\":1,\"misses\":1,"), "{metrics}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
