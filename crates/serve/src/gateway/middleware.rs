//! The middleware vocabulary: the [`Middleware`] trait every gateway
//! layer implements, the per-request [`RequestContext`] the chain
//! threads through, and the [`Decision`] each layer returns.
//!
//! The chain itself is an ordered `Vec<Box<dyn Middleware + Send +
//! Sync>>` owned by [`crate::gateway::Gateway`]; layers run in order and
//! the first rejection wins. Every decision is also recorded into the
//! context as a [`FlowEvent::Gateway`] so streaming clients can see how
//! their request traversed the gateway.

use simap_core::FlowEvent;

/// Service tiers an API key can be assigned in the keyfile. Tiers scale
/// the base `--rate-limit` / `--max-inflight` budgets; `blocked` is the
/// authorization deny (a valid key that may not submit work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    /// Authenticates but is denied all work routes (`403`).
    Blocked,
    /// The base budgets exactly as configured.
    Free,
    /// Four times the base budgets (also the anonymous tier when the
    /// server runs without a keyfile).
    Standard,
    /// No rate or in-flight limits.
    Unlimited,
}

impl Tier {
    /// Parses a keyfile tier column.
    pub(crate) fn parse(s: &str) -> Result<Tier, String> {
        match s {
            "blocked" => Ok(Tier::Blocked),
            "free" => Ok(Tier::Free),
            "standard" => Ok(Tier::Standard),
            "unlimited" => Ok(Tier::Unlimited),
            other => Err(format!(
                "unknown tier `{other}` (expected blocked | free | standard | unlimited)"
            )),
        }
    }

    /// Budget multiplier over the base `--rate-limit`/`--max-inflight`
    /// values; `None` means unlimited.
    pub(crate) fn multiplier(self) -> Option<f64> {
        match self {
            // `Blocked` never reaches the rate limiter (auth rejects),
            // but give it a defined value anyway.
            Tier::Blocked => Some(0.0),
            Tier::Free => Some(1.0),
            Tier::Standard => Some(4.0),
            Tier::Unlimited => None,
        }
    }

    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Tier::Blocked => "blocked",
            Tier::Free => "free",
            Tier::Standard => "standard",
            Tier::Unlimited => "unlimited",
        }
    }
}

/// Everything a middleware may inspect or annotate about one request.
#[derive(Debug)]
pub(crate) struct RequestContext {
    /// The presented API key (`Authorization: Bearer …` or `X-Api-Key`),
    /// if any.
    pub api_key: Option<String>,
    /// Resolved client identity; `"anonymous"` until the auth layer
    /// names it.
    pub client: String,
    /// Resolved service tier (set by the auth layer).
    pub tier: Tier,
    /// Whether this request submits work to the job queue (`POST
    /// /synthesize`, `POST /batch`) — the rate limiter and the circuit
    /// breaker only guard those.
    pub queues_work: bool,
    /// Whether the breaker admitted this request as its half-open probe;
    /// the submit path reports the probe's outcome back.
    pub breaker_probe: bool,
    /// Gateway decisions, in chain order, as streamable events.
    pub events: Vec<FlowEvent>,
}

impl RequestContext {
    /// A fresh context for one request.
    pub(crate) fn new(api_key: Option<String>, queues_work: bool) -> Self {
        RequestContext {
            api_key,
            client: "anonymous".to_string(),
            tier: Tier::Standard,
            queues_work,
            breaker_probe: false,
            events: Vec::new(),
        }
    }

    /// Records one gateway decision as a [`FlowEvent::Gateway`].
    pub(crate) fn record(&mut self, layer: &str, decision: impl Into<String>) {
        self.events.push(FlowEvent::Gateway {
            layer: layer.to_string(),
            decision: decision.into(),
            client: self.client.clone(),
        });
    }
}

/// A rejection: the HTTP status, a message for the structured error
/// body, and an optional `Retry-After` value in seconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Rejection {
    pub status: u16,
    pub message: String,
    pub retry_after: Option<u64>,
}

/// What one middleware layer decided about a request.
#[derive(Debug)]
pub(crate) enum Decision {
    /// Pass the request to the next layer.
    Continue,
    /// Stop the chain and answer with this rejection.
    Reject(Rejection),
}

/// One layer of the gateway chain. Layers are shared across connection
/// threads, so `check` takes `&self`; all mutability is interior.
pub(crate) trait Middleware: Send + Sync {
    /// The layer's name, used in metrics and gateway events.
    fn name(&self) -> &'static str;

    /// Inspects (and annotates) the request; the first `Reject` in the
    /// chain wins.
    fn check(&self, ctx: &mut RequestContext) -> Decision;
}

/// Shared layers can sit in the chain as `Arc`s (the gateway keeps its
/// own handle for post-admission bookkeeping: in-flight release, breaker
/// outcome reporting).
impl<T: Middleware> Middleware for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn check(&self, ctx: &mut RequestContext) -> Decision {
        (**self).check(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parsing_round_trips() {
        for tier in [Tier::Blocked, Tier::Free, Tier::Standard, Tier::Unlimited] {
            assert_eq!(Tier::parse(tier.as_str()), Ok(tier));
        }
        assert!(Tier::parse("gold").unwrap_err().contains("unknown tier `gold`"));
    }

    #[test]
    fn context_records_streamable_events() {
        let mut ctx = RequestContext::new(None, true);
        ctx.client = "alice".to_string();
        ctx.record("auth", "allow");
        assert_eq!(
            ctx.events[0].to_json(),
            "{\"event\":\"gateway\",\"layer\":\"auth\",\"decision\":\"allow\",\
             \"client\":\"alice\"}"
        );
    }
}
