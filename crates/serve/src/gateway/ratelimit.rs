//! Per-client token-bucket rate limiting and in-flight job quotas.
//!
//! Each client gets one bucket: capacity = one second's worth of its
//! tier-scaled rate (burst), refilled continuously. A request with no
//! token is `429` with a `Retry-After` estimating when the next token
//! lands. Independently, a client may not hold more than its tier-scaled
//! in-flight budget of queued + running jobs — the quota that stops one
//! client from filling the whole job queue and starving the rest, which
//! is the point of the gateway.
//!
//! Time comes through the [`Clock`] trait so the bucket timing is unit
//! testable without sleeping; production uses [`MonotonicClock`].

use super::middleware::{Decision, Middleware, Rejection, RequestContext};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source (a trait so tests can drive it manually).
pub(crate) trait Clock: Send + Sync {
    /// Time elapsed since an arbitrary fixed origin.
    fn now(&self) -> Duration;
}

/// The production clock: `Instant` since limiter construction.
pub(crate) struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    pub(crate) fn new() -> Self {
        MonotonicClock { start: Instant::now() }
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A manually-driven clock for deterministic bucket tests.
#[cfg(test)]
pub(crate) struct ManualClock(pub std::sync::atomic::AtomicU64);

#[cfg(test)]
impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.0.load(std::sync::atomic::Ordering::SeqCst))
    }
}

struct ClientState {
    tokens: f64,
    last_refill: Duration,
    inflight: usize,
}

/// The rate-limiting layer of the gateway chain.
pub(crate) struct RateLimiter {
    /// Base requests/sec of the `free` tier; `0.0` disables rate
    /// limiting entirely.
    rate: f64,
    /// Base in-flight job budget of the `free` tier; `0` disables the
    /// quota.
    max_inflight: usize,
    clock: Box<dyn Clock>,
    clients: Mutex<HashMap<String, ClientState>>,
}

impl RateLimiter {
    /// A limiter with the given base budgets on the production clock.
    pub(crate) fn new(rate: f64, max_inflight: usize) -> Self {
        RateLimiter::with_clock(rate, max_inflight, Box::new(MonotonicClock::new()))
    }

    /// A limiter on an explicit clock (tests).
    pub(crate) fn with_clock(rate: f64, max_inflight: usize, clock: Box<dyn Clock>) -> Self {
        RateLimiter { rate, max_inflight, clock, clients: Mutex::new(HashMap::new()) }
    }

    /// A job for `client` entered the queue; counts against its
    /// in-flight quota until [`RateLimiter::job_finished`].
    pub(crate) fn job_started(&self, client: &str) {
        let mut clients = self.clients.lock().expect("limiter lock");
        let now = self.clock.now();
        let state = clients.entry(client.to_string()).or_insert_with(|| ClientState {
            tokens: 0.0,
            last_refill: now,
            inflight: 0,
        });
        state.inflight += 1;
    }

    /// A job for `client` left the queue (completed, failed, or was
    /// discarded before running).
    pub(crate) fn job_finished(&self, client: &str) {
        let mut clients = self.clients.lock().expect("limiter lock");
        if let Some(state) = clients.get_mut(client) {
            state.inflight = state.inflight.saturating_sub(1);
        }
    }

    /// The current in-flight count of `client` (tests, metrics).
    pub(crate) fn inflight(&self, client: &str) -> usize {
        self.clients.lock().expect("limiter lock").get(client).map_or(0, |s| s.inflight)
    }
}

impl Middleware for RateLimiter {
    fn name(&self) -> &'static str {
        "ratelimit"
    }

    fn check(&self, ctx: &mut RequestContext) -> Decision {
        if !ctx.queues_work {
            return Decision::Continue;
        }
        let Some(multiplier) = ctx.tier.multiplier() else {
            ctx.record("ratelimit", "allow");
            return Decision::Continue; // unlimited tier
        };
        let rate = self.rate * multiplier;
        let burst = rate.max(1.0);
        let inflight_limit = (self.max_inflight as f64 * multiplier).ceil() as usize;
        let now = self.clock.now();

        let mut clients = self.clients.lock().expect("limiter lock");
        let state = clients.entry(ctx.client.clone()).or_insert_with(|| ClientState {
            // A fresh client starts with a full burst allowance.
            tokens: burst,
            last_refill: now,
            inflight: 0,
        });

        if self.max_inflight > 0 && state.inflight >= inflight_limit {
            let inflight = state.inflight;
            drop(clients);
            ctx.record("ratelimit", "reject");
            return Decision::Reject(Rejection {
                status: 429,
                message: format!(
                    "client `{}` has {inflight} jobs in flight (limit {inflight_limit})",
                    ctx.client
                ),
                retry_after: Some(1),
            });
        }

        if self.rate > 0.0 {
            let elapsed = now.saturating_sub(state.last_refill);
            state.tokens = (state.tokens + elapsed.as_secs_f64() * rate).min(burst);
            state.last_refill = now;
            if state.tokens < 1.0 {
                let wait = (1.0 - state.tokens) / rate;
                drop(clients);
                ctx.record("ratelimit", "reject");
                return Decision::Reject(Rejection {
                    status: 429,
                    message: format!(
                        "client `{}` (tier {}) exceeded {rate:.1} requests/sec",
                        ctx.client,
                        ctx.tier.as_str()
                    ),
                    retry_after: Some(wait.ceil().max(1.0) as u64),
                });
            }
            state.tokens -= 1.0;
        }
        drop(clients);
        ctx.record("ratelimit", "allow");
        Decision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::middleware::Tier;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn ctx(client: &str, tier: Tier) -> RequestContext {
        let mut ctx = RequestContext::new(None, true);
        ctx.client = client.to_string();
        ctx.tier = tier;
        ctx
    }

    fn advance(clock: &Arc<ManualClock>, by: Duration) {
        clock.0.fetch_add(by.as_nanos() as u64, Ordering::SeqCst);
    }

    struct SharedClock(Arc<ManualClock>);
    impl Clock for SharedClock {
        fn now(&self) -> Duration {
            self.0.now()
        }
    }

    #[test]
    fn token_bucket_meters_and_refills_on_the_mock_clock() {
        let clock = Arc::new(ManualClock(0.into()));
        // 2 req/s free tier: burst of 2, one token back every 500ms.
        let limiter = RateLimiter::with_clock(2.0, 0, Box::new(SharedClock(clock.clone())));
        let mut c = ctx("alice", Tier::Free);
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        match limiter.check(&mut c) {
            Decision::Reject(r) => {
                assert_eq!(r.status, 429);
                assert_eq!(r.retry_after, Some(1), "full token is 500ms away, rounded up");
            }
            other => panic!("{other:?}"),
        }
        // 499ms later: still short of one token.
        advance(&clock, Duration::from_millis(499));
        assert!(matches!(limiter.check(&mut c), Decision::Reject(_)));
        // 2ms more: refilled past 1.0.
        advance(&clock, Duration::from_millis(2));
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        // A long idle period refills to the burst cap, not beyond.
        advance(&clock, Duration::from_secs(3600));
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        assert!(matches!(limiter.check(&mut c), Decision::Reject(_)), "burst stays 2");
    }

    #[test]
    fn tiers_scale_rate_and_clients_are_independent() {
        let clock = Arc::new(ManualClock(0.into()));
        let limiter = RateLimiter::with_clock(1.0, 0, Box::new(SharedClock(clock.clone())));
        // Standard tier: 4x the base -> burst 4.
        let mut bob = ctx("bob", Tier::Standard);
        for _ in 0..4 {
            assert!(matches!(limiter.check(&mut bob), Decision::Continue));
        }
        assert!(matches!(limiter.check(&mut bob), Decision::Reject(_)));
        // Bob being dry does not affect Alice.
        let mut alice = ctx("alice", Tier::Free);
        assert!(matches!(limiter.check(&mut alice), Decision::Continue));
        // Unlimited tier never meters.
        let mut carol = ctx("carol", Tier::Unlimited);
        for _ in 0..100 {
            assert!(matches!(limiter.check(&mut carol), Decision::Continue));
        }
    }

    #[test]
    fn inflight_quota_gates_until_jobs_finish() {
        let limiter = RateLimiter::new(0.0, 2); // no rate limit, quota of 2
        let mut c = ctx("alice", Tier::Free);
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        limiter.job_started("alice");
        limiter.job_started("alice");
        match limiter.check(&mut c) {
            Decision::Reject(r) => {
                assert_eq!((r.status, r.retry_after), (429, Some(1)));
                assert!(r.message.contains("2 jobs in flight"), "{}", r.message);
            }
            other => panic!("{other:?}"),
        }
        limiter.job_finished("alice");
        assert!(matches!(limiter.check(&mut c), Decision::Continue));
        assert_eq!(limiter.inflight("alice"), 1);
    }

    #[test]
    fn disabled_budgets_never_reject() {
        let limiter = RateLimiter::new(0.0, 0);
        let mut c = ctx("alice", Tier::Free);
        for _ in 0..1000 {
            assert!(matches!(limiter.check(&mut c), Decision::Continue));
        }
        // Non-work routes skip the limiter entirely.
        let strict = RateLimiter::new(0.001, 1);
        let mut poll = RequestContext::new(None, false);
        for _ in 0..10 {
            assert!(matches!(strict.check(&mut poll), Decision::Continue));
        }
    }
}
