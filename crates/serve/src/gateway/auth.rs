//! API-key authentication and tier authorization.
//!
//! Keys live in a TSV keyfile (`--api-keys`): one `key<TAB>client<TAB>
//! tier` line per key, `#` comments and blank lines ignored. The file is
//! parsed strictly — a malformed line, an unknown tier or a duplicate
//! key rejects the whole file — so a typo cannot silently lock clients
//! out. At startup a bad keyfile refuses to serve; on reload (SIGHUP,
//! [`AuthLayer::reload`]) a bad file keeps the previous key set.
//!
//! Without a keyfile every caller is the anonymous client at the
//! standard tier. With one, a missing or unknown key is `401` and a key
//! in the `blocked` tier is `403` — authentication and authorization as
//! separate verdicts, both with structured JSON errors.

use super::middleware::{Decision, Middleware, Rejection, RequestContext, Tier};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::RwLock;

/// One resolved key: who it belongs to and what it may do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct KeyEntry {
    pub client: String,
    pub tier: Tier,
}

/// The authn/authz layer of the gateway chain.
pub(crate) struct AuthLayer {
    /// `None`: anonymous mode (no keyfile configured).
    path: Option<PathBuf>,
    keys: RwLock<HashMap<String, KeyEntry>>,
}

/// Parses keyfile text into a key table.
///
/// # Errors
/// The first malformed line (missing columns, empty fields, unknown
/// tier, duplicate key), with its 1-based line number.
pub(crate) fn parse_keyfile(text: &str) -> Result<HashMap<String, KeyEntry>, String> {
    let mut keys = HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut columns = line.split('\t');
        let (Some(key), Some(client), Some(tier)) =
            (columns.next(), columns.next(), columns.next())
        else {
            return Err(format!(
                "keyfile line {line_no}: expected `key<TAB>client<TAB>tier`, got `{line}`"
            ));
        };
        if columns.next().is_some() {
            return Err(format!("keyfile line {line_no}: more than three columns"));
        }
        let (key, client, tier_name) = (key.trim(), client.trim(), tier.trim());
        if key.is_empty() || client.is_empty() {
            return Err(format!("keyfile line {line_no}: empty key or client"));
        }
        let tier = Tier::parse(tier_name).map_err(|e| format!("keyfile line {line_no}: {e}"))?;
        let entry = KeyEntry { client: client.to_string(), tier };
        if keys.insert(key.to_string(), entry).is_some() {
            return Err(format!("keyfile line {line_no}: duplicate key"));
        }
    }
    Ok(keys)
}

impl AuthLayer {
    /// An auth layer over `path` (read and validated immediately), or an
    /// anonymous-mode layer when no keyfile is configured.
    ///
    /// # Errors
    /// Unreadable or malformed keyfile — startup must fail loudly rather
    /// than serve with an empty key set.
    pub(crate) fn open(path: Option<&Path>) -> Result<AuthLayer, String> {
        let keys = match path {
            None => HashMap::new(),
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read keyfile {}: {e}", path.display()))?;
                parse_keyfile(&text)?
            }
        };
        Ok(AuthLayer { path: path.map(Path::to_path_buf), keys: RwLock::new(keys) })
    }

    /// Whether a keyfile is configured (anonymous mode otherwise).
    pub(crate) fn requires_key(&self) -> bool {
        self.path.is_some()
    }

    /// Re-reads the keyfile (the SIGHUP path). On any error the previous
    /// key set stays in force.
    ///
    /// # Errors
    /// Unreadable or malformed keyfile (the message names the problem);
    /// also an error in anonymous mode, where there is nothing to reload.
    pub(crate) fn reload(&self) -> Result<usize, String> {
        let Some(path) = &self.path else {
            return Err("no --api-keys file configured".to_string());
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read keyfile {}: {e}", path.display()))?;
        let keys = parse_keyfile(&text)?;
        let count = keys.len();
        *self.keys.write().expect("keyfile lock") = keys;
        Ok(count)
    }

    /// Resolves a presented key. `None` = unknown.
    pub(crate) fn resolve(&self, key: &str) -> Option<KeyEntry> {
        self.keys.read().expect("keyfile lock").get(key).cloned()
    }

    /// How many keys are currently loaded (for /metrics).
    pub(crate) fn key_count(&self) -> usize {
        self.keys.read().expect("keyfile lock").len()
    }
}

impl Middleware for AuthLayer {
    fn name(&self) -> &'static str {
        "auth"
    }

    fn check(&self, ctx: &mut RequestContext) -> Decision {
        if !self.requires_key() {
            // Anonymous mode: everyone is one standard-tier client, so
            // the rate limiter still has a bucket to meter.
            ctx.client = "anonymous".to_string();
            ctx.tier = Tier::Standard;
            ctx.record("auth", "allow");
            return Decision::Continue;
        }
        let Some(key) = ctx.api_key.as_deref() else {
            ctx.record("auth", "reject");
            return Decision::Reject(Rejection {
                status: 401,
                message: "missing API key (send `Authorization: Bearer <key>` or `X-Api-Key`)"
                    .to_string(),
                retry_after: None,
            });
        };
        let Some(entry) = self.resolve(key) else {
            ctx.record("auth", "reject");
            return Decision::Reject(Rejection {
                status: 401,
                message: "unknown API key".to_string(),
                retry_after: None,
            });
        };
        ctx.client = entry.client;
        ctx.tier = entry.tier;
        if entry.tier == Tier::Blocked {
            ctx.record("auth", "reject");
            return Decision::Reject(Rejection {
                status: 403,
                message: format!("client `{}` is blocked", ctx.client),
                retry_after: None,
            });
        }
        ctx.record("auth", "allow");
        Decision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEYFILE: &str = "\
# comment, then a blank line

k-free\talice\tfree
k-std\tbob\tstandard
k-unl\tcarol\tunlimited
k-blk\tmallory\tblocked
";

    #[test]
    fn parses_tiers_comments_and_blanks() {
        let keys = parse_keyfile(KEYFILE).unwrap();
        assert_eq!(keys.len(), 4);
        assert_eq!(keys["k-free"], KeyEntry { client: "alice".to_string(), tier: Tier::Free });
        assert_eq!(keys["k-blk"].tier, Tier::Blocked);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, fragment) in [
            ("just-a-key\n", "expected `key<TAB>client<TAB>tier`"),
            ("k\tclient\tgold\n", "unknown tier `gold`"),
            ("k\tclient\tfree\textra\n", "more than three columns"),
            ("\tclient\tfree\n", "empty key or client"),
            ("k\ta\tfree\nk\tb\tfree\n", "duplicate key"),
        ] {
            let err = parse_keyfile(text).unwrap_err();
            assert!(err.contains(fragment), "{text:?} -> {err}");
        }
        // Errors carry the offending line number.
        assert!(parse_keyfile("k\ta\tfree\nbad\n").unwrap_err().contains("line 2"));
    }

    #[test]
    fn anonymous_mode_allows_without_a_key() {
        let auth = AuthLayer::open(None).unwrap();
        let mut ctx = RequestContext::new(None, true);
        assert!(matches!(auth.check(&mut ctx), Decision::Continue));
        assert_eq!(ctx.client, "anonymous");
        assert_eq!(ctx.tier, Tier::Standard);
    }

    #[test]
    fn keyed_mode_authenticates_and_authorizes() {
        let dir = std::env::temp_dir().join(format!("simap-auth-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("keys.tsv");
        std::fs::write(&path, KEYFILE).unwrap();
        let auth = AuthLayer::open(Some(&path)).unwrap();

        // No key -> 401.
        let mut ctx = RequestContext::new(None, true);
        match auth.check(&mut ctx) {
            Decision::Reject(r) => assert_eq!(r.status, 401),
            other => panic!("{other:?}"),
        }
        // Unknown key -> 401.
        let mut ctx = RequestContext::new(Some("nope".to_string()), true);
        match auth.check(&mut ctx) {
            Decision::Reject(r) => {
                assert_eq!((r.status, r.message.as_str()), (401, "unknown API key"))
            }
            other => panic!("{other:?}"),
        }
        // Valid key -> resolved identity.
        let mut ctx = RequestContext::new(Some("k-free".to_string()), true);
        assert!(matches!(auth.check(&mut ctx), Decision::Continue));
        assert_eq!((ctx.client.as_str(), ctx.tier), ("alice", Tier::Free));
        // Blocked tier -> 403 (authn ok, authz denied).
        let mut ctx = RequestContext::new(Some("k-blk".to_string()), true);
        match auth.check(&mut ctx) {
            Decision::Reject(r) => {
                assert_eq!(r.status, 403);
                assert!(r.message.contains("mallory"), "{}", r.message);
            }
            other => panic!("{other:?}"),
        }

        // Reload picks up edits; a broken file keeps the old table.
        std::fs::write(&path, "k-new\tdave\tstandard\n").unwrap();
        assert_eq!(auth.reload().unwrap(), 1);
        assert!(auth.resolve("k-free").is_none());
        assert_eq!(auth.resolve("k-new").unwrap().client, "dave");
        std::fs::write(&path, "corrupt file\n").unwrap();
        assert!(auth.reload().is_err());
        assert_eq!(auth.resolve("k-new").unwrap().client, "dave", "old table survives");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
