//! Circuit breaker over queue saturation and worker failures.
//!
//! The breaker watches the submit path's distress signals — queue-full
//! rejections and worker job failures — in a sliding time window. When
//! the window accumulates `threshold` signals the breaker trips *open*
//! and answers every work request `503` with a `Retry-After`, shedding
//! load instead of letting callers pile onto a saturated queue. After a
//! cooldown it goes *half-open* and admits exactly one probe request;
//! the probe's fate (queue accepted it, or not) decides whether the
//! breaker closes again or re-opens for another cooldown.
//!
//! State transitions are driven by the same injectable clock as the rate
//! limiter ([`super::ratelimit::Clock`]) so every transition is unit
//! testable without sleeping.

use super::middleware::{Decision, Middleware, Rejection, RequestContext};
use super::ratelimit::{Clock, MonotonicClock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerState {
    /// Healthy: requests flow, failures are tallied.
    Closed,
    /// Tripped: all work requests are shed with `503` until cooldown.
    Open,
    /// Cooldown elapsed: one probe request is admitted to test the water.
    HalfOpen,
}

impl BreakerState {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    /// Timestamps (clock time) of recent failure signals, oldest first.
    failures: VecDeque<Duration>,
    /// When the breaker last tripped open (clock time).
    opened_at: Duration,
    /// Whether the half-open probe slot is taken.
    probe_outstanding: bool,
}

/// The circuit-breaker layer of the gateway chain.
pub(crate) struct Breaker {
    /// Failure signals within `window` that trip the breaker.
    threshold: usize,
    /// Sliding window over which failures are counted.
    window: Duration,
    /// How long the breaker stays open before probing.
    cooldown: Duration,
    clock: Box<dyn Clock>,
    inner: Mutex<BreakerInner>,
    /// Times the breaker tripped open (monotone counter for /metrics).
    opened_total: AtomicU64,
    /// Requests shed with `503` while open.
    shed_total: AtomicU64,
}

impl Breaker {
    /// A breaker on the production clock.
    pub(crate) fn new(threshold: usize, window: Duration, cooldown: Duration) -> Self {
        Breaker::with_clock(threshold, window, cooldown, Box::new(MonotonicClock::new()))
    }

    /// A breaker on an explicit clock (tests).
    pub(crate) fn with_clock(
        threshold: usize,
        window: Duration,
        cooldown: Duration,
        clock: Box<dyn Clock>,
    ) -> Self {
        Breaker {
            threshold,
            window,
            cooldown,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                failures: VecDeque::new(),
                opened_at: Duration::ZERO,
                probe_outstanding: false,
            }),
            opened_total: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
        }
    }

    /// The current state (healthz, /metrics). A breaker that is `Open`
    /// past its cooldown reports `HalfOpen`: that is what the next
    /// request will experience.
    pub(crate) fn state(&self) -> BreakerState {
        let now = self.clock.now();
        let inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Open if now.saturating_sub(inner.opened_at) >= self.cooldown => {
                BreakerState::HalfOpen
            }
            state => state,
        }
    }

    /// `(opened_total, shed_total)` counters for /metrics.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.opened_total.load(Ordering::Relaxed), self.shed_total.load(Ordering::Relaxed))
    }

    /// Records one distress signal (queue-full rejection or worker job
    /// failure) and trips the breaker if the window fills up.
    pub(crate) fn record_failure(&self) {
        if self.threshold == 0 {
            return; // breaker disabled
        }
        let now = self.clock.now();
        let mut inner = self.inner.lock().expect("breaker lock");
        if inner.state != BreakerState::Closed {
            return; // already open; signals while shedding don't re-count
        }
        inner.failures.push_back(now);
        let horizon = now.saturating_sub(self.window);
        while inner.failures.front().is_some_and(|&t| t < horizon) {
            inner.failures.pop_front();
        }
        if inner.failures.len() >= self.threshold {
            inner.state = BreakerState::Open;
            inner.opened_at = now;
            inner.failures.clear();
            inner.probe_outstanding = false;
            self.opened_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The half-open probe's verdict, reported from the submit path:
    /// `true` (the queue accepted the probe) closes the breaker, `false`
    /// re-opens it for another cooldown.
    pub(crate) fn probe_result(&self, success: bool) {
        let now = self.clock.now();
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.probe_outstanding = false;
        if success {
            inner.state = BreakerState::Closed;
            inner.failures.clear();
        } else {
            inner.state = BreakerState::Open;
            inner.opened_at = now;
            self.opened_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The admitted probe never reached the queue (malformed body, or a
    /// result-cache hit answered it): release the probe slot without a
    /// verdict so the next work request probes instead.
    pub(crate) fn probe_abandoned(&self) {
        self.inner.lock().expect("breaker lock").probe_outstanding = false;
    }

    fn seconds_until_probe(&self, opened_at: Duration, now: Duration) -> u64 {
        let remaining = (opened_at + self.cooldown).saturating_sub(now);
        (remaining.as_secs_f64().ceil() as u64).max(1)
    }
}

impl Middleware for Breaker {
    fn name(&self) -> &'static str {
        "breaker"
    }

    fn check(&self, ctx: &mut RequestContext) -> Decision {
        if !ctx.queues_work || self.threshold == 0 {
            return Decision::Continue;
        }
        let now = self.clock.now();
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => {
                drop(inner);
                ctx.record("breaker", "allow");
                Decision::Continue
            }
            BreakerState::Open if now.saturating_sub(inner.opened_at) < self.cooldown => {
                let retry = self.seconds_until_probe(inner.opened_at, now);
                drop(inner);
                self.shed_total.fetch_add(1, Ordering::Relaxed);
                ctx.record("breaker", "reject");
                Decision::Reject(Rejection {
                    status: 503,
                    message: "service shedding load (circuit breaker open)".to_string(),
                    retry_after: Some(retry),
                })
            }
            // Cooldown elapsed (or already half-open): one probe slot.
            BreakerState::Open | BreakerState::HalfOpen => {
                inner.state = BreakerState::HalfOpen;
                if inner.probe_outstanding {
                    drop(inner);
                    self.shed_total.fetch_add(1, Ordering::Relaxed);
                    ctx.record("breaker", "reject");
                    Decision::Reject(Rejection {
                        status: 503,
                        message: "service probing recovery (circuit breaker half-open)".to_string(),
                        retry_after: Some(1),
                    })
                } else {
                    inner.probe_outstanding = true;
                    drop(inner);
                    ctx.breaker_probe = true;
                    ctx.record("breaker", "probe");
                    Decision::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    struct TestClock(Arc<AtomicU64>);
    impl Clock for TestClock {
        fn now(&self) -> Duration {
            Duration::from_millis(self.0.load(Ordering::SeqCst))
        }
    }

    fn breaker(threshold: usize) -> (Breaker, Arc<AtomicU64>) {
        let time = Arc::new(AtomicU64::new(0));
        let b = Breaker::with_clock(
            threshold,
            Duration::from_secs(10),
            Duration::from_secs(5),
            Box::new(TestClock(time.clone())),
        );
        (b, time)
    }

    fn work_ctx() -> RequestContext {
        RequestContext::new(None, true)
    }

    #[test]
    fn trips_open_after_threshold_failures_in_window() {
        let (b, time) = breaker(3);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        // Old failures age out of the 10s window before the third lands.
        time.store(11_000, Ordering::SeqCst);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "window slid past the first two");
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.counters().0, 1);
    }

    #[test]
    fn sheds_with_503_and_retry_after_while_open() {
        let (b, time) = breaker(1);
        b.record_failure();
        let mut ctx = work_ctx();
        match b.check(&mut ctx) {
            Decision::Reject(r) => {
                assert_eq!(r.status, 503);
                assert_eq!(r.retry_after, Some(5), "full cooldown remains");
            }
            other => panic!("{other:?}"),
        }
        time.store(3_500, Ordering::SeqCst);
        match b.check(&mut work_ctx()) {
            Decision::Reject(r) => assert_eq!(r.retry_after, Some(2), "1.5s left, rounded up"),
            other => panic!("{other:?}"),
        }
        assert_eq!(b.counters().1, 2, "two requests shed");
        // Non-work routes are never shed.
        let mut poll = RequestContext::new(None, false);
        assert!(matches!(b.check(&mut poll), Decision::Continue));
    }

    #[test]
    fn half_open_admits_one_probe_and_its_success_closes() {
        let (b, time) = breaker(1);
        b.record_failure();
        time.store(5_000, Ordering::SeqCst); // cooldown elapsed
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let mut probe = work_ctx();
        assert!(matches!(b.check(&mut probe), Decision::Continue));
        assert!(probe.breaker_probe);
        // The probe slot is taken: a second request is still shed.
        match b.check(&mut work_ctx()) {
            Decision::Reject(r) => assert_eq!((r.status, r.retry_after), (503, Some(1))),
            other => panic!("{other:?}"),
        }
        b.probe_result(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(matches!(b.check(&mut work_ctx()), Decision::Continue));
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let (b, time) = breaker(1);
        b.record_failure();
        time.store(5_000, Ordering::SeqCst);
        let mut probe = work_ctx();
        assert!(matches!(b.check(&mut probe), Decision::Continue));
        b.probe_result(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.counters().0, 2, "re-opening counts as a trip");
        assert!(matches!(b.check(&mut work_ctx()), Decision::Reject(_)));
        // And the next cooldown yields a fresh probe slot.
        time.store(10_000, Ordering::SeqCst);
        let mut probe = work_ctx();
        assert!(matches!(b.check(&mut probe), Decision::Continue));
        assert!(probe.breaker_probe);
    }

    #[test]
    fn abandoned_probe_frees_the_slot_without_a_verdict() {
        let (b, time) = breaker(1);
        b.record_failure();
        time.store(5_000, Ordering::SeqCst);
        let mut probe = work_ctx();
        assert!(matches!(b.check(&mut probe), Decision::Continue));
        b.probe_abandoned();
        assert_eq!(b.state(), BreakerState::HalfOpen, "no verdict, no transition");
        // The slot is free again: the next request becomes the probe.
        let mut next = work_ctx();
        assert!(matches!(b.check(&mut next), Decision::Continue));
        assert!(next.breaker_probe);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let (b, _) = breaker(0);
        for _ in 0..100 {
            b.record_failure();
        }
        assert!(matches!(b.check(&mut work_ctx()), Decision::Continue));
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
