//! Persistent content-addressed result cache.
//!
//! Finished synthesis reports are addressed by an FNV-1a digest
//! ([`simap_core::fnv1a64`]) of the request's canonical key — the work
//! description plus the full [`simap_core::Config`] fingerprint
//! (`Config::digest`). Entries live as `<digest:016x>.json` files under
//! `--cache-dir`, so a *restarted* server (or a second instance sharing
//! the directory) answers a previously-synthesized request byte-for-byte
//! without ever enqueueing it.
//!
//! A 64-bit digest can collide, so every entry stores the full canonical
//! key in a header line and a lookup verifies it before trusting the
//! body; a mismatch is a miss, never a wrong answer. Reads are
//! corruption-tolerant throughout: an unreadable or malformed entry is
//! evicted and reported as a miss, never an error. Writes go through a
//! temp file + rename so a crash mid-write cannot leave a torn entry
//! under its final name. The store is size-bounded: after each write,
//! least-recently-used entries (by file mtime, refreshed on every hit)
//! are swept until at most `--cache-limit` remain.

use simap_core::json;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// Magic + format version prefixing every entry's header line.
const HEADER_PREFIX: &str = "simap-rescache v1 ";

/// Counter snapshot for /metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub evictions: u64,
}

/// The persistent result cache (one per server, one directory on disk).
pub(crate) struct ResCache {
    dir: PathBuf,
    /// Maximum entries kept on disk; `0` = unbounded.
    limit: usize,
    /// Serializes store+sweep so two workers finishing at once cannot
    /// both over-fill the directory.
    sweep: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl ResCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    /// The directory cannot be created or is not writable.
    pub(crate) fn open(dir: &Path, limit: usize) -> Result<ResCache, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        // Probe writability now: failing at startup beats failing on the
        // first finished job.
        let probe = dir.join(".simap-rescache-probe");
        fs::write(&probe, b"")
            .and_then(|()| fs::remove_file(&probe))
            .map_err(|e| format!("cache dir {} is not writable: {e}", dir.display()))?;
        Ok(ResCache {
            dir: dir.to_path_buf(),
            limit,
            sweep: Mutex::new(()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    fn entry_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.json"))
    }

    fn header_line(canon: &str) -> String {
        format!("{HEADER_PREFIX}{}", json::quote(canon))
    }

    /// Looks up the entry for `digest`, verifying it was stored for
    /// exactly `canon`. Any defect — absent, unreadable, bad header,
    /// digest collision — is a miss; defective entries are evicted.
    pub(crate) fn lookup(&self, digest: u64, canon: &str) -> Option<String> {
        let path = self.entry_path(digest);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Unreadable (permissions, invalid UTF-8): evict and miss.
                self.evict(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let Some((header, body)) = text.split_once('\n') else {
            self.evict(&path);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if header != ResCache::header_line(canon) {
            // Corrupt header or a genuine 64-bit collision: the stored
            // entry is not for this request. Either way: miss, and the
            // slot is evicted so the fresh result can take it.
            self.evict(&path);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Refresh recency for the LRU sweep; best-effort.
        if let Ok(file) = fs::File::open(&path) {
            let _ = file.set_modified(SystemTime::now());
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(body.to_string())
    }

    /// Stores `body` (the exact bytes the server answers with) under
    /// `digest`, then sweeps the directory down to the size bound.
    /// Best-effort: a full disk degrades the cache, not the service.
    pub(crate) fn store(&self, digest: u64, canon: &str, body: &str) {
        let _guard = self.sweep.lock().expect("rescache sweep lock");
        let tmp = self.dir.join(format!(".tmp-{digest:016x}-{}", std::process::id()));
        let entry = format!("{}\n{body}", ResCache::header_line(canon));
        if fs::write(&tmp, entry).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        if fs::rename(&tmp, self.entry_path(digest)).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.sweep_locked();
    }

    /// Removes least-recently-used entries until at most `limit` remain.
    /// Caller holds the sweep lock.
    fn sweep_locked(&self) {
        if self.limit == 0 {
            return;
        }
        let Ok(read) = fs::read_dir(&self.dir) else { return };
        let mut entries: Vec<(SystemTime, PathBuf)> = read
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| {
                let mtime = e.metadata().and_then(|m| m.modified()).ok()?;
                Some((mtime, e.path()))
            })
            .collect();
        if entries.len() <= self.limit {
            return;
        }
        entries.sort();
        for (_, path) in entries.iter().take(entries.len() - self.limit) {
            self.evict(path);
        }
    }

    fn evict(&self, path: &Path) {
        if fs::remove_file(path).is_ok() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently on disk (for /metrics; racy by nature).
    pub(crate) fn entries(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|read| {
                read.flatten().filter(|e| e.path().extension().is_some_and(|x| x == "json")).count()
            })
            .unwrap_or(0)
    }

    /// Counter snapshot for /metrics.
    pub(crate) fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn temp_cache(tag: &str, limit: usize) -> (ResCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!("simap-rescache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        (ResCache::open(&dir, limit).unwrap(), dir)
    }

    #[test]
    fn stores_and_returns_bodies_byte_identically() {
        let (cache, dir) = temp_cache("roundtrip", 0);
        let body = "{\"name\":\"hazard\",\n  \"states\": 12}\n";
        assert_eq!(cache.lookup(7, "canon-a"), None, "cold cache misses");
        cache.store(7, "canon-a", body);
        assert_eq!(cache.lookup(7, "canon-a").as_deref(), Some(body));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn survives_a_restart_on_the_same_directory() {
        let (cache, dir) = temp_cache("restart", 0);
        cache.store(42, "canon", "body");
        drop(cache);
        let revived = ResCache::open(&dir, 0).unwrap();
        assert_eq!(revived.lookup(42, "canon").as_deref(), Some("body"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_collision_is_a_miss_not_a_wrong_answer() {
        let (cache, dir) = temp_cache("collision", 0);
        cache.store(7, "canon-a", "body-a");
        // Same digest, different canonical key: must not serve body-a.
        assert_eq!(cache.lookup(7, "canon-b"), None);
        assert_eq!(cache.counters().evictions, 1, "the colliding slot is freed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_evicted_and_miss() {
        let (cache, dir) = temp_cache("corrupt", 0);
        // No header line at all.
        fs::write(dir.join(format!("{:016x}.json", 9u64)), "garbage, no newline").unwrap();
        assert_eq!(cache.lookup(9, "canon"), None);
        assert!(!dir.join(format!("{:016x}.json", 9u64)).exists());
        // Wrong header magic.
        fs::write(dir.join(format!("{:016x}.json", 10u64)), "not-the-magic\nbody").unwrap();
        assert_eq!(cache.lookup(10, "canon"), None);
        // Invalid UTF-8.
        fs::write(dir.join(format!("{:016x}.json", 11u64)), [0xff, 0xfe, 0x0a, 0x20]).unwrap();
        assert_eq!(cache.lookup(11, "canon"), None);
        assert_eq!(cache.counters().evictions, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_evicts_least_recently_used_beyond_the_limit() {
        let (cache, dir) = temp_cache("lru", 2);
        for digest in [1u64, 2, 3] {
            cache.store(digest, &format!("canon-{digest}"), "body");
            // Separate mtimes deterministically (filesystem clocks can be
            // coarse); entry N is older than entry N+1.
            let f = fs::File::open(cache.entry_path(digest)).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(100 * digest)).unwrap();
        }
        // Storing a fourth sweeps down to 2: oldest (1 and 2) go.
        cache.store(4, "canon-4", "body");
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.lookup(1, "canon-1"), None);
        assert_eq!(cache.lookup(2, "canon-2"), None);
        assert_eq!(cache.lookup(3, "canon-3").as_deref(), Some("body"));
        assert_eq!(cache.lookup(4, "canon-4").as_deref(), Some("body"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_hit_refreshes_recency() {
        let (cache, dir) = temp_cache("refresh", 2);
        for digest in [1u64, 2] {
            cache.store(digest, &format!("canon-{digest}"), "body");
            let f = fs::File::open(cache.entry_path(digest)).unwrap();
            f.set_modified(SystemTime::UNIX_EPOCH + Duration::from_secs(100 * digest)).unwrap();
        }
        // Touch entry 1: it becomes the most recent.
        assert!(cache.lookup(1, "canon-1").is_some());
        cache.store(3, "canon-3", "body");
        assert_eq!(cache.lookup(1, "canon-1").as_deref(), Some("body"), "refreshed survivor");
        assert_eq!(cache.lookup(2, "canon-2"), None, "stale entry swept");
        fs::remove_dir_all(&dir).unwrap();
    }
}
