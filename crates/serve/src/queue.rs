//! The bounded job queue and the job table.
//!
//! Submission is non-blocking: a full queue rejects immediately (the
//! router turns that into `429`), which is the service's backpressure
//! mechanism. Workers block on a condvar until a job (or shutdown)
//! arrives; at shutdown the queue is drained — every accepted job still
//! runs — and only then do workers exit.
//!
//! The [`JobTable`] tracks each job from `queued` through
//! `running` to `done`/`failed`, keeps the rendered response body of
//! finished jobs for `GET /jobs/{id}` polling, and caps its memory two
//! ways: the oldest *finished* records are evicted beyond a fixed count
//! window, and finished records older than the configured expiry age are
//! expired regardless of count (a quiet server does not pin yesterday's
//! results in memory forever).

use crate::api::Work;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Finished-job records kept for polling before eviction kicks in.
const MAX_FINISHED_JOBS: usize = 1024;

/// One queued unit of work.
pub(crate) struct JobSpec {
    pub id: u64,
    pub work: Work,
    /// The gateway-resolved client that submitted it (releases its
    /// in-flight quota at completion).
    pub client: String,
    /// The result-cache identity `(digest, canonical key)` when this
    /// job's success body should be persisted; `None` when the cache is
    /// disabled.
    pub fingerprint: Option<(u64, String)>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The queue was at its limit (the router answers `429`).
    Full,
    /// Shutdown is in progress — workers may already have drained and
    /// exited, so an accepted job could never run (the router answers
    /// `503`).
    ShuttingDown,
}

/// The bounded FIFO feeding the worker pool.
pub(crate) struct Queue {
    state: Mutex<VecDeque<JobSpec>>,
    limit: usize,
    available: Condvar,
}

impl Queue {
    pub(crate) fn new(limit: usize) -> Self {
        Queue { state: Mutex::new(VecDeque::new()), limit, available: Condvar::new() }
    }

    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").len()
    }

    /// Enqueues a job; a queue at its limit rejects (and drops) it.
    ///
    /// The shutdown flag is re-checked **under the queue lock** — the
    /// same lock [`Queue::pop`] holds for its own shutdown check — so a
    /// job accepted here is guaranteed to be observed by a worker: every
    /// worker exit happens in a pop critical section that saw both an
    /// empty queue and the flag, which this section is ordered against.
    pub(crate) fn submit(&self, job: JobSpec, shutdown: &AtomicBool) -> Result<(), SubmitError> {
        let mut q = self.state.lock().expect("queue lock");
        if shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        if q.len() >= self.limit {
            return Err(SubmitError::Full);
        }
        q.push_back(job);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once shutdown is flagged
    /// *and* the queue has drained.
    pub(crate) fn pop(&self, shutdown: &AtomicBool) -> Option<JobSpec> {
        let mut q = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self.available.wait(q).expect("queue lock");
        }
    }

    /// Wakes every blocked worker (used at shutdown). The notification
    /// is issued **while holding the queue mutex**: a worker that has
    /// checked the shutdown flag but not yet entered `wait` still holds
    /// that mutex, so an unlocked `notify_all` could fire inside that
    /// window and be lost — the worker would then sleep forever and
    /// [`crate::Server::run`] would hang in `join`. Taking the lock
    /// first serializes against every such window: either the worker is
    /// already waiting (and is woken), or it has not re-locked yet (and
    /// its next in-lock flag check observes the shutdown).
    pub(crate) fn wake_all(&self) {
        let _guard = self.state.lock().expect("queue lock");
        self.available.notify_all();
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobStatus {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// How a job failed: the message, and whether the failure was a server
/// bug (a panic — the router answers `500`) rather than a flow error on
/// the request itself (`422`).
#[derive(Debug, Clone)]
pub(crate) struct JobFailure {
    pub message: String,
    pub internal: bool,
}

pub(crate) struct JobRecord {
    pub status: JobStatus,
    /// Rendered response body (with trailing newline) once done.
    pub result: Option<String>,
    /// Failure once failed.
    pub error: Option<JobFailure>,
    /// When the job finished (drives age-based expiry).
    finished_at: Option<Instant>,
    /// NDJSON line sink while a streaming client is attached. Dropped at
    /// completion so the streaming connection sees end-of-events.
    stream: Option<Sender<String>>,
}

struct TableInner {
    map: HashMap<u64, JobRecord>,
    /// Insertion order, for bounded eviction of finished records.
    order: VecDeque<u64>,
}

/// All jobs the server has accepted, keyed by numeric id (rendered as
/// `jN` on the wire).
pub(crate) struct JobTable {
    inner: Mutex<TableInner>,
    done: Condvar,
    next: AtomicU64,
    /// Finished records older than this are expired on the next insert
    /// (in addition to the count window).
    expiry: Duration,
    /// Records removed by *age* (exposed in /metrics as
    /// `queue.expired`; count-window evictions are not tallied here).
    expired: AtomicU64,
}

impl JobTable {
    /// A table whose finished records expire after `expiry` (on top of
    /// the fixed count window).
    pub(crate) fn new(expiry: Duration) -> Self {
        JobTable {
            inner: Mutex::new(TableInner { map: HashMap::new(), order: VecDeque::new() }),
            done: Condvar::new(),
            next: AtomicU64::new(1),
            expiry,
            expired: AtomicU64::new(0),
        }
    }

    /// How many finished records have been expired by age.
    pub(crate) fn expired_total(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Registers a new queued job (optionally with a streaming sink) and
    /// returns its id.
    pub(crate) fn create(&self, stream: Option<Sender<String>>) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("job table lock");
        // Evict finished records: first anything older than the expiry
        // age, then the oldest beyond the count window. Queued and
        // running jobs are never evicted (their count is bounded by the
        // queue limit plus the worker count).
        {
            let TableInner { map, order } = &mut *inner;
            let now = Instant::now();
            let before = order.len();
            order.retain(|id| {
                let expired = map.get(id).is_some_and(|r| {
                    r.finished_at.is_some_and(|at| now.duration_since(at) >= self.expiry)
                });
                if expired {
                    map.remove(id);
                }
                !expired
            });
            self.expired.fetch_add((before - order.len()) as u64, Ordering::Relaxed);
            while order.len() >= MAX_FINISHED_JOBS {
                let Some(pos) = order.iter().position(|id| {
                    matches!(
                        map.get(id).map(|r| r.status),
                        Some(JobStatus::Done | JobStatus::Failed) | None
                    )
                }) else {
                    break;
                };
                let evicted = order.remove(pos).expect("position is in range");
                map.remove(&evicted);
            }
        }
        inner.order.push_back(id);
        inner.map.insert(
            id,
            JobRecord {
                status: JobStatus::Queued,
                result: None,
                error: None,
                finished_at: None,
                stream,
            },
        );
        id
    }

    /// Drops a job that was registered but never made it into the queue
    /// (submission rejected).
    pub(crate) fn discard(&self, id: u64) {
        let mut inner = self.inner.lock().expect("job table lock");
        inner.map.remove(&id);
        inner.order.retain(|&j| j != id);
    }

    /// Marks a job running and hands the worker its streaming sink.
    pub(crate) fn mark_running(&self, id: u64) -> Option<Sender<String>> {
        let mut inner = self.inner.lock().expect("job table lock");
        let record = inner.map.get_mut(&id)?;
        record.status = JobStatus::Running;
        record.stream.clone()
    }

    /// Records the outcome, drops the streaming sink (ending any attached
    /// NDJSON response) and wakes synchronous waiters.
    pub(crate) fn complete(&self, id: u64, outcome: Result<String, JobFailure>) {
        let mut inner = self.inner.lock().expect("job table lock");
        if let Some(record) = inner.map.get_mut(&id) {
            match outcome {
                Ok(body) => {
                    record.status = JobStatus::Done;
                    record.result = Some(body);
                }
                Err(failure) => {
                    record.status = JobStatus::Failed;
                    record.error = Some(failure);
                }
            }
            record.finished_at = Some(Instant::now());
            record.stream = None;
        }
        drop(inner);
        self.done.notify_all();
    }

    /// A point-in-time view of a job: status plus result/error when
    /// finished.
    pub(crate) fn status(
        &self,
        id: u64,
    ) -> Option<(JobStatus, Option<String>, Option<JobFailure>)> {
        let inner = self.inner.lock().expect("job table lock");
        inner.map.get(&id).map(|r| (r.status, r.result.clone(), r.error.clone()))
    }

    /// Blocks until the job finishes; returns its outcome.
    pub(crate) fn wait_done(&self, id: u64) -> (JobStatus, Option<String>, Option<JobFailure>) {
        let mut inner = self.inner.lock().expect("job table lock");
        loop {
            match inner.map.get(&id) {
                None => {
                    return (
                        JobStatus::Failed,
                        None,
                        Some(JobFailure { message: "job evicted".to_string(), internal: true }),
                    );
                }
                Some(r) if matches!(r.status, JobStatus::Done | JobStatus::Failed) => {
                    return (r.status, r.result.clone(), r.error.clone());
                }
                Some(_) => inner = self.done.wait(inner).expect("job table lock"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_core::Config;

    fn job(id: u64) -> JobSpec {
        JobSpec {
            id,
            work: Work::Synthesize {
                source: crate::api::WorkSource::Benchmark("half".to_string()),
                config: Config::default(),
            },
            client: "anonymous".to_string(),
            fingerprint: None,
        }
    }

    /// A long enough expiry that nothing ages out mid-test.
    fn table() -> JobTable {
        JobTable::new(Duration::from_secs(3600))
    }

    #[test]
    fn queue_rejects_beyond_limit_and_drains_in_order() {
        let queue = Queue::new(2);
        let shutdown = AtomicBool::new(false);
        assert!(queue.submit(job(1), &shutdown).is_ok());
        assert!(queue.submit(job(2), &shutdown).is_ok());
        assert!(matches!(queue.submit(job(3), &shutdown), Err(SubmitError::Full)));
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.pop(&shutdown).unwrap().id, 1);
        assert_eq!(queue.pop(&shutdown).unwrap().id, 2);
        shutdown.store(true, Ordering::Release);
        assert!(queue.pop(&shutdown).is_none());
        // A submission during shutdown can never be drained: rejected.
        assert!(matches!(queue.submit(job(4), &shutdown), Err(SubmitError::ShuttingDown)));
    }

    #[test]
    fn job_lifecycle_and_waiting() {
        let table = table();
        let id = table.create(None);
        assert_eq!(table.status(id).unwrap().0, JobStatus::Queued);
        assert!(table.mark_running(id).is_none());
        assert_eq!(table.status(id).unwrap().0, JobStatus::Running);
        table.complete(id, Ok("{}\n".to_string()));
        let (status, result, error) = table.wait_done(id);
        assert_eq!(status, JobStatus::Done);
        assert_eq!(result.as_deref(), Some("{}\n"));
        assert!(error.is_none());
        assert!(table.status(9999).is_none());
    }

    #[test]
    fn completion_drops_the_stream_sender() {
        let table = table();
        let (tx, rx) = std::sync::mpsc::channel();
        let id = table.create(Some(tx));
        let worker_tx = table.mark_running(id).expect("sink is attached");
        worker_tx.send("line".to_string()).unwrap();
        drop(worker_tx);
        table.complete(id, Err(JobFailure { message: "boom".to_string(), internal: false }));
        // Both senders are gone: the receiver drains then disconnects.
        assert_eq!(rx.recv().unwrap(), "line");
        assert!(rx.recv().is_err(), "channel must close at completion");
        let (status, _, error) = table.wait_done(id);
        assert_eq!(status, JobStatus::Failed);
        let failure = error.expect("failure recorded");
        assert_eq!(failure.message, "boom");
        assert!(!failure.internal);
    }

    #[test]
    fn finished_jobs_expire_by_age_but_live_jobs_never_do() {
        let table = JobTable::new(Duration::ZERO); // everything finished is instantly stale
        let done = table.create(None);
        let running = table.create(None);
        table.mark_running(running);
        table.complete(done, Ok("{}\n".to_string()));
        assert!(table.status(done).is_some(), "expiry runs on insert, not on read");
        // The next insert sweeps the finished record out by age...
        let fresh = table.create(None);
        assert!(table.status(done).is_none());
        assert_eq!(table.expired_total(), 1);
        // ...but queued and running jobs survive any age.
        assert_eq!(table.status(running).unwrap().0, JobStatus::Running);
        assert_eq!(table.status(fresh).unwrap().0, JobStatus::Queued);
    }
}
