//! The unified `simap` error type: every failure mode of the synthesis
//! pipeline — benchmark lookup, `.g` parsing, Petri-net construction,
//! reachability, Complete State Coding, CSC repair, event insertion and
//! speed-independence verification — as one enum carrying the stage it
//! occurred in plus enough context (signal names, codes, the original
//! conflict list) to act on programmatically.
//!
//! The crate-level error types it unifies ([`McError`], [`InsertionError`],
//! [`CscRepairError`], [`VerifyError`], [`ParseStgError`], [`ReachError`],
//! [`StgError`]) remain the `source()` of the corresponding variants, so
//! `Box<dyn Error>` consumers keep the full chain.

use crate::csc::{CscConflict, CscRepairError};
use crate::insertion::InsertionError;
use crate::mc::McError;
use simap_netlist::VerifyError;
use simap_stg::{ParseStgError, ReachError, StgError};
use std::fmt;

/// The pipeline stage an error belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Validating the run configuration (before any flow work).
    Configure,
    /// Resolving the specification source (benchmark name, `.g` text, STG).
    Load,
    /// Token-game reachability: STG → state graph, plus CSC repair.
    Elaborate,
    /// Monotonous-cover synthesis.
    Covers,
    /// The decomposition/resynthesis loop.
    Decompose,
    /// Standard-C netlist construction.
    Map,
    /// Speed-independence verification.
    Verify,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Configure => "configure",
            Stage::Load => "load",
            Stage::Elaborate => "elaborate",
            Stage::Covers => "covers",
            Stage::Decompose => "decompose",
            Stage::Map => "map",
            Stage::Verify => "verify",
        })
    }
}

/// Unified error of the [`crate::pipeline`] API (re-exported as
/// `simap::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A [`crate::Config`] value failed validation at build time.
    InvalidConfig {
        /// What was wrong with the configuration.
        message: String,
    },
    /// The requested benchmark is not in the embedded Table 1 suite.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
    },
    /// The `.g` source failed to parse.
    Parse(ParseStgError),
    /// The signal transition graph is structurally broken.
    Stg(StgError),
    /// Reachability failed: unbounded place, state explosion or an
    /// inconsistent STG.
    Elaborate(ReachError),
    /// The specification violates Complete State Coding and repair was not
    /// requested: no cover over the existing signals exists.
    CscViolation {
        /// The signal whose cover is ill-defined.
        signal: String,
        /// The shared code of the first conflict.
        code: u64,
        /// Every conflicting state pair of the specification.
        conflicts: Vec<CscConflict>,
    },
    /// CSC repair was requested but no legal state-signal insertion
    /// resolves the conflicts.
    CscRepairFailed {
        /// Why the repair gave up.
        error: CscRepairError,
        /// The conflicts the repair was asked to separate.
        conflicts: Vec<CscConflict>,
    },
    /// A speed-independence-preserving insertion was rejected.
    Insertion(InsertionError),
    /// The mapped circuit was refuted (or could not be checked): the
    /// verifier's verdict, with the signal the offending gate drives when
    /// one is known.
    Verify {
        /// The underlying verifier error.
        error: VerifyError,
    },
}

impl Error {
    /// The pipeline stage this error belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            Error::InvalidConfig { .. } => Stage::Configure,
            Error::UnknownBenchmark { .. } | Error::Parse(_) | Error::Stg(_) => Stage::Load,
            Error::Elaborate(_) | Error::CscRepairFailed { .. } => Stage::Elaborate,
            Error::CscViolation { .. } => Stage::Covers,
            Error::Insertion(_) => Stage::Decompose,
            Error::Verify { .. } => Stage::Verify,
        }
    }

    /// The CSC conflicts attached to this error, when it carries any.
    pub fn csc_conflicts(&self) -> &[CscConflict] {
        match self {
            Error::CscViolation { conflicts, .. } | Error::CscRepairFailed { conflicts, .. } => {
                conflicts
            }
            _ => &[],
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.stage())?;
        match self {
            Error::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            Error::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark `{name}` (see simap::stg::benchmark_names())")
            }
            Error::Parse(e) => write!(f, "cannot parse .g source: {e}"),
            Error::Stg(e) => write!(f, "malformed signal transition graph: {e}"),
            Error::Elaborate(e) => write!(f, "cannot elaborate specification: {e}"),
            Error::CscViolation { signal, code, conflicts } => write!(
                f,
                "CSC violation on signal `{signal}` at code {code:b} ({} conflicting state \
                 pair(s); enable repair_csc to insert state signals)",
                conflicts.len()
            ),
            Error::CscRepairFailed { error, conflicts } => write!(
                f,
                "CSC repair failed with {} conflicting state pair(s) outstanding: {error}",
                conflicts.len()
            ),
            Error::Insertion(e) => write!(f, "signal insertion rejected: {e}"),
            Error::Verify { error } => write!(f, "speed-independence check: {error}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidConfig { .. }
            | Error::UnknownBenchmark { .. }
            | Error::CscViolation { .. } => None,
            Error::Parse(e) => Some(e),
            Error::Stg(e) => Some(e),
            Error::Elaborate(e) => Some(e),
            Error::CscRepairFailed { error, .. } => Some(error),
            Error::Insertion(e) => Some(e),
            Error::Verify { error } => Some(error),
        }
    }
}

impl From<ParseStgError> for Error {
    fn from(e: ParseStgError) -> Self {
        Error::Parse(e)
    }
}

impl From<StgError> for Error {
    fn from(e: StgError) -> Self {
        Error::Stg(e)
    }
}

impl From<ReachError> for Error {
    fn from(e: ReachError) -> Self {
        Error::Elaborate(e)
    }
}

impl From<McError> for Error {
    fn from(e: McError) -> Self {
        match e {
            McError::CscConflict { signal, code } => {
                Error::CscViolation { signal, code, conflicts: Vec::new() }
            }
        }
    }
}

impl From<InsertionError> for Error {
    fn from(e: InsertionError) -> Self {
        Error::Insertion(e)
    }
}

impl From<VerifyError> for Error {
    fn from(error: VerifyError) -> Self {
        Error::Verify { error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn stages_and_display() {
        let e = Error::UnknownBenchmark { name: "nope".into() };
        assert_eq!(e.stage(), Stage::Load);
        assert!(e.to_string().contains("[load] unknown benchmark `nope`"));

        let e = Error::CscViolation { signal: "q".into(), code: 0b101, conflicts: Vec::new() };
        assert_eq!(e.stage(), Stage::Covers);
        assert!(e.to_string().contains("signal `q`"));
        assert!(e.to_string().contains("101"));
    }

    #[test]
    fn sources_chain() {
        let inner = ParseStgError { line: 3, column: 7, message: "bad".into() };
        let e = Error::from(inner.clone());
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
        assert!(Error::UnknownBenchmark { name: "x".into() }.source().is_none());
    }

    #[test]
    fn conflicts_accessor() {
        use crate::csc::CscConflict;
        use simap_sg::StateId;
        let c = CscConflict { a: StateId(0), b: StateId(1), code: 3 };
        let e = Error::CscRepairFailed { error: CscRepairError::Inconsistent, conflicts: vec![c] };
        assert_eq!(e.csc_conflicts(), &[c]);
        assert!(Error::Insertion(InsertionError::ConstantFunction).csc_conflicts().is_empty());
    }
}
