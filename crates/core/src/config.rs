//! The unified run configuration: one validated, builder-style struct
//! absorbing every knob of the synthesis flow.
//!
//! Before this module, tuning a run meant reaching into four places —
//! [`FlowConfig`] (decomposition + verification), [`CscRepairConfig`],
//! [`VerifyConfig`] and loose builder setters like `or_limit` — and
//! invalid values were clamped or ignored mid-flow. A [`Config`] is built
//! once through [`ConfigBuilder`], validated at [`ConfigBuilder::build`],
//! and then shared immutably by [`crate::Engine`], [`crate::Synthesis`]
//! and [`crate::Batch`]:
//!
//! ```
//! use simap_core::Config;
//!
//! let config = Config::builder().literal_limit(3).verify(false).build()?;
//! assert_eq!(config.literal_limit(), 3);
//! assert!(Config::builder().literal_limit(1).build().is_err()); // < 2
//! # Ok::<(), simap_core::Error>(())
//! ```

use crate::csc::CscRepairConfig;
use crate::decompose::{AckMode, DecomposeConfig};
use crate::error::Error;
use crate::flow::FlowConfig;
use simap_netlist::VerifyConfig;
use simap_stg::{ReachConfig, ReachStrategy};

/// A validated, immutable configuration of the whole synthesis flow.
///
/// Construct through [`Config::builder`] (or [`Config::default`] for the
/// paper's 2-input setting). Every value is checked once at build time;
/// the flow itself never clamps or re-validates.
#[derive(Debug, Clone)]
pub struct Config {
    pub(crate) flow: FlowConfig,
    pub(crate) or_limit: Option<usize>,
    pub(crate) csc_repair: CscRepairConfig,
    pub(crate) reach: ReachConfig,
    pub(crate) cache_capacity: Option<usize>,
    pub(crate) synth_jobs: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            flow: FlowConfig::with_limit(2),
            or_limit: None,
            csc_repair: CscRepairConfig::default(),
            reach: ReachConfig::default(),
            cache_capacity: None,
            synth_jobs: 1,
        }
    }
}

impl Config {
    /// Starts a builder from the default (2-input, verifying) setting.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder { config: Config::default() }
    }

    /// Re-opens this configuration as a builder (e.g. to derive a
    /// per-limit variant); [`ConfigBuilder::build`] re-validates.
    pub fn to_builder(&self) -> ConfigBuilder {
        ConfigBuilder { config: self.clone() }
    }

    /// Adopts a classic [`FlowConfig`] wholesale (compatibility seam for
    /// code migrating from the PR 1 per-stage setters). The remaining
    /// knobs (OR-tree limit, CSC-repair budget, reachability limits) keep
    /// their defaults. Not validated: the historical entry points accepted
    /// any [`FlowConfig`].
    pub fn from_flow_config(flow: &FlowConfig) -> Self {
        Config { flow: flow.clone(), ..Config::default() }
    }

    /// Gate complexity target: every cover must fit this many literals.
    pub fn literal_limit(&self) -> usize {
        self.flow.decompose.literal_limit
    }

    /// Fanin bound of the second-level OR trees (`None` = natural fanin).
    pub fn or_limit(&self) -> Option<usize> {
        self.or_limit
    }

    /// Whether the final netlist is verified for speed-independence.
    pub fn verify(&self) -> bool {
        self.flow.verify
    }

    /// Whether CSC violations are repaired by state-signal insertion.
    pub fn repair_csc(&self) -> bool {
        self.flow.repair_csc
    }

    /// Acknowledgment policy of the decomposition loop.
    pub fn ack_mode(&self) -> AckMode {
        self.flow.decompose.ack_mode
    }

    /// Hard cap on signals inserted by the decomposition loop.
    pub fn max_insertions(&self) -> usize {
        self.flow.decompose.max_insertions
    }

    /// The decomposition-loop configuration.
    pub fn decompose_config(&self) -> &DecomposeConfig {
        &self.flow.decompose
    }

    /// The speed-independence verifier's limits.
    pub fn verify_config(&self) -> &VerifyConfig {
        &self.flow.verify_config
    }

    /// The CSC-repair insertion budget.
    pub fn csc_repair_config(&self) -> &CscRepairConfig {
        &self.csc_repair
    }

    /// The STG reachability limits.
    pub fn reach_config(&self) -> &ReachConfig {
        &self.reach
    }

    /// Entry cap of the engine's elaboration cache (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// Worker threads for per-signal synthesis (cover extraction,
    /// decomposition resynthesis, mapping). Like `reach.jobs`, the value
    /// never changes output bytes — results merge in signal-index order —
    /// so it is excluded from the engine's elaboration cache key.
    pub fn synth_jobs(&self) -> usize {
        self.synth_jobs
    }

    /// A stable 64-bit fingerprint of **every** knob in this
    /// configuration, suitable as the configuration component of a
    /// content-addressed cache key (the persistent result cache of
    /// `simap serve` keys finished reports by it, so two serve instances
    /// — or one instance across restarts — share warm results exactly
    /// when their configurations agree).
    ///
    /// The digest is FNV-1a 64 ([`crate::digest`]) over a canonical text
    /// rendering of the knobs, so it is identical across processes and
    /// machines. It is deliberately *conservative*: knobs that do not
    /// change response bytes (reachability jobs, the spill budget under
    /// an in-memory strategy, the elaboration-cache capacity) still
    /// participate, trading a few spurious cache misses for never having
    /// to reason about which knob is observable where. A 64-bit digest
    /// can collide; consumers must verify the full key on use (see
    /// [`crate::digest`]).
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;
        let d = &self.flow.decompose;
        let r = &self.reach;
        let mut canon = String::with_capacity(256);
        let _ = write!(
            canon,
            "config-v1;lit={};or={:?};verify={};vmax={};csc={};cscmax={};ack={};maxins={};\
             maxcand={};div={},{},{},{};filter={};refine={};",
            d.literal_limit,
            self.or_limit,
            self.flow.verify,
            self.flow.verify_config.max_states,
            self.flow.repair_csc,
            self.csc_repair.max_insertions,
            match d.ack_mode {
                crate::decompose::AckMode::Global => "global",
                crate::decompose::AckMode::Local => "local",
            },
            d.max_insertions,
            d.max_candidates_tried,
            d.divisors.max_candidates,
            d.divisors.max_or_subset,
            d.divisors.max_and_subset,
            d.divisors.recursion_depth,
            d.use_progress_filter,
            d.use_boolean_refinement,
        );
        let _ = write!(
            canon,
            "reach={};rmax={};rtok={};rjobs={};rmat={};rbud={};rdir={:?};rshards={};rckevery={};\
             rckdir={:?};rresume={:?};cachecap={:?};sjobs={}",
            r.strategy,
            r.max_states,
            r.max_tokens,
            r.jobs,
            r.materialize_limit,
            r.memory_budget,
            r.spill_dir,
            r.shards,
            r.checkpoint_every,
            r.checkpoint_dir,
            r.resume,
            self.cache_capacity,
            self.synth_jobs,
        );
        crate::digest::fnv1a64(canon.as_bytes())
    }
}

/// Builder for [`Config`]; see the [module docs](self) for an example.
///
/// Setters record values without checking; [`ConfigBuilder::build`]
/// validates everything at once and reports the first problem as
/// [`Error::InvalidConfig`].
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Gate complexity target: every cover must fit `limit` literals
    /// (default 2; must be at least 2).
    pub fn literal_limit(mut self, limit: usize) -> Self {
        self.config.flow.decompose.literal_limit = limit;
        self
    }

    /// Splits second-level OR gates into balanced trees of at most
    /// `limit` inputs (default: natural fanin; must be at least 2).
    pub fn or_limit(mut self, limit: usize) -> Self {
        self.config.or_limit = Some(limit);
        self
    }

    /// Repairs Complete State Coding violations by state-signal insertion
    /// before cover synthesis (default off: a CSC violation is then an
    /// error, as in the paper's setting).
    pub fn repair_csc(mut self, on: bool) -> Self {
        self.config.flow.repair_csc = on;
        self
    }

    /// The insertion budget of the CSC repair.
    pub fn csc_repair_config(mut self, config: CscRepairConfig) -> Self {
        self.config.csc_repair = config;
        self
    }

    /// Acknowledgment policy of the decomposition loop (default:
    /// [`AckMode::Global`], the paper's method).
    pub fn ack_mode(mut self, mode: AckMode) -> Self {
        self.config.flow.decompose.ack_mode = mode;
        self
    }

    /// Hard cap on signals inserted by the decomposition loop.
    pub fn max_insertions(mut self, n: usize) -> Self {
        self.config.flow.decompose.max_insertions = n;
        self
    }

    /// Whether the flow verifies the final netlist (default on).
    pub fn verify(mut self, on: bool) -> Self {
        self.config.flow.verify = on;
        self
    }

    /// State cap for the speed-independence verifier.
    pub fn verify_config(mut self, config: VerifyConfig) -> Self {
        self.config.flow.verify_config = config;
        self
    }

    /// State cap of the verifier (shorthand for [`Self::verify_config`]).
    pub fn verify_max_states(mut self, n: usize) -> Self {
        self.config.flow.verify_config.max_states = n;
        self
    }

    /// Adopts the full decomposition-loop configuration (divisor tuning,
    /// candidate counts, ablation switches).
    pub fn decompose_config(mut self, config: DecomposeConfig) -> Self {
        self.config.flow.decompose = config;
        self
    }

    /// STG reachability limits (state cap, token bound).
    pub fn reach_config(mut self, config: ReachConfig) -> Self {
        self.config.reach = config;
        self
    }

    /// State cap of reachability (shorthand for [`Self::reach_config`]).
    pub fn reach_max_states(mut self, n: usize) -> Self {
        self.config.reach.max_states = n;
        self
    }

    /// Reachability engine: the packed-state default, the explicit
    /// differential oracle, or the symbolic BDD engine (shorthand for
    /// [`Self::reach_config`]).
    pub fn reach_strategy(mut self, strategy: ReachStrategy) -> Self {
        self.config.reach.strategy = strategy;
        self
    }

    /// Largest symbolically counted state space the symbolic strategy
    /// materializes into an explicit state graph (shorthand for
    /// [`Self::reach_config`]; ignored by the enumerative strategies).
    pub fn reach_materialize_limit(mut self, n: usize) -> Self {
        self.config.reach.materialize_limit = n;
        self
    }

    /// Worker threads for reachability frontier expansion (packed
    /// strategy only; results are byte-identical whatever the value).
    pub fn reach_jobs(mut self, jobs: usize) -> Self {
        self.config.reach.jobs = jobs;
        self
    }

    /// Resident-memory budget in bytes of the spill strategy's working
    /// set (shorthand for [`Self::reach_config`]; ignored by the
    /// in-memory strategies; must be at least 1).
    pub fn reach_memory_budget(mut self, bytes: usize) -> Self {
        self.config.reach.memory_budget = bytes;
        self
    }

    /// Directory the spill strategy keeps its run-scoped scratch files
    /// in (`None`: the system temp dir; shorthand for
    /// [`Self::reach_config`]).
    pub fn reach_spill_dir(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.config.reach.spill_dir = dir;
        self
    }

    /// Hash-partition count of the spill strategy's intern table and
    /// marking arena (shorthand for [`Self::reach_config`]; must be at
    /// least 1).
    pub fn reach_shards(mut self, shards: usize) -> Self {
        self.config.reach.shards = shards;
        self
    }

    /// Commits a durable checkpoint of the spill exploration every
    /// `levels` BFS levels (0 = off, the default; shorthand for
    /// [`Self::reach_config`]; requires [`Self::reach_checkpoint_dir`];
    /// ignored by the in-memory strategies).
    pub fn reach_checkpoint_every(mut self, levels: usize) -> Self {
        self.config.reach.checkpoint_every = levels;
        self
    }

    /// Directory the spill strategy commits its durable checkpoints to
    /// (shorthand for [`Self::reach_config`]; unlike
    /// [`Self::reach_spill_dir`] scratch, these artifacts survive the
    /// process and are consumed by [`Self::reach_resume`]).
    pub fn reach_checkpoint_dir(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.config.reach.checkpoint_dir = dir;
        self
    }

    /// Resumes a spill exploration from the last committed checkpoint in
    /// `dir` instead of starting at the initial marking (shorthand for
    /// [`Self::reach_config`]; the checkpoint's net and configuration
    /// digests must match or elaboration refuses).
    pub fn reach_resume(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.config.reach.resume = dir;
        self
    }

    /// Bounds the engine's elaboration cache to `n` entries with
    /// least-recently-used eviction (default: unbounded; must be at
    /// least 1).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.config.cache_capacity = Some(n);
        self
    }

    /// Worker threads for per-signal synthesis across the Covers →
    /// Decomposed → Mapped stages (default 1 = sequential; must be at
    /// least 1; reports are byte-identical whatever the value).
    pub fn synth_jobs(mut self, jobs: usize) -> Self {
        self.config.synth_jobs = jobs;
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] naming the first offending knob: literal
    /// limit below 2, OR-tree limit below 2, zero candidate budget, or a
    /// zero state cap in reachability / verification.
    pub fn build(self) -> Result<Config, Error> {
        let c = &self.config;
        let fail = |what: &str| Err(Error::InvalidConfig { message: what.to_string() });
        if c.flow.decompose.literal_limit < 2 {
            return fail("literal_limit must be at least 2 (a 1-literal gate is a wire)");
        }
        if c.or_limit.is_some_and(|l| l < 2) {
            return fail("or_limit must be at least 2");
        }
        if c.flow.decompose.max_candidates_tried == 0 {
            return fail("max_candidates_tried must be at least 1");
        }
        if c.flow.verify_config.max_states == 0 {
            return fail("verify max_states must be at least 1");
        }
        if c.reach.max_states == 0 {
            return fail("reachability max_states must be at least 1");
        }
        if c.reach.max_tokens == 0 {
            return fail("reachability max_tokens must be at least 1");
        }
        if c.reach.materialize_limit == 0 {
            return fail("reachability materialize_limit must be at least 1");
        }
        if c.reach.memory_budget == 0 {
            return fail("reachability memory_budget must be at least 1 byte");
        }
        if c.reach.shards == 0 {
            return fail("reachability shards must be at least 1");
        }
        if c.reach.checkpoint_every > 0 && c.reach.checkpoint_dir.is_none() {
            return fail("reach_checkpoint_every requires reach_checkpoint_dir");
        }
        if c.cache_capacity == Some(0) {
            return fail("cache_capacity must be at least 1 (omit it for an unbounded cache)");
        }
        if c.synth_jobs == 0 {
            return fail("synth_jobs must be at least 1 (1 = sequential)");
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Stage;

    #[test]
    fn default_is_buildable_and_two_input() {
        let config = Config::builder().build().unwrap();
        assert_eq!(config.literal_limit(), 2);
        assert!(config.verify());
        assert!(!config.repair_csc());
        assert_eq!(config.or_limit(), None);
    }

    #[test]
    fn setters_round_trip() {
        let config = Config::builder()
            .literal_limit(4)
            .or_limit(3)
            .repair_csc(true)
            .verify(false)
            .ack_mode(AckMode::Local)
            .max_insertions(5)
            .verify_max_states(1234)
            .reach_max_states(5678)
            .reach_strategy(ReachStrategy::Explicit)
            .reach_jobs(4)
            .reach_materialize_limit(4321)
            .reach_memory_budget(9 * 1024 * 1024)
            .reach_spill_dir(Some(std::path::PathBuf::from("/tmp/simap-test")))
            .reach_shards(3)
            .reach_checkpoint_every(16)
            .reach_checkpoint_dir(Some(std::path::PathBuf::from("/tmp/simap-ckpt")))
            .reach_resume(Some(std::path::PathBuf::from("/tmp/simap-ckpt")))
            .cache_capacity(7)
            .synth_jobs(6)
            .build()
            .unwrap();
        assert_eq!(config.literal_limit(), 4);
        assert_eq!(config.or_limit(), Some(3));
        assert!(config.repair_csc());
        assert!(!config.verify());
        assert_eq!(config.ack_mode(), AckMode::Local);
        assert_eq!(config.max_insertions(), 5);
        assert_eq!(config.verify_config().max_states, 1234);
        assert_eq!(config.reach_config().max_states, 5678);
        assert_eq!(config.reach_config().strategy, ReachStrategy::Explicit);
        assert_eq!(config.reach_config().jobs, 4);
        assert_eq!(config.reach_config().materialize_limit, 4321);
        assert_eq!(config.reach_config().memory_budget, 9 * 1024 * 1024);
        assert_eq!(
            config.reach_config().spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/simap-test"))
        );
        assert_eq!(config.reach_config().shards, 3);
        assert_eq!(config.reach_config().checkpoint_every, 16);
        assert_eq!(
            config.reach_config().checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/simap-ckpt"))
        );
        assert_eq!(
            config.reach_config().resume.as_deref(),
            Some(std::path::Path::new("/tmp/simap-ckpt"))
        );
        assert_eq!(config.cache_capacity(), Some(7));
        assert_eq!(config.synth_jobs(), 6);
    }

    #[test]
    fn invalid_knobs_are_rejected_at_build() {
        for builder in [
            Config::builder().literal_limit(1),
            Config::builder().literal_limit(0),
            Config::builder().or_limit(1),
            Config::builder().verify_max_states(0),
            Config::builder().reach_max_states(0),
            Config::builder().reach_materialize_limit(0),
            Config::builder().reach_memory_budget(0),
            Config::builder().reach_shards(0),
            Config::builder().reach_checkpoint_every(4),
            Config::builder().cache_capacity(0),
            Config::builder().synth_jobs(0),
        ] {
            let err = builder.build().unwrap_err();
            assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
            assert_eq!(err.stage(), Stage::Configure);
        }
    }

    #[test]
    fn to_builder_re_validates() {
        let config = Config::builder().literal_limit(3).build().unwrap();
        let derived = config.to_builder().literal_limit(2).build().unwrap();
        assert_eq!(derived.literal_limit(), 2);
        assert_eq!(config.literal_limit(), 3, "the original is untouched");
        assert!(config.to_builder().literal_limit(1).build().is_err());
    }

    #[test]
    fn digest_is_stable_and_knob_sensitive() {
        let base = Config::default();
        assert_eq!(base.digest(), Config::default().digest(), "same knobs, same digest");
        let mut seen = vec![base.digest()];
        for variant in [
            Config::builder().literal_limit(3).build().unwrap(),
            Config::builder().verify(false).build().unwrap(),
            Config::builder().repair_csc(true).build().unwrap(),
            Config::builder().or_limit(2).build().unwrap(),
            Config::builder().reach_strategy(ReachStrategy::Symbolic).build().unwrap(),
            Config::builder().reach_max_states(9999).build().unwrap(),
            Config::builder().reach_jobs(4).build().unwrap(),
            Config::builder()
                .reach_checkpoint_every(8)
                .reach_checkpoint_dir(Some(std::path::PathBuf::from("/tmp/simap-ckpt")))
                .build()
                .unwrap(),
            Config::builder().cache_capacity(3).build().unwrap(),
            Config::builder().synth_jobs(4).build().unwrap(),
        ] {
            let digest = variant.digest();
            assert!(!seen.contains(&digest), "digest collision for {variant:?}");
            seen.push(digest);
        }
    }

    #[test]
    fn from_flow_config_preserves_flow_knobs() {
        let mut flow = FlowConfig::with_limit(3);
        flow.repair_csc = true;
        let config = Config::from_flow_config(&flow);
        assert_eq!(config.literal_limit(), 3);
        assert!(config.repair_csc());
    }
}
