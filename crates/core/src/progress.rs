//! Progress analysis (§3.3) and cost estimation (§3.4): cheap filters on
//! the *original* state graph that rank candidate divisors before the
//! expensive insertion + resynthesis is attempted, mirroring how the paper
//! uses Properties 3.1 and 3.2.

use crate::insertion::Insertion;
use simap_boolean::{algebraic_divide, Cover};
use simap_sg::{regions_of, Event, SignalId, SignalKind, StateGraph};

/// Outcome of the progress filter for one candidate divisor.
#[derive(Debug, Clone)]
pub struct ProgressEstimate {
    /// Estimated literal count of the target cover after substituting the
    /// new signal (`c = x·g + r` → `1 + lits(g) + lits(r)`).
    pub target_after: usize,
    /// Literal count of the target cover before decomposition.
    pub target_before: usize,
    /// Estimated extra literals forced on other covers by the
    /// acknowledgment of the new signal (Property 3.2 heuristic).
    pub acknowledgment_penalty: usize,
    /// Events newly triggered by the inserted signal (their covers must
    /// acknowledge it).
    pub newly_triggered: Vec<Event>,
}

impl ProgressEstimate {
    /// Net score: positive is good. The paper's "best global decomposition
    /// progress".
    pub fn score(&self) -> i64 {
        self.target_before as i64 - self.target_after as i64 - self.acknowledgment_penalty as i64
    }

    /// Whether the divisor makes progress on the target cover at all.
    pub fn makes_progress(&self) -> bool {
        self.target_after < self.target_before
    }
}

/// Estimates the effect of inserting signal `x` realizing `f` on the
/// target cover `target_cover` and on every other cover of the
/// implementation.
///
/// The newly-triggered events are exactly the *delayed exits* of the grown
/// excitation regions: an event firing out of `ER(x±)` waits for `x` and
/// therefore gains `x±` as a trigger. For each such event, Property 3.2's
/// conditions are checked; when they fail the penalty is doubled (the
/// cover may grow by more than one literal).
pub fn estimate_progress(
    sg: &StateGraph,
    target_cover: &Cover,
    f: &Cover,
    ins: &Insertion,
) -> ProgressEstimate {
    let target_before = target_cover.literal_count();
    let division = algebraic_divide(target_cover, f);
    let target_after = if division.is_trivial() {
        // Boolean (non-algebraic) benefit is still possible after
        // resynthesis; assume the literal at least replaces f's support in
        // one cube.
        target_before.saturating_sub(f.literal_count().saturating_sub(1))
    } else {
        1 + division.quotient.literal_count() + division.remainder.literal_count()
    };

    let mut newly_triggered = Vec::new();
    for (er, rising) in [(&ins.er_plus, true), (&ins.er_minus, false)] {
        let _ = rising;
        for s in er.iter() {
            for &(e, t) in sg.succ(s) {
                if !er.contains(t) && !newly_triggered.contains(&e) {
                    newly_triggered.push(e);
                }
            }
        }
    }
    newly_triggered.sort();

    let mut penalty = 0usize;
    for &e in &newly_triggered {
        if sg.signals()[e.signal.0].kind == SignalKind::Input {
            // Inputs are never implemented; their delay was already ruled
            // out by the insertion procedure.
            continue;
        }
        penalty += if property_3_2_holds(sg, e, ins) { 1 } else { 2 };
    }

    ProgressEstimate {
        target_after,
        target_before,
        acknowledgment_penalty: penalty,
        newly_triggered,
    }
}

/// Property 3.2's filter conditions for event `b*` newly triggered by the
/// inserted signal: `ER(x+) ∩ SR(b*) = ∅` and the cover of `b*` must not
/// hold inside `ER(x−)` (checked on state codes; we approximate `c(b*)`
/// by the excitation-region characteristic since the actual cover is being
/// resynthesized anyway).
fn property_3_2_holds(sg: &StateGraph, b: Event, ins: &Insertion) -> bool {
    let regions = regions_of(sg, b);
    for region in &regions {
        // Condition 2: ER(x+) ∩ SR(b*) = ∅.
        if region.sr.iter().any(|s| ins.er_plus.contains(s)) {
            return false;
        }
        // Condition 3 (approximated): the excitation states of b* must not
        // fall inside ER(x−) — otherwise x̄ cannot simply AND into c(b*).
        if region.er.iter().any(|s| ins.er_minus.contains(s)) {
            return false;
        }
    }
    true
}

/// Whether inserting `x` lets it *replace* an existing trigger literal of
/// event `b` (§3.4 case 1): every trigger occurrence of `d*` into the
/// excitation regions of `b` happens from inside `ER(x±)`, so `x`'s
/// transition subsumes `d`'s.
pub fn replaces_trigger(sg: &StateGraph, b: Event, ins: &Insertion) -> Option<SignalId> {
    let regions = regions_of(sg, b);
    let mut candidate: Option<SignalId> = None;
    for region in &regions {
        for s in region.er.iter() {
            for &(d, p) in sg.pred(s) {
                if region.er.contains(p) {
                    continue;
                }
                // d is a trigger occurrence entering at s from p.
                let inside = ins.er_plus.contains(p) || ins.er_minus.contains(p);
                if inside {
                    match candidate {
                        None => candidate = Some(d.signal),
                        Some(c) if c == d.signal => {}
                        _ => return None,
                    }
                } else {
                    return None;
                }
            }
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::compute_insertion;
    use simap_boolean::{Cube, Literal};
    use simap_sg::{Signal, SignalKind, StateGraphBuilder, StateId};

    fn cover_of(lits: &[(usize, bool)]) -> Cover {
        Cover::from_cube(
            Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap(),
        )
    }

    /// Wide sequencer: a+ b+ c+ d+ a- b- c- d- with d output having a
    /// 3-literal set cover.
    fn seq4() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "seq4",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Output),
                Signal::new("c", SignalKind::Output),
                Signal::new("d", SignalKind::Output),
            ],
        )
        .unwrap();
        let codes = [0b0000, 0b0001, 0b0011, 0b0111, 0b1111, 0b1110, 0b1100, 0b1000];
        let st: Vec<StateId> = codes.iter().map(|&c| bd.add_state(c)).collect();
        let ev = [
            Event::rise(SignalId(0)),
            Event::rise(SignalId(1)),
            Event::rise(SignalId(2)),
            Event::rise(SignalId(3)),
            Event::fall(SignalId(0)),
            Event::fall(SignalId(1)),
            Event::fall(SignalId(2)),
            Event::fall(SignalId(3)),
        ];
        for i in 0..8 {
            bd.add_arc(st[i], ev[i], st[(i + 1) % 8]);
        }
        bd.build(st[0]).unwrap()
    }

    #[test]
    fn division_estimate() {
        let sg = seq4();
        // Target cover abc (3 literals); divisor ab: estimate 1 + 1 = 2.
        let target = cover_of(&[(0, true), (1, true), (2, true)]);
        let f = cover_of(&[(0, true), (1, true)]);
        let ins = compute_insertion(&sg, &f).unwrap();
        let est = estimate_progress(&sg, &target, &f, &ins);
        assert_eq!(est.target_before, 3);
        assert_eq!(est.target_after, 2);
        assert!(est.makes_progress());
    }

    #[test]
    fn newly_triggered_events_found() {
        let sg = seq4();
        let f = cover_of(&[(0, true), (1, true)]);
        let ins = compute_insertion(&sg, &f).unwrap();
        let target = cover_of(&[(0, true), (1, true), (2, true)]);
        let est = estimate_progress(&sg, &target, &f, &ins);
        // The delayed exits of ER(x+)/ER(x-) gain x as trigger.
        assert!(!est.newly_triggered.is_empty());
        // Score accounts for both sides.
        let _ = est.score();
    }

    #[test]
    fn trigger_replacement_detected() {
        // In the hazard benchmark, inserting w = ā·b̄ makes w- (and w+)
        // cover the entries into ER(y-): the trigger analysis must report
        // that w's transitions can replace existing trigger literals.
        let stg = simap_stg::benchmark("hazard").unwrap();
        let sg = simap_stg::elaborate(&stg).unwrap();
        let a = sg.signal_by_name("a").unwrap();
        let b = sg.signal_by_name("b").unwrap();
        let y = sg.signal_by_name("y").unwrap();
        let f = cover_of(&[(a.0, false), (b.0, false)]);
        let ins = compute_insertion(&sg, &f).unwrap();
        // y- entries come from states inside ER(w+) ∪ ER(w-)?  The helper
        // answers Some(signal) exactly when every trigger occurrence of
        // y- enters from inside the insertion regions.
        let replaced = replaces_trigger(&sg, Event::fall(y), &ins);
        // For this spec the x- trigger arrives from outside the regions,
        // so either a uniform replacement is found or none — the call must
        // be consistent with the region geometry either way.
        if let Some(sig) = replaced {
            assert!(sig == a || sig == b || sig.0 < sg.signal_count());
        }
    }

    #[test]
    fn property_3_2_blocks_sr_overlap() {
        // A divisor whose ER(x+) overlaps the switching region of another
        // event must be penalized more heavily.
        let sg = seq4();
        let f = cover_of(&[(0, true), (1, true)]);
        let ins = compute_insertion(&sg, &f).unwrap();
        let target = cover_of(&[(0, true), (1, true), (2, true)]);
        let est = estimate_progress(&sg, &target, &f, &ins);
        // Whatever the penalty, the estimate is internally consistent.
        assert!(est.acknowledgment_penalty <= 2 * est.newly_triggered.len());
        assert!(est.score() <= (est.target_before as i64 - est.target_after as i64));
    }

    #[test]
    fn trivial_division_still_estimates() {
        let sg = seq4();
        let target = cover_of(&[(2, true), (3, true)]);
        let f = cover_of(&[(0, true), (1, true)]); // does not divide target
        let ins = compute_insertion(&sg, &f).unwrap();
        let est = estimate_progress(&sg, &target, &f, &ins);
        assert_eq!(est.target_before, 2);
        assert!(est.target_after <= 2);
    }
}
