//! Monotonous-cover synthesis (§2.2): derives, for every implementable
//! signal, either a *complete cover* (combinational implementation, Fig.
//! 2b/c) or per-excitation-region set/reset covers for the standard-C
//! architecture (Fig. 2a).

use simap_boolean::{Cover, MinimizeProblem};
use simap_sg::{regions_of, Event, Region, SignalId, StateGraph, StateId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A cover for one group of excitation regions of an event.
#[derive(Debug, Clone)]
pub struct RegionCover {
    /// The covered event (`a+` or `a-`).
    pub event: Event,
    /// Indices of the excitation regions this cover serves (usually one;
    /// several when shared codes force a merged cover).
    pub region_indices: Vec<usize>,
    /// The monotonous cover function over signal variables.
    pub cover: Cover,
    /// Gate complexity: `min(literals(F), literals(F̄))` (§4 model).
    pub complexity: usize,
}

/// Implementation body of one signal.
#[derive(Debug, Clone)]
pub enum SignalBody {
    /// The cover is *complete*: set and reset networks are complements, the
    /// C element degenerates to a wire and the signal is one combinational
    /// gate (which may feed back on itself for state-holding functions).
    Combinational {
        /// Next-state function of the signal.
        cover: Cover,
        /// `min(literals(F), literals(F̄))`.
        complexity: usize,
    },
    /// Standard-C: first-level covers per excitation region feeding the
    /// set/reset inputs of a C element through OR gates.
    StandardC {
        /// Covers of the rising excitation regions (set network).
        set: Vec<RegionCover>,
        /// Covers of the falling excitation regions (reset network).
        reset: Vec<RegionCover>,
    },
}

/// Implementation of one signal.
#[derive(Debug, Clone)]
pub struct SignalImpl {
    /// The implemented signal.
    pub signal: SignalId,
    /// Its body.
    pub body: SignalBody,
}

impl SignalImpl {
    /// All first-level cover gates of this signal.
    pub fn covers(&self) -> Vec<&RegionCover> {
        match &self.body {
            SignalBody::Combinational { .. } => Vec::new(),
            SignalBody::StandardC { set, reset } => set.iter().chain(reset.iter()).collect(),
        }
    }

    /// The most complex gate of this signal (literals, §4 model).
    pub fn max_complexity(&self) -> usize {
        match &self.body {
            SignalBody::Combinational { complexity, .. } => *complexity,
            SignalBody::StandardC { set, reset } => {
                set.iter().chain(reset.iter()).map(|c| c.complexity).max().unwrap_or(0)
            }
        }
    }

    /// Total cubes across this signal's first-level covers (the single
    /// next-state cover for combinational signals, set plus reset region
    /// covers for standard-C ones).
    pub fn cube_count(&self) -> usize {
        match &self.body {
            SignalBody::Combinational { cover, .. } => cover.cube_count(),
            SignalBody::StandardC { set, reset } => {
                set.iter().chain(reset.iter()).map(|c| c.cover.cube_count()).sum()
            }
        }
    }

    /// Total literals across this signal's first-level covers.
    pub fn literal_count(&self) -> usize {
        match &self.body {
            SignalBody::Combinational { cover, .. } => cover.literal_count(),
            SignalBody::StandardC { set, reset } => {
                set.iter().chain(reset.iter()).map(|c| c.cover.literal_count()).sum()
            }
        }
    }
}

/// A monotonous-cover implementation of a whole specification.
#[derive(Debug, Clone)]
pub struct McImpl {
    /// Per-signal implementations, in signal-id order over implementable
    /// signals.
    pub signals: Vec<SignalImpl>,
}

impl McImpl {
    /// Histogram of gate complexities: `hist[n]` = number of gates needing
    /// exactly `n` literals.
    pub fn gate_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        let mut bump = |n: usize| {
            if hist.len() <= n {
                hist.resize(n + 1, 0);
            }
            hist[n] += 1;
        };
        for s in &self.signals {
            match &s.body {
                SignalBody::Combinational { complexity, .. } => bump(*complexity),
                SignalBody::StandardC { set, reset } => {
                    for c in set.iter().chain(reset.iter()) {
                        bump(c.complexity);
                    }
                }
            }
        }
        hist
    }

    /// The most complex gate over the whole implementation.
    pub fn max_complexity(&self) -> usize {
        self.signals.iter().map(SignalImpl::max_complexity).max().unwrap_or(0)
    }

    /// All (signal, cover) gates exceeding `limit` literals, most complex
    /// first.
    pub fn gates_over(&self, limit: usize) -> Vec<(SignalId, Event, Cover, usize)> {
        let mut out = Vec::new();
        for s in &self.signals {
            match &s.body {
                SignalBody::Combinational { cover, complexity } => {
                    if *complexity > limit {
                        out.push((s.signal, Event::rise(s.signal), cover.clone(), *complexity));
                    }
                }
                SignalBody::StandardC { set, reset } => {
                    for c in set.iter().chain(reset.iter()) {
                        if c.complexity > limit {
                            out.push((s.signal, c.event, c.cover.clone(), c.complexity));
                        }
                    }
                }
            }
        }
        out.sort_by_key(|&(_, _, _, c)| std::cmp::Reverse(c));
        out
    }

    /// The implementation of a given signal.
    pub fn signal_impl(&self, signal: SignalId) -> Option<&SignalImpl> {
        self.signals.iter().find(|s| s.signal == signal)
    }
}

/// Errors during monotonous-cover synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// Two states with the same code require different values of a cover:
    /// a Complete State Coding conflict.
    CscConflict {
        /// The signal whose cover conflicts.
        signal: String,
        /// The shared code.
        code: u64,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::CscConflict { signal, code } => {
                write!(f, "CSC conflict on signal `{signal}` at code {code:b}")
            }
        }
    }
}

impl std::error::Error for McError {}

/// Synthesizes monotonous covers for every implementable signal.
///
/// # Errors
/// Returns [`McError::CscConflict`] when the specification lacks CSC.
pub fn synthesize_mc(sg: &StateGraph) -> Result<McImpl, McError> {
    synthesize_mc_jobs(sg, 1)
}

/// Like [`synthesize_mc`], fanning the per-signal work across `jobs`
/// worker threads. Each signal's synthesis is independent, and results
/// merge in signal-index order, so the returned implementation — and any
/// error — is byte-identical to the sequential run.
///
/// # Errors
/// Returns [`McError::CscConflict`] when the specification lacks CSC;
/// with several conflicting signals, the same (first-in-signal-order)
/// conflict the sequential run reports.
pub fn synthesize_mc_jobs(sg: &StateGraph, jobs: usize) -> Result<McImpl, McError> {
    let targets = sg.implementable_signals();
    if jobs <= 1 || targets.len() < 2 {
        let mut signals = Vec::with_capacity(targets.len());
        for signal in targets {
            signals.push(synthesize_signal(sg, signal)?);
        }
        return Ok(McImpl { signals });
    }
    let results = run_parallel(&targets, jobs, |&signal| synthesize_signal(sg, signal));
    let mut signals = Vec::with_capacity(results.len());
    for result in results {
        signals.push(result?);
    }
    Ok(McImpl { signals })
}

/// Deterministic fan-out shared by the per-signal synthesis paths: an
/// atomic cursor hands `items` to `jobs` scoped workers, every result
/// lands in its input-index slot, and the merged vector is returned in
/// input order — so callers observe the exact sequential outcome
/// regardless of completion order. With `jobs <= 1` (or one item) the
/// work runs inline on the calling thread. The worker count is clamped
/// to the machine's available parallelism: since the merge already makes
/// results independent of thread count, oversubscribing a small host
/// would only add scheduling overhead, never change output.
pub(crate) fn run_parallel<I, T, F>(items: &[I], jobs: usize, work: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(usize::MAX);
    let jobs = jobs.min(items.len()).min(cores);
    if jobs <= 1 {
        return items.iter().map(work).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = work(&items[i]);
                *slots[i].lock().expect("slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot poisoned").expect("worker filled every slot"))
        .collect()
}

/// Synthesizes the implementation of one signal.
///
/// # Errors
/// Returns [`McError::CscConflict`] when the signal's next-state function
/// is ill-defined on some shared code.
pub fn synthesize_signal(sg: &StateGraph, signal: SignalId) -> Result<SignalImpl, McError> {
    let name = sg.signals()[signal.0].name.clone();
    let nvars = sg.signal_count();

    // Next-state partition of the reachable codes.
    let mut on: Vec<u64> = Vec::new();
    let mut off: Vec<u64> = Vec::new();
    for s in sg.states() {
        let excited_rise = sg.enabled(s, Event::rise(signal));
        let excited_fall = sg.enabled(s, Event::fall(signal));
        let v = sg.value(s, signal);
        if excited_rise || (v && !excited_fall) {
            on.push(sg.code(s));
        } else {
            off.push(sg.code(s));
        }
    }

    // CSC sanity: the full on/off split must be well-defined.
    {
        let off_set: HashSet<u64> = off.iter().copied().collect();
        if let Some(&code) = on.iter().find(|c| off_set.contains(c)) {
            return Err(McError::CscConflict { signal: name, code });
        }
    }

    // Combinational candidate: project out the signal's own variable; if
    // the projected on/off sets are disjoint the next-state function does
    // not depend on the signal itself and one combinational gate suffices
    // (complete cover, Fig. 2b/c).
    let mask = !(1u64 << signal.0);
    let on_proj: Vec<u64> = on.iter().map(|c| c & mask).collect();
    let off_proj: Vec<u64> = off.iter().map(|c| c & mask).collect();
    let combinational = MinimizeProblem::new(nvars, on_proj, off_proj).ok().map(|problem| {
        let cover = problem.minimize();
        let complexity = cover.literal_count().min(problem.minimize_complement().literal_count());
        SignalBody::Combinational { cover, complexity }
    });

    // A signal with no transitions at all is a constant: combinational by
    // construction.
    let has_transitions = sg
        .states()
        .any(|s| sg.enabled(s, Event::rise(signal)) || sg.enabled(s, Event::fall(signal)));
    if !has_transitions {
        let body = combinational.expect("constant signal has a trivial cover");
        return Ok(SignalImpl { signal, body });
    }

    // Standard-C candidate: per-region set/reset covers plus a C element.
    let set = region_covers(sg, signal, Event::rise(signal), &name)?;
    let reset = region_covers(sg, signal, Event::fall(signal), &name)?;
    let standard_c = SignalBody::StandardC { set, reset };

    // Pick the cheaper body: first by the most complex gate (the quantity
    // the mapper must fit into the library), then by total area (a C
    // element ≈ 3 literals, §4). Ties prefer the combinational form, whose
    // C element degenerates to a wire.
    let body = match combinational {
        None => standard_c,
        Some(comb) => {
            let key = |b: &SignalBody| -> (usize, usize) {
                match b {
                    SignalBody::Combinational { complexity, .. } => (*complexity, *complexity),
                    SignalBody::StandardC { set, reset } => {
                        let max =
                            set.iter().chain(reset.iter()).map(|c| c.complexity).max().unwrap_or(0);
                        let area: usize =
                            set.iter().chain(reset.iter()).map(|c| c.complexity).sum::<usize>() + 3;
                        (max, area)
                    }
                }
            };
            if key(&comb) <= key(&standard_c) {
                comb
            } else {
                standard_c
            }
        }
    };
    Ok(SignalImpl { signal, body })
}

/// Synthesizes the covers for all excitation regions of `event`, merging
/// regions whose state codes overlap.
fn region_covers(
    sg: &StateGraph,
    _signal: SignalId,
    event: Event,
    name: &str,
) -> Result<Vec<RegionCover>, McError> {
    let regions = regions_of(sg, event);
    if regions.is_empty() {
        return Ok(Vec::new());
    }
    let nvars = sg.signal_count();
    let all_states: Vec<StateId> = sg.states().collect();

    // Start with each region in its own group; merge on code conflicts.
    let mut groups: Vec<Vec<usize>> = (0..regions.len()).map(|i| vec![i]).collect();
    'merge: loop {
        for (gi, group) in groups.iter().enumerate() {
            let (on_codes, dc_codes) = group_on_dc(sg, &regions, group);
            let member_states = group_states(sg, &regions, group);
            for &s in &all_states {
                if member_states.contains(&s) {
                    continue;
                }
                let code = sg.code(s);
                if on_codes.contains(&code) && !dc_codes.contains(&code) {
                    // A state outside the group shares a code with the
                    // group's ER. If it belongs to another region of the
                    // same event, merge the groups; otherwise it is a CSC
                    // conflict.
                    if let Some(other) = (0..groups.len()).find(|&gj| {
                        gj != gi
                            && groups[gj]
                                .iter()
                                .any(|&rj| regions[rj].er.contains(s) || regions[rj].qr.contains(s))
                    }) {
                        let merged = groups.remove(other.max(gi));
                        let keep = other.min(gi);
                        groups[keep].extend(merged);
                        continue 'merge;
                    }
                    return Err(McError::CscConflict { signal: name.to_string(), code });
                }
            }
        }
        break;
    }

    let mut covers = Vec::new();
    for group in &groups {
        let cover = synthesize_group_cover(sg, &regions, group, nvars, name)?;
        let complexity = cover_complexity(sg, &regions, group, &cover, nvars);
        covers.push(RegionCover { event, region_indices: group.clone(), cover, complexity });
    }
    Ok(covers)
}

fn group_on_dc(
    sg: &StateGraph,
    regions: &[Region],
    group: &[usize],
) -> (HashSet<u64>, HashSet<u64>) {
    let mut on = HashSet::new();
    let mut dc = HashSet::new();
    for &ri in group {
        for s in regions[ri].er.iter() {
            on.insert(sg.code(s));
        }
        for s in regions[ri].qr.iter() {
            dc.insert(sg.code(s));
        }
    }
    (on, dc)
}

fn group_states(sg: &StateGraph, regions: &[Region], group: &[usize]) -> HashSet<StateId> {
    let _ = sg;
    let mut states = HashSet::new();
    for &ri in group {
        states.extend(regions[ri].er.iter());
        states.extend(regions[ri].qr.iter());
    }
    states
}

/// Minimizes a group cover and repairs monotonicity (condition 3): the
/// cover may fall at most once inside the quiescent region and may never
/// rise there.
fn synthesize_group_cover(
    sg: &StateGraph,
    regions: &[Region],
    group: &[usize],
    nvars: usize,
    name: &str,
) -> Result<Cover, McError> {
    let (on_codes, dc_codes) = group_on_dc(sg, regions, group);
    let member_states = group_states(sg, regions, group);
    let mut off_codes: HashSet<u64> = HashSet::new();
    for s in sg.states() {
        if !member_states.contains(&s) {
            let code = sg.code(s);
            if !on_codes.contains(&code) && !dc_codes.contains(&code) {
                off_codes.insert(code);
            }
        }
    }

    let in_er = |s: StateId| group.iter().any(|&ri| regions[ri].er.contains(s));
    let in_qr = |s: StateId| group.iter().any(|&ri| regions[ri].qr.contains(s));

    let mut extra_off: HashSet<u64> = HashSet::new();
    for _ in 0..16 {
        let on: Vec<u64> = on_codes.iter().copied().collect();
        let off: Vec<u64> = off_codes.iter().chain(extra_off.iter()).copied().collect();
        let problem = match MinimizeProblem::new(nvars, on, off) {
            Ok(p) => p,
            Err(e) => return Err(McError::CscConflict { signal: name.to_string(), code: e.code }),
        };
        let cover = problem.minimize();
        // Monotonicity check: no rising edge of the cover into the QR.
        let mut violations = Vec::new();
        for &s in &member_states {
            for &(_, t) in sg.succ(s) {
                if in_qr(t) && !cover.eval(sg.code(s)) && cover.eval(sg.code(t)) {
                    violations.push(sg.code(t));
                }
            }
        }
        let _ = in_er;
        if violations.is_empty() {
            return Ok(cover);
        }
        // Repair: once the cover has fallen it must stay 0 — force the
        // offending QR codes into the OFF set and re-minimize.
        let before = extra_off.len();
        extra_off.extend(violations);
        if extra_off.len() == before {
            break;
        }
    }

    // Fallback: the exact characteristic function of ER ∪ QR (covers the
    // whole region, changing zero times inside it — trivially monotonous).
    let on: Vec<u64> = on_codes.union(&dc_codes).copied().collect();
    let off: Vec<u64> = {
        let onset: HashSet<u64> = on.iter().copied().collect();
        sg.reachable_codes().into_iter().filter(|c| !onset.contains(c)).collect()
    };
    match MinimizeProblem::new(nvars, on, off) {
        Ok(p) => Ok(p.minimize()),
        Err(e) => Err(McError::CscConflict { signal: name.to_string(), code: e.code }),
    }
}

/// Gate complexity of a synthesized cover: `min(lits(F), lits(F̄))` with
/// the complement minimized against the same reachable universe.
fn cover_complexity(
    sg: &StateGraph,
    regions: &[Region],
    group: &[usize],
    cover: &Cover,
    nvars: usize,
) -> usize {
    let _ = (regions, group);
    let universe = sg.reachable_codes();
    let on: Vec<u64> = universe.iter().copied().filter(|&c| cover.eval(c)).collect();
    let off: Vec<u64> = universe.iter().copied().filter(|&c| !cover.eval(c)).collect();
    match MinimizeProblem::new(nvars, on, off) {
        Ok(p) => cover.literal_count().min(p.minimize_complement().literal_count()),
        Err(_) => cover.literal_count(),
    }
}

/// Validates that an implementation's covers satisfy the MC conditions on
/// the given state graph (used by tests and by the decomposition loop's
/// sanity checks). Returns human-readable complaints.
pub fn validate_mc(sg: &StateGraph, mc: &McImpl) -> Vec<String> {
    let mut complaints = Vec::new();
    for simpl in &mc.signals {
        let signal = simpl.signal;
        match &simpl.body {
            SignalBody::Combinational { cover, .. } => {
                for s in sg.states() {
                    let excited_rise = sg.enabled(s, Event::rise(signal));
                    let excited_fall = sg.enabled(s, Event::fall(signal));
                    let v = sg.value(s, signal);
                    let want = excited_rise || (v && !excited_fall);
                    if cover.eval(sg.code(s)) != want {
                        complaints.push(format!(
                            "signal {} combinational cover wrong at state {}",
                            sg.signals()[signal.0].name,
                            sg.state_label(s)
                        ));
                    }
                }
            }
            SignalBody::StandardC { set, reset } => {
                for (event, covers) in [(Event::rise(signal), set), (Event::fall(signal), reset)] {
                    let regions = regions_of(sg, event);
                    check_region_covers(sg, &regions, covers, &mut complaints);
                }
            }
        }
    }
    complaints
}

fn check_region_covers(
    sg: &StateGraph,
    regions: &[Region],
    covers: &[RegionCover],
    complaints: &mut Vec<String>,
) {
    let mut covered: HashMap<usize, bool> = HashMap::new();
    for rc in covers {
        for &ri in &rc.region_indices {
            covered.insert(ri, true);
            let region = &regions[ri];
            // Condition 1: covers all ER states.
            for s in region.er.iter() {
                if !rc.cover.eval(sg.code(s)) {
                    complaints.push(format!(
                        "cover of {} misses ER state {}",
                        sg.event_name(rc.event),
                        sg.state_label(s)
                    ));
                }
            }
        }
        // Condition 2 (strengthened to the [8] form): 0 outside ER ∪ QR of
        // the covered group.
        let member: HashSet<StateId> = rc
            .region_indices
            .iter()
            .flat_map(|&ri| regions[ri].er.iter().chain(regions[ri].qr.iter()))
            .collect();
        let member_codes: HashSet<u64> = member.iter().map(|&s| sg.code(s)).collect();
        for s in sg.states() {
            if !member.contains(&s)
                && !member_codes.contains(&sg.code(s))
                && rc.cover.eval(sg.code(s))
            {
                complaints.push(format!(
                    "cover of {} is 1 outside its region at {}",
                    sg.event_name(rc.event),
                    sg.state_label(s)
                ));
            }
        }
        // Condition 3: no rise inside the QR.
        for &s in &member {
            for &(_, t) in sg.succ(s) {
                let t_in_qr = rc.region_indices.iter().any(|&ri| regions[ri].qr.contains(t));
                if t_in_qr && !rc.cover.eval(sg.code(s)) && rc.cover.eval(sg.code(t)) {
                    complaints.push(format!(
                        "cover of {} rises inside QR at {}",
                        sg.event_name(rc.event),
                        sg.state_label(t)
                    ));
                }
            }
        }
    }
    for (ri, _) in regions.iter().enumerate() {
        if !covered.contains_key(&ri) {
            complaints.push(format!("region {ri} has no cover"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_sg::{Signal, SignalKind, StateGraphBuilder};

    /// 2-input C element spec.
    fn celement_sg() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "c2",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Input),
                Signal::new("c", SignalKind::Output),
            ],
        )
        .unwrap();
        let s00 = bd.add_state(0b000);
        let s01 = bd.add_state(0b001);
        let s10 = bd.add_state(0b010);
        let s11 = bd.add_state(0b011);
        let t11 = bd.add_state(0b111);
        let t01 = bd.add_state(0b101);
        let t10 = bd.add_state(0b110);
        let t00 = bd.add_state(0b100);
        let (a, b, c) = (SignalId(0), SignalId(1), SignalId(2));
        bd.add_arc(s00, Event::rise(a), s01);
        bd.add_arc(s00, Event::rise(b), s10);
        bd.add_arc(s01, Event::rise(b), s11);
        bd.add_arc(s10, Event::rise(a), s11);
        bd.add_arc(s11, Event::rise(c), t11);
        bd.add_arc(t11, Event::fall(a), t10);
        bd.add_arc(t11, Event::fall(b), t01);
        bd.add_arc(t10, Event::fall(b), t00);
        bd.add_arc(t01, Event::fall(a), t00);
        bd.add_arc(t00, Event::fall(c), s00);
        bd.build(s00).unwrap()
    }

    /// Simple handshake: b is a buffer of a.
    fn handshake_sg() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "hs",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [bd.add_state(0b00), bd.add_state(0b01), bd.add_state(0b11), bd.add_state(0b10)];
        bd.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        bd.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        bd.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        bd.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        bd.build(s[0]).unwrap()
    }

    #[test]
    fn buffer_is_combinational() {
        let sg = handshake_sg();
        let mc = synthesize_mc(&sg).unwrap();
        assert_eq!(mc.signals.len(), 1);
        match &mc.signals[0].body {
            SignalBody::Combinational { cover, complexity } => {
                assert_eq!(cover.literal_count(), 1, "b = a");
                assert_eq!(*complexity, 1);
            }
            other => panic!("expected combinational, got {other:?}"),
        }
        assert!(validate_mc(&sg, &mc).is_empty());
    }

    #[test]
    fn celement_needs_standard_c() {
        let sg = celement_sg();
        let mc = synthesize_mc(&sg).unwrap();
        match &mc.signals[0].body {
            SignalBody::StandardC { set, reset } => {
                assert_eq!(set.len(), 1);
                assert_eq!(reset.len(), 1);
                // set = a·b, reset = ā·b̄.
                assert_eq!(set[0].cover.literal_count(), 2);
                assert_eq!(reset[0].cover.literal_count(), 2);
                assert_eq!(set[0].complexity, 2);
            }
            other => panic!("expected standard-C, got {other:?}"),
        }
        let complaints = validate_mc(&sg, &mc);
        assert!(complaints.is_empty(), "{complaints:?}");
    }

    #[test]
    fn histogram_and_gates_over() {
        let sg = celement_sg();
        let mc = synthesize_mc(&sg).unwrap();
        let hist = mc.gate_histogram();
        assert_eq!(hist.get(2), Some(&2));
        assert_eq!(mc.max_complexity(), 2);
        assert!(mc.gates_over(2).is_empty());
        let over1 = mc.gates_over(1);
        assert_eq!(over1.len(), 2);
    }

    #[test]
    fn csc_conflict_detected() {
        // Two states with the same code, different next value of b.
        let mut bd = StateGraphBuilder::new(
            "csc",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        let s2 = bd.add_state(0b00); // same code as s0, but b+ enabled here
        let s3 = bd.add_state(0b10);
        let (a, b) = (SignalId(0), SignalId(1));
        bd.add_arc(s0, Event::rise(a), s1);
        bd.add_arc(s1, Event::fall(a), s2);
        bd.add_arc(s2, Event::rise(b), s3);
        bd.add_arc(s3, Event::fall(b), s0);
        let sg = bd.build(s0).unwrap();
        let err = synthesize_mc(&sg).unwrap_err();
        assert!(matches!(err, McError::CscConflict { .. }));
    }

    #[test]
    fn dff_reset_cover_uses_feedback() {
        // d+ c+ q+ c- d- c+/2 q- c-/2 ring (codes d=bit0,c=bit1,q=bit2).
        let mut bd = StateGraphBuilder::new(
            "dff",
            vec![
                Signal::new("d", SignalKind::Input),
                Signal::new("c", SignalKind::Input),
                Signal::new("q", SignalKind::Output),
            ],
        )
        .unwrap();
        let codes = [0b000, 0b001, 0b011, 0b111, 0b101, 0b100, 0b110, 0b010];
        let st: Vec<StateId> = codes.iter().map(|&c| bd.add_state(c)).collect();
        let (d, c, q) = (SignalId(0), SignalId(1), SignalId(2));
        bd.add_arc(st[0], Event::rise(d), st[1]);
        bd.add_arc(st[1], Event::rise(c), st[2]);
        bd.add_arc(st[2], Event::rise(q), st[3]);
        bd.add_arc(st[3], Event::fall(c), st[4]);
        bd.add_arc(st[4], Event::fall(d), st[5]);
        bd.add_arc(st[5], Event::rise(c), st[6]);
        bd.add_arc(st[6], Event::fall(q), st[7]);
        bd.add_arc(st[7], Event::fall(c), st[0]);
        let sg = bd.build(st[0]).unwrap();
        let mc = synthesize_mc(&sg).unwrap();
        let complaints = validate_mc(&sg, &mc);
        assert!(complaints.is_empty(), "{complaints:?}");
        match &mc.signals[0].body {
            SignalBody::StandardC { set, reset } => {
                // set(q) = d·c (2 literals); reset(q) = d̄·c·(q) (3 literals
                // incl. feedback) or equivalent.
                assert_eq!(set[0].cover.literal_count(), 2);
                assert!(reset[0].cover.literal_count() >= 2);
            }
            other => panic!("expected standard-C, got {other:?}"),
        }
    }

    #[test]
    fn shared_codes_merge_region_covers() {
        // The shared-output dispatcher has two excitation regions of x+
        // whose quiescent states share codes: the synthesizer must merge
        // them into one cover (or prove each separable) and validate.
        let stg = simap_stg::patterns::shared_output_choice(2);
        let sg = simap_stg::elaborate(&stg).unwrap();
        let mc = synthesize_mc(&sg).unwrap();
        let complaints = validate_mc(&sg, &mc);
        assert!(complaints.is_empty(), "{complaints:?}");
    }

    #[test]
    fn all_small_benchmarks_validate() {
        for name in ["hazard", "half", "chu133", "chu150", "dff", "vbe5b", "nowick", "seqmix"] {
            let stg = simap_stg::benchmark(name).unwrap();
            let sg = simap_stg::elaborate(&stg).unwrap();
            let mc = synthesize_mc(&sg).unwrap_or_else(|e| panic!("{name}: {e}"));
            let complaints = validate_mc(&sg, &mc);
            assert!(complaints.is_empty(), "{name}: {complaints:?}");
        }
    }

    #[test]
    fn cheaper_body_wins_for_majority_like_signals() {
        // For the 2-input C element the standard-C body (2+2 literals + C)
        // beats the combinational majority (5-6 literals); the synthesizer
        // must pick standard-C.
        let sg = celement_sg();
        let mc = synthesize_mc(&sg).unwrap();
        assert!(matches!(mc.signals[0].body, SignalBody::StandardC { .. }));
        assert_eq!(mc.max_complexity(), 2);
    }

    #[test]
    fn gates_over_sorts_most_complex_first() {
        let stg = simap_stg::benchmark("mr1").unwrap();
        let sg = simap_stg::elaborate(&stg).unwrap();
        let mc = synthesize_mc(&sg).unwrap();
        let over = mc.gates_over(2);
        assert!(!over.is_empty());
        for w in over.windows(2) {
            assert!(w[0].3 >= w[1].3, "not sorted by complexity");
        }
    }

    #[test]
    fn constant_signal_is_constant_cover() {
        // Output z never switches (no z events at all).
        let mut bd = StateGraphBuilder::new(
            "const",
            vec![Signal::new("a", SignalKind::Input), Signal::new("z", SignalKind::Output)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        bd.add_arc(s0, Event::rise(SignalId(0)), s1);
        bd.add_arc(s1, Event::fall(SignalId(0)), s0);
        let sg = bd.build(s0).unwrap();
        let mc = synthesize_mc(&sg).unwrap();
        match &mc.signals[0].body {
            SignalBody::Combinational { cover, .. } => assert!(cover.is_zero()),
            other => panic!("expected combinational constant, got {other:?}"),
        }
    }
}
