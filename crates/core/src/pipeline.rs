//! The staged synthesis pipeline: one coherent entry point for the whole
//! DATE'97 flow, exposed as a typestate-flavored builder.
//!
//! ```text
//! Synthesis ──elaborate()──▶ Elaborated ──covers()──▶ Covers
//!     │                                                  │
//!     │                                            decompose()
//!   run()                                                ▼
//!     │                  Verified ◀──verify()── Mapped ◀──map()── Decomposed
//!     ▼
//! FlowReport
//! ```
//!
//! Every intermediate artifact is a first-class value with accessors — the
//! elaborated state graph, the monotonous-cover implementation, the step
//! trace, the standard-C [`Circuit`], the §4 costs — so callers can
//! inspect, cache or fan out at any stage. The one-shot [`Synthesis::run`]
//! reproduces the classic [`FlowReport`] end to end, and
//! [`Batch::over_benchmarks`] drives many specifications through the same
//! configuration.
//!
//! ```
//! use simap_core::pipeline::Synthesis;
//! let report = Synthesis::from_benchmark("hazard").literal_limit(2).run()?;
//! assert!(report.inserted.is_some());
//! assert_eq!(report.verified, Some(true));
//! # Ok::<(), simap_core::Error>(())
//! ```

use crate::csc::{csc_conflicts, repair_csc, CscRepairConfig};
use crate::decompose::{decompose_with, AckMode, DecomposeResult, DecomposeStep};
use crate::error::{Error, Stage};
use crate::flow::{build_circuit_with_or_limit, non_si_cost, si_cost, FlowConfig, FlowReport};
use crate::mc::{synthesize_mc, McImpl};
use crate::observer::{FlowObserver, NullObserver};
use crate::report::BatchRow;
use simap_netlist::{verify_speed_independence, Circuit, Cost, VerifyConfig, VerifyError};
use simap_sg::StateGraph;
use simap_stg::{benchmark, benchmark_names, elaborate, parse_g, Stg};

/// Where a synthesis run gets its specification from.
enum Source {
    /// A named circuit of the embedded Table 1 suite.
    Benchmark(String),
    /// `.g` source text, parsed at elaboration time.
    Text(String),
    /// An already-built signal transition graph.
    Stg(Box<Stg>),
    /// An already-elaborated state graph (skips reachability).
    StateGraph(Box<StateGraph>),
}

/// All knobs of a run, shared by [`Synthesis`] and [`Batch`].
#[derive(Debug, Clone)]
struct Options {
    flow: FlowConfig,
    or_limit: Option<usize>,
    csc_repair: CscRepairConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            flow: FlowConfig::with_limit(2),
            or_limit: None,
            csc_repair: CscRepairConfig::default(),
        }
    }
}

/// Pipeline state threaded through the typed stages.
struct Ctx {
    opts: Options,
    observer: Box<dyn FlowObserver>,
}

impl Ctx {
    fn start(&mut self, stage: Stage, spec: &str) {
        self.observer.on_stage_start(stage, spec);
    }

    fn end(&mut self, stage: Stage) {
        self.observer.on_stage_end(stage);
    }
}

/// The synthesis builder: configure a specification source and the flow
/// options, then either step through the typed stages (starting with
/// [`Synthesis::elaborate`]) or run the whole flow with
/// [`Synthesis::run`].
pub struct Synthesis {
    source: Source,
    ctx: Ctx,
}

// The stage artifacts carry a `Box<dyn FlowObserver>`, so Debug is
// implemented by hand over the data that identifies the stage.
macro_rules! stage_debug {
    ($ty:ident { $($field:ident : $expr:expr),* $(,)? }) => {
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($ty))
                    $(.field(stringify!($field), &$expr(self)))*
                    .finish_non_exhaustive()
            }
        }
    };
}

stage_debug!(Synthesis {
    source: |s: &Synthesis| match &s.source {
        Source::Benchmark(name) => format!("benchmark:{name}"),
        Source::Text(_) => "g-source".to_string(),
        Source::Stg(stg) => format!("stg:{}", stg.name()),
        Source::StateGraph(sg) => format!("sg:{}", sg.name()),
    },
});
stage_debug!(Elaborated {
    name: |s: &Elaborated| s.sg.name().to_string(),
    states: |s: &Elaborated| s.sg.state_count(),
    csc_repaired: |s: &Elaborated| s.repaired.clone(),
});
stage_debug!(Covers {
    name: |s: &Covers| s.sg.name().to_string(),
    max_complexity: |s: &Covers| s.mc.max_complexity(),
});
stage_debug!(Decomposed {
    name: |s: &Decomposed| s.outcome.sg.name().to_string(),
    implementable: |s: &Decomposed| s.outcome.implementable,
    inserted: |s: &Decomposed| s.outcome.inserted.clone(),
});
stage_debug!(Mapped {
    name: |s: &Mapped| s.outcome.sg.name().to_string(),
    si_cost: |s: &Mapped| s.si,
    gates: |s: &Mapped| s.circuit.gates().len(),
});
stage_debug!(Verified {
    name: |s: &Verified| s.report.name.clone(),
    verdict: |s: &Verified| s.report.verified,
});

impl Synthesis {
    fn new(source: Source) -> Self {
        Synthesis {
            source,
            ctx: Ctx { opts: Options::default(), observer: Box::new(NullObserver) },
        }
    }

    /// Synthesizes a circuit of the embedded Table 1 suite. The name is
    /// resolved lazily: an unknown name surfaces as
    /// [`Error::UnknownBenchmark`] from [`Synthesis::elaborate`] /
    /// [`Synthesis::run`].
    pub fn from_benchmark(name: impl Into<String>) -> Self {
        Synthesis::new(Source::Benchmark(name.into()))
    }

    /// Synthesizes a specification given as `.g` source text.
    pub fn from_g_source(source: impl Into<String>) -> Self {
        Synthesis::new(Source::Text(source.into()))
    }

    /// Synthesizes an already-built signal transition graph.
    pub fn from_stg(stg: Stg) -> Self {
        Synthesis::new(Source::Stg(Box::new(stg)))
    }

    /// Synthesizes an already-elaborated state graph (reachability is
    /// skipped).
    pub fn from_state_graph(sg: StateGraph) -> Self {
        Synthesis::new(Source::StateGraph(Box::new(sg)))
    }

    /// Gate complexity target: every cover must fit `limit` literals
    /// (default 2).
    pub fn literal_limit(mut self, limit: usize) -> Self {
        self.ctx.opts.flow.decompose.literal_limit = limit;
        self
    }

    /// Splits second-level OR gates into balanced trees of at most
    /// `limit` inputs (default: natural fanin; the split is free with
    /// respect to speed-independence).
    pub fn or_limit(mut self, limit: usize) -> Self {
        self.ctx.opts.or_limit = Some(limit);
        self
    }

    /// Repairs Complete State Coding violations by state-signal insertion
    /// before cover synthesis (default off: a CSC violation is then an
    /// error, as in the paper's setting).
    pub fn repair_csc(mut self, on: bool) -> Self {
        self.ctx.opts.flow.repair_csc = on;
        self
    }

    /// The insertion budget of the CSC repair.
    pub fn csc_repair_config(mut self, config: CscRepairConfig) -> Self {
        self.ctx.opts.csc_repair = config;
        self
    }

    /// Acknowledgment policy of the decomposition loop (default:
    /// [`AckMode::Global`], the paper's method).
    pub fn ack_mode(mut self, mode: AckMode) -> Self {
        self.ctx.opts.flow.decompose.ack_mode = mode;
        self
    }

    /// Hard cap on signals inserted by the decomposition loop.
    pub fn max_insertions(mut self, n: usize) -> Self {
        self.ctx.opts.flow.decompose.max_insertions = n;
        self
    }

    /// Whether [`Synthesis::run`] verifies the final netlist (default on;
    /// the staged [`Mapped::verify`] is unaffected).
    pub fn verify(mut self, on: bool) -> Self {
        self.ctx.opts.flow.verify = on;
        self
    }

    /// State cap for the speed-independence verifier.
    pub fn verify_config(mut self, config: VerifyConfig) -> Self {
        self.ctx.opts.flow.verify_config = config;
        self
    }

    /// Adopts a classic [`FlowConfig`] wholesale (compatibility seam for
    /// code migrating from [`crate::flow::run_flow`]).
    pub fn flow_config(mut self, config: &FlowConfig) -> Self {
        self.ctx.opts.flow = config.clone();
        self
    }

    /// Attaches a progress observer receiving a callback per stage,
    /// decomposition step, CSC insertion and verdict.
    pub fn observer(mut self, observer: impl FlowObserver + 'static) -> Self {
        self.ctx.observer = Box::new(observer);
        self
    }

    /// Resolves the source and elaborates it into a state graph,
    /// repairing CSC first when [`Synthesis::repair_csc`] is on.
    ///
    /// # Errors
    /// [`Error::UnknownBenchmark`], [`Error::Parse`], [`Error::Elaborate`]
    /// on load/reachability problems; [`Error::CscRepairFailed`] (with the
    /// original conflict list) when repair was requested but impossible.
    pub fn elaborate(mut self) -> Result<Elaborated, Error> {
        let sg = match self.source {
            Source::Benchmark(ref name) => {
                self.ctx.start(Stage::Load, name);
                let stg = benchmark(name)
                    .ok_or_else(|| Error::UnknownBenchmark { name: name.clone() })?;
                self.ctx.end(Stage::Load);
                self.ctx.start(Stage::Elaborate, name);
                elaborate(&stg)?
            }
            Source::Text(ref text) => {
                self.ctx.start(Stage::Load, "<g-source>");
                let stg = parse_g(text)?;
                self.ctx.end(Stage::Load);
                self.ctx.start(Stage::Elaborate, stg.name());
                elaborate(&stg)?
            }
            Source::Stg(ref stg) => {
                self.ctx.start(Stage::Elaborate, stg.name());
                elaborate(stg)?
            }
            Source::StateGraph(sg) => {
                self.ctx.start(Stage::Elaborate, sg.name());
                *sg
            }
        };

        let mut repaired = Vec::new();
        let sg = {
            let conflicts = csc_conflicts(&sg);
            if conflicts.is_empty() {
                sg
            } else {
                self.ctx.observer.on_csc_conflicts(&conflicts);
                if self.ctx.opts.flow.repair_csc {
                    match repair_csc(&sg, &self.ctx.opts.csc_repair) {
                        Ok((fixed, inserted)) => {
                            for signal in &inserted {
                                self.ctx.observer.on_csc_repair(signal);
                            }
                            repaired = inserted;
                            fixed
                        }
                        Err(error) => {
                            return Err(Error::CscRepairFailed { error, conflicts });
                        }
                    }
                } else {
                    // Repair not requested: the violation surfaces as
                    // `Error::CscViolation` when covers are synthesized,
                    // but the elaborated graph itself is still usable.
                    sg
                }
            }
        };
        self.ctx.end(Stage::Elaborate);
        Ok(Elaborated { ctx: self.ctx, sg, repaired })
    }

    /// Runs the whole flow — elaborate, covers, decompose, map and (unless
    /// disabled) verify — and returns the classic [`FlowReport`].
    ///
    /// Matching the historical `run_flow` contract, a verification
    /// *refutation* is reported as `verified == Some(false)` rather than
    /// an error; use the staged [`Mapped::verify`] for a typed verdict.
    ///
    /// # Errors
    /// Everything [`Synthesis::elaborate`] and [`Elaborated::covers`] can
    /// raise.
    pub fn run(self) -> Result<FlowReport, Error> {
        let verify = self.ctx.opts.flow.verify;
        let mapped = self.elaborate()?.covers()?.decompose()?.map();
        let verified = if verify { mapped.verify_compat() } else { mapped.skip_verify() };
        Ok(verified.into_report())
    }
}

/// Stage artifact: the elaborated (and possibly CSC-repaired) state
/// graph.
pub struct Elaborated {
    ctx: Ctx,
    sg: StateGraph,
    repaired: Vec<String>,
}

impl Elaborated {
    /// The elaborated state graph.
    pub fn state_graph(&self) -> &StateGraph {
        &self.sg
    }

    /// Names of the state signals inserted by CSC repair (empty when the
    /// specification had CSC or repair was off).
    pub fn csc_repaired(&self) -> &[String] {
        &self.repaired
    }

    /// The §2.1 property report of the elaborated graph.
    pub fn properties(&self) -> simap_sg::PropertyReport {
        simap_sg::check_all(&self.sg)
    }

    /// Synthesizes monotonous covers for every implementable signal.
    ///
    /// # Errors
    /// [`Error::CscViolation`] — with the full conflict list — when the
    /// specification lacks Complete State Coding.
    pub fn covers(mut self) -> Result<Covers, Error> {
        self.ctx.start(Stage::Covers, self.sg.name());
        let mc = match synthesize_mc(&self.sg) {
            Ok(mc) => mc,
            Err(crate::mc::McError::CscConflict { signal, code }) => {
                return Err(Error::CscViolation {
                    signal,
                    code,
                    conflicts: csc_conflicts(&self.sg),
                });
            }
        };
        let initial_histogram = mc.gate_histogram();
        let limit = self.ctx.opts.flow.decompose.literal_limit.max(2);
        let non_si = non_si_cost(&mc, limit);
        self.ctx.end(Stage::Covers);
        Ok(Covers {
            ctx: self.ctx,
            sg: self.sg,
            repaired: self.repaired,
            mc,
            initial_histogram,
            non_si,
        })
    }
}

/// Stage artifact: the initial monotonous-cover implementation.
pub struct Covers {
    ctx: Ctx,
    sg: StateGraph,
    repaired: Vec<String>,
    mc: McImpl,
    initial_histogram: Vec<usize>,
    non_si: Cost,
}

impl Covers {
    /// The state graph the covers were synthesized for.
    pub fn state_graph(&self) -> &StateGraph {
        &self.sg
    }

    /// The initial monotonous-cover implementation.
    pub fn mc(&self) -> &McImpl {
        &self.mc
    }

    /// Gate-complexity histogram of the initial implementation.
    pub fn initial_histogram(&self) -> &[usize] {
        &self.initial_histogram
    }

    /// Non-SI `tech_decomp` baseline cost of the initial implementation.
    pub fn non_si_cost(&self) -> Cost {
        self.non_si
    }

    /// Runs the §3 decomposition/resynthesis loop, firing
    /// [`FlowObserver::on_decompose_step`] per committed insertion.
    ///
    /// # Errors
    /// [`Error::CscViolation`] if a resynthesis step hits an ill-defined
    /// cover (cannot happen for specifications that passed
    /// [`Elaborated::covers`]).
    pub fn decompose(mut self) -> Result<Decomposed, Error> {
        self.ctx.start(Stage::Decompose, self.sg.name());
        let outcome =
            decompose_with(&self.sg, &self.ctx.opts.flow.decompose, self.ctx.observer.as_mut())
                .map_err(|crate::mc::McError::CscConflict { signal, code }| {
                    Error::CscViolation { signal, code, conflicts: csc_conflicts(&self.sg) }
                })?;
        self.ctx.end(Stage::Decompose);
        Ok(Decomposed {
            ctx: self.ctx,
            repaired: self.repaired,
            outcome,
            initial_histogram: self.initial_histogram,
            non_si: self.non_si,
        })
    }
}

/// Stage artifact: the decomposition outcome (final state graph, final
/// covers, step trace).
pub struct Decomposed {
    ctx: Ctx,
    repaired: Vec<String>,
    outcome: DecomposeResult,
    initial_histogram: Vec<usize>,
    non_si: Cost,
}

impl Decomposed {
    /// The final state graph (original plus inserted signals).
    pub fn state_graph(&self) -> &StateGraph {
        &self.outcome.sg
    }

    /// The final monotonous-cover implementation.
    pub fn mc(&self) -> &McImpl {
        &self.outcome.mc
    }

    /// Whether every gate fits the literal limit.
    pub fn implementable(&self) -> bool {
        self.outcome.implementable
    }

    /// Names of the signals the loop inserted, in order.
    pub fn inserted(&self) -> &[String] {
        &self.outcome.inserted
    }

    /// The committed decomposition steps.
    pub fn steps(&self) -> &[DecomposeStep] {
        &self.outcome.steps
    }

    /// Builds the standard-C netlist (honoring the configured
    /// [`Synthesis::or_limit`]) and computes the §4 costs.
    pub fn map(mut self) -> Mapped {
        self.ctx.start(Stage::Map, self.outcome.sg.name());
        let circuit =
            build_circuit_with_or_limit(&self.outcome.sg, &self.outcome.mc, self.ctx.opts.or_limit);
        let limit = self.ctx.opts.flow.decompose.literal_limit.max(2);
        let si = si_cost(&self.outcome.mc, limit);
        self.ctx.end(Stage::Map);
        Mapped {
            ctx: self.ctx,
            repaired: self.repaired,
            outcome: self.outcome,
            initial_histogram: self.initial_histogram,
            non_si: self.non_si,
            si,
            circuit,
        }
    }
}

/// Stage artifact: the mapped standard-C netlist with cost accounting.
pub struct Mapped {
    ctx: Ctx,
    repaired: Vec<String>,
    outcome: DecomposeResult,
    initial_histogram: Vec<usize>,
    non_si: Cost,
    si: Cost,
    circuit: Circuit,
}

impl Mapped {
    /// The mapped netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// SI decomposition cost (§4 model).
    pub fn si_cost(&self) -> Cost {
        self.si
    }

    /// Non-SI `tech_decomp` baseline cost of the initial implementation.
    pub fn non_si_cost(&self) -> Cost {
        self.non_si
    }

    /// The final state graph.
    pub fn state_graph(&self) -> &StateGraph {
        &self.outcome.sg
    }

    /// The final monotonous-cover implementation.
    pub fn mc(&self) -> &McImpl {
        &self.outcome.mc
    }

    /// The shared verifier invocation: `Ok(Some(true))` verified,
    /// `Ok(None)` inconclusive (not implementable or state cap hit),
    /// `Err` refuted or structurally unverifiable.
    fn run_verifier(&self) -> Result<Option<bool>, VerifyError> {
        if !self.outcome.implementable {
            return Ok(None);
        }
        match verify_speed_independence(
            &self.circuit,
            &self.outcome.sg,
            &self.ctx.opts.flow.verify_config,
        ) {
            Ok(_) => Ok(Some(true)),
            Err(VerifyError::TooManyStates { .. }) => Ok(None),
            Err(error) => Err(error),
        }
    }

    /// Verifies the final netlist against the final state graph.
    ///
    /// Implementations that exceeded the literal limit
    /// (`implementable == false`) and explorations that exceed the
    /// verifier's state cap yield an *inconclusive* verdict (`None`), not
    /// an error.
    ///
    /// # Errors
    /// [`Error::Verify`] when the circuit is refuted (hazard, unexpected
    /// output, deadlock) or structurally unverifiable (missing net,
    /// unstable initial state).
    pub fn verify(mut self) -> Result<Verified, Error> {
        self.ctx.start(Stage::Verify, self.outcome.sg.name());
        let outcome = self.run_verifier();
        let verdict = match &outcome {
            Ok(v) => *v,
            Err(_) => Some(false),
        };
        self.ctx.observer.on_verdict(verdict);
        self.ctx.end(Stage::Verify);
        match outcome {
            Ok(v) => Ok(self.into_verified(v)),
            Err(error) => Err(Error::Verify { error }),
        }
    }

    /// Skips verification, producing a report with `verified == None`.
    pub fn skip_verify(mut self) -> Verified {
        self.ctx.start(Stage::Verify, self.outcome.sg.name());
        self.ctx.observer.on_verdict(None);
        self.ctx.end(Stage::Verify);
        self.into_verified(None)
    }

    /// Verifies with the historical `run_flow` verdict mapping: a
    /// refutation becomes `verified == Some(false)` in the report instead
    /// of an [`Error::Verify`] — for drivers (like the CLI) that report
    /// refutation as data rather than aborting.
    pub fn verify_compat(mut self) -> Verified {
        self.ctx.start(Stage::Verify, self.outcome.sg.name());
        let verdict = self.run_verifier().unwrap_or(Some(false));
        self.ctx.observer.on_verdict(verdict);
        self.ctx.end(Stage::Verify);
        self.into_verified(verdict)
    }

    fn into_verified(self, verified: Option<bool>) -> Verified {
        let report = FlowReport {
            name: self.outcome.sg.name().to_string(),
            initial_histogram: self.initial_histogram,
            inserted: self.outcome.implementable.then_some(self.outcome.inserted.len()),
            inserted_names: self.outcome.inserted.clone(),
            si_cost: self.si,
            non_si_cost: self.non_si,
            verified,
            outcome: self.outcome,
        };
        Verified { repaired: self.repaired, circuit: self.circuit, report }
    }
}

/// Terminal stage artifact: the flow report plus the verified netlist.
pub struct Verified {
    repaired: Vec<String>,
    circuit: Circuit,
    report: FlowReport,
}

impl Verified {
    /// The verification verdict (`None` = skipped or inconclusive).
    pub fn verdict(&self) -> Option<bool> {
        self.report.verified
    }

    /// The mapped netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Names of the state signals CSC repair inserted before synthesis.
    pub fn csc_repaired(&self) -> &[String] {
        &self.repaired
    }

    /// The classic flow report.
    pub fn report(&self) -> &FlowReport {
        &self.report
    }

    /// Consumes the stage into the classic flow report.
    pub fn into_report(self) -> FlowReport {
        self.report
    }
}

/// Drives many specifications through one pipeline configuration,
/// yielding the [`BatchRow`]s the report emitters consume — the seam
/// where sharding and parallel execution will land.
pub struct Batch {
    names: Vec<String>,
    limits: Vec<usize>,
    opts: Options,
}

impl Batch {
    /// A batch over the given benchmark names.
    pub fn over_benchmarks<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Batch {
            names: names.into_iter().map(Into::into).collect(),
            limits: vec![2],
            opts: Options::default(),
        }
    }

    /// A batch over the whole embedded 32-circuit Table 1 suite.
    pub fn over_all_benchmarks() -> Self {
        Batch::over_benchmarks(benchmark_names().iter().copied())
    }

    /// Literal limits to run each specification at (default `[2]`); the
    /// resulting [`BatchRow::reports`] align with this slice.
    pub fn limits(mut self, limits: impl Into<Vec<usize>>) -> Self {
        self.limits = limits.into();
        assert!(!self.limits.is_empty(), "a batch needs at least one literal limit");
        self
    }

    /// Whether each run verifies its final netlist (default on).
    pub fn verify(mut self, on: bool) -> Self {
        self.opts.flow.verify = on;
        self
    }

    /// State cap for the speed-independence verifier.
    pub fn verify_config(mut self, config: VerifyConfig) -> Self {
        self.opts.flow.verify_config = config;
        self
    }

    /// Repairs CSC violations before synthesis (default off).
    pub fn repair_csc(mut self, on: bool) -> Self {
        self.opts.flow.repair_csc = on;
        self
    }

    /// Acknowledgment policy for every run.
    pub fn ack_mode(mut self, mode: AckMode) -> Self {
        self.opts.flow.decompose.ack_mode = mode;
        self
    }

    /// OR-tree fanin bound for every run.
    pub fn or_limit(mut self, limit: usize) -> Self {
        self.opts.or_limit = Some(limit);
        self
    }

    /// Runs every specification at every limit, elaborating each
    /// benchmark once.
    ///
    /// # Errors
    /// The first [`Error`] any run raises, fail-fast. Unknown names
    /// surface as [`Error::UnknownBenchmark`] before any flow runs.
    pub fn run(self) -> Result<Vec<BatchRow>, Error> {
        // Validate every name upfront so a typo late in the list does not
        // waste the (potentially minutes-long) flows before it.
        for name in &self.names {
            if benchmark(name).is_none() {
                return Err(Error::UnknownBenchmark { name: name.clone() });
            }
        }
        let mut rows = Vec::with_capacity(self.names.len());
        for name in &self.names {
            let elaborated = Synthesis::from_benchmark(name.clone())
                .flow_config(&self.opts.flow)
                .csc_repair_config(self.opts.csc_repair.clone())
                .elaborate()?;
            let sg = elaborated.state_graph().clone();
            let states = sg.state_count();
            let mut reports = Vec::with_capacity(self.limits.len());
            for &limit in &self.limits {
                let mut synthesis = Synthesis::from_state_graph(sg.clone())
                    .flow_config(&self.opts.flow)
                    .literal_limit(limit);
                if let Some(or_limit) = self.opts.or_limit {
                    synthesis = synthesis.or_limit(or_limit);
                }
                reports.push(synthesis.run()?);
            }
            rows.push(BatchRow { name: name.clone(), states, reports });
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecordingObserver;

    #[test]
    fn one_shot_matches_quickstart() {
        let report = Synthesis::from_benchmark("hazard").literal_limit(2).run().unwrap();
        assert_eq!(report.inserted, Some(1));
        assert_eq!(report.verified, Some(true));
    }

    #[test]
    fn staged_run_exposes_artifacts() {
        let elaborated = Synthesis::from_benchmark("hazard").elaborate().unwrap();
        assert!(elaborated.properties().is_ok());
        let states = elaborated.state_graph().state_count();
        assert!(states > 0);

        let covers = elaborated.covers().unwrap();
        assert!(covers.mc().max_complexity() >= 3, "hazard has a 3-literal cover");
        assert!(covers.non_si_cost().literals > 0);

        let decomposed = covers.decompose().unwrap();
        assert!(decomposed.implementable());
        assert_eq!(decomposed.inserted().len(), decomposed.steps().len());
        assert!(decomposed.state_graph().state_count() > states);

        let mapped = decomposed.map();
        assert!(!mapped.circuit().gates().is_empty());
        assert!(mapped.si_cost().literals > 0);

        let verified = mapped.verify().unwrap();
        assert_eq!(verified.verdict(), Some(true));
        let report = verified.into_report();
        assert_eq!(report.inserted, Some(1));
    }

    #[test]
    fn staged_equals_one_shot() {
        let staged = Synthesis::from_benchmark("dff")
            .literal_limit(2)
            .elaborate()
            .unwrap()
            .covers()
            .unwrap()
            .decompose()
            .unwrap()
            .map()
            .verify()
            .unwrap()
            .into_report();
        let one_shot = Synthesis::from_benchmark("dff").literal_limit(2).run().unwrap();
        assert_eq!(staged.inserted, one_shot.inserted);
        assert_eq!(staged.si_cost, one_shot.si_cost);
        assert_eq!(staged.non_si_cost, one_shot.non_si_cost);
        assert_eq!(staged.verified, one_shot.verified);
    }

    #[test]
    fn unknown_benchmark_is_a_load_error() {
        let err = Synthesis::from_benchmark("no-such-circuit").run().unwrap_err();
        assert!(matches!(err, Error::UnknownBenchmark { ref name } if name == "no-such-circuit"));
        assert_eq!(err.stage(), Stage::Load);
    }

    #[test]
    fn g_source_parses_and_runs() {
        let report = Synthesis::from_g_source(
            ".model ring\n.inputs a\n.outputs b\n.graph\n\
             a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .run()
        .unwrap();
        assert_eq!(report.inserted, Some(0));
        assert_eq!(report.verified, Some(true));
    }

    #[test]
    fn bad_g_source_is_a_parse_error() {
        let err = Synthesis::from_g_source(".graph\nnonsense\n").run().unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        assert_eq!(err.stage(), Stage::Load);
    }

    #[test]
    fn observer_sees_steps_and_verdict() {
        let recorder = std::sync::Arc::new(std::sync::Mutex::new(RecordingObserver::default()));

        struct Shared(std::sync::Arc<std::sync::Mutex<RecordingObserver>>);
        impl FlowObserver for Shared {
            fn on_stage_start(&mut self, stage: Stage, spec: &str) {
                self.0.lock().unwrap().on_stage_start(stage, spec);
            }
            fn on_decompose_step(&mut self, step: &DecomposeStep) {
                self.0.lock().unwrap().on_decompose_step(step);
            }
            fn on_verdict(&mut self, verified: Option<bool>) {
                self.0.lock().unwrap().on_verdict(verified);
            }
        }

        let report =
            Synthesis::from_benchmark("hazard").observer(Shared(recorder.clone())).run().unwrap();
        let seen = recorder.lock().unwrap();
        assert_eq!(seen.steps.len(), report.inserted.unwrap());
        assert_eq!(seen.verdict, Some(Some(true)));
        for stage in [Stage::Load, Stage::Elaborate, Stage::Covers, Stage::Decompose, Stage::Map] {
            assert!(seen.stages.contains(&stage), "missing {stage}");
        }
    }

    #[test]
    fn batch_yields_aligned_rows() {
        let rows =
            Batch::over_benchmarks(["half", "hazard"]).limits([2, 3]).verify(false).run().unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.reports.len(), 2);
            assert!(row.states > 0);
            assert!(row.reports.iter().all(|r| r.inserted.is_some()));
        }
        assert!(rows[1].reports[0].inserted >= rows[1].reports[1].inserted);
    }

    #[test]
    fn batch_rejects_unknown_names_fail_fast() {
        let err = Batch::over_benchmarks(["half", "bogus"]).run().unwrap_err();
        assert!(matches!(err, Error::UnknownBenchmark { ref name } if name == "bogus"));
    }
}
