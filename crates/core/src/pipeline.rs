//! The staged synthesis pipeline: one coherent entry point for the whole
//! DATE'97 flow, exposed as a typestate-flavored builder.
//!
//! ```text
//! Synthesis ──elaborate()──▶ Elaborated ──covers()──▶ Covers
//!     │                                                  │
//!     │                                            decompose()
//!   run()                                                ▼
//!     │                  Verified ◀──verify()── Mapped ◀──map()── Decomposed
//!     ▼
//! FlowReport
//! ```
//!
//! Every intermediate artifact is a first-class value with accessors — the
//! elaborated state graph, the monotonous-cover implementation, the step
//! trace, the standard-C [`Circuit`], the §4 costs — so callers can
//! inspect, cache or fan out at any stage. All stage artifacts are
//! `Send + 'static`, so they can be moved freely across worker threads.
//!
//! Runs are configured with one validated [`Config`] (see
//! [`Synthesis::config`]); the per-knob setters from the 0.2 API remain as
//! deprecated shims. The one-shot [`Synthesis::run`] reproduces the
//! classic [`FlowReport`] end to end, and [`Batch`] drives many
//! specifications through the same configuration — sequentially or on a
//! worker pool ([`Batch::jobs`]) with deterministic, order-preserving
//! results. Construct syntheses through an [`Engine`]
//! ([`Engine::benchmark`], [`Engine::batch`], …) to share benchmark
//! construction and memoize elaboration across runs.
//!
//! ```
//! use simap_core::pipeline::Synthesis;
//! let report = Synthesis::from_benchmark("hazard").run()?;
//! assert!(report.inserted.is_some());
//! assert_eq!(report.verified, Some(true));
//! # Ok::<(), simap_core::Error>(())
//! ```

use crate::config::Config;
use crate::csc::{csc_conflicts, repair_csc, CscRepairConfig};
use crate::decompose::{decompose_with_jobs, AckMode, DecomposeResult, DecomposeStep};
use crate::engine::{CachedElaboration, Engine, SourceKey};
use crate::error::{Error, Stage};
use crate::flow::{build_circuit_with_or_limit, non_si_cost, si_cost, FlowConfig, FlowReport};
use crate::mc::{synthesize_mc_jobs, McImpl};
use crate::observer::{FlowObserver, NullObserver};
use crate::report::BatchRow;
use simap_netlist::{verify_speed_independence, Circuit, Cost, VerifyConfig, VerifyError};
use simap_sg::StateGraph;
use simap_stg::{benchmark, elaborate_with_stats, parse_g, write_g, ReachStats, Stg};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Where a synthesis run gets its specification from.
enum Source {
    /// A named circuit of the embedded Table 1 suite.
    Benchmark(String),
    /// `.g` source text, parsed at elaboration time.
    Text(String),
    /// An already-built signal transition graph.
    Stg(Box<Stg>),
    /// An already-elaborated state graph (skips reachability).
    StateGraph(Box<StateGraph>),
}

/// Pipeline state threaded through the typed stages.
struct Ctx {
    config: Config,
    observer: Box<dyn FlowObserver + Send>,
}

impl Ctx {
    fn start(&mut self, stage: Stage, spec: &str) {
        self.observer.on_stage_start(stage, spec);
    }

    fn end(&mut self, stage: Stage) {
        self.observer.on_stage_end(stage);
    }
}

/// The synthesis builder: configure a specification source and a
/// [`Config`], then either step through the typed stages (starting with
/// [`Synthesis::elaborate`]) or run the whole flow with
/// [`Synthesis::run`].
pub struct Synthesis {
    source: Source,
    engine: Option<Engine>,
    ctx: Ctx,
}

// The stage artifacts carry a `Box<dyn FlowObserver>`, so Debug is
// implemented by hand over the data that identifies the stage.
macro_rules! stage_debug {
    ($ty:ident { $($field:ident : $expr:expr),* $(,)? }) => {
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($ty))
                    $(.field(stringify!($field), &$expr(self)))*
                    .finish_non_exhaustive()
            }
        }
    };
}

stage_debug!(Synthesis {
    source: |s: &Synthesis| match &s.source {
        Source::Benchmark(name) => format!("benchmark:{name}"),
        Source::Text(_) => "g-source".to_string(),
        Source::Stg(stg) => format!("stg:{}", stg.name()),
        Source::StateGraph(sg) => format!("sg:{}", sg.name()),
    },
});
stage_debug!(Elaborated {
    name: |s: &Elaborated| s.sg.name().to_string(),
    states: |s: &Elaborated| s.sg.state_count(),
    csc_repaired: |s: &Elaborated| s.repaired.clone(),
});
stage_debug!(Covers {
    name: |s: &Covers| s.sg.name().to_string(),
    max_complexity: |s: &Covers| s.mc.max_complexity(),
});
stage_debug!(Decomposed {
    name: |s: &Decomposed| s.outcome.sg.name().to_string(),
    implementable: |s: &Decomposed| s.outcome.implementable,
    inserted: |s: &Decomposed| s.outcome.inserted.clone(),
});
stage_debug!(Mapped {
    name: |s: &Mapped| s.outcome.sg.name().to_string(),
    si_cost: |s: &Mapped| s.si,
    gates: |s: &Mapped| s.circuit.gates().len(),
});
stage_debug!(Verified {
    name: |s: &Verified| s.report.name.clone(),
    verdict: |s: &Verified| s.report.verified,
});

impl Synthesis {
    fn new(source: Source) -> Self {
        Synthesis {
            source,
            engine: None,
            ctx: Ctx { config: Config::default(), observer: Box::new(NullObserver) },
        }
    }

    /// Synthesizes a circuit of the embedded Table 1 suite. The name is
    /// resolved lazily: an unknown name surfaces as
    /// [`Error::UnknownBenchmark`] from [`Synthesis::elaborate`] /
    /// [`Synthesis::run`].
    pub fn from_benchmark(name: impl Into<String>) -> Self {
        Synthesis::new(Source::Benchmark(name.into()))
    }

    /// Synthesizes a specification given as `.g` source text.
    pub fn from_g_source(source: impl Into<String>) -> Self {
        Synthesis::new(Source::Text(source.into()))
    }

    /// Synthesizes an already-built signal transition graph.
    pub fn from_stg(stg: Stg) -> Self {
        Synthesis::new(Source::Stg(Box::new(stg)))
    }

    /// Synthesizes an already-elaborated state graph (reachability is
    /// skipped).
    pub fn from_state_graph(sg: StateGraph) -> Self {
        Synthesis::new(Source::StateGraph(Box::new(sg)))
    }

    /// Adopts a validated [`Config`] wholesale — the canonical way to
    /// configure a run. Build one with [`Config::builder`].
    pub fn config(mut self, config: &Config) -> Self {
        self.ctx.config = config.clone();
        self
    }

    /// Wires this synthesis to an [`Engine`] so elaboration consults the
    /// engine's memoization cache. Constructed for you by
    /// [`Engine::benchmark`] and friends.
    pub(crate) fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Gate complexity target: every cover must fit `limit` literals
    /// (default 2).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().literal_limit(n)` with \
                                          `Synthesis::config`"
    )]
    pub fn literal_limit(mut self, limit: usize) -> Self {
        self.ctx.config.flow.decompose.literal_limit = limit;
        self
    }

    /// Splits second-level OR gates into balanced trees of at most
    /// `limit` inputs (default: natural fanin; the split is free with
    /// respect to speed-independence).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().or_limit(n)` with \
                                          `Synthesis::config`"
    )]
    pub fn or_limit(mut self, limit: usize) -> Self {
        self.ctx.config.or_limit = Some(limit);
        self
    }

    /// Repairs Complete State Coding violations by state-signal insertion
    /// before cover synthesis (default off: a CSC violation is then an
    /// error, as in the paper's setting).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().repair_csc(on)` with \
                                          `Synthesis::config`"
    )]
    pub fn repair_csc(mut self, on: bool) -> Self {
        self.ctx.config.flow.repair_csc = on;
        self
    }

    /// The insertion budget of the CSC repair.
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().csc_repair_config(c)` with \
                                          `Synthesis::config`"
    )]
    pub fn csc_repair_config(mut self, config: CscRepairConfig) -> Self {
        self.ctx.config.csc_repair = config;
        self
    }

    /// Acknowledgment policy of the decomposition loop (default:
    /// [`AckMode::Global`], the paper's method).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().ack_mode(m)` with \
                                          `Synthesis::config`"
    )]
    pub fn ack_mode(mut self, mode: AckMode) -> Self {
        self.ctx.config.flow.decompose.ack_mode = mode;
        self
    }

    /// Hard cap on signals inserted by the decomposition loop.
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().max_insertions(n)` with \
                                          `Synthesis::config`"
    )]
    pub fn max_insertions(mut self, n: usize) -> Self {
        self.ctx.config.flow.decompose.max_insertions = n;
        self
    }

    /// Whether [`Synthesis::run`] verifies the final netlist (default on;
    /// the staged [`Mapped::verify`] is unaffected).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().verify(on)` with \
                                          `Synthesis::config`"
    )]
    pub fn verify(mut self, on: bool) -> Self {
        self.ctx.config.flow.verify = on;
        self
    }

    /// State cap for the speed-independence verifier.
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().verify_config(c)` with \
                                          `Synthesis::config`"
    )]
    pub fn verify_config(mut self, config: VerifyConfig) -> Self {
        self.ctx.config.flow.verify_config = config;
        self
    }

    /// Adopts a classic [`FlowConfig`] wholesale (compatibility seam for
    /// code migrating from [`crate::flow::run_flow`]).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::from_flow_config` with \
                                          `Synthesis::config`"
    )]
    pub fn flow_config(mut self, config: &FlowConfig) -> Self {
        self.ctx.config.flow = config.clone();
        self
    }

    /// Attaches a progress observer receiving a callback per stage,
    /// decomposition step, CSC insertion and verdict. The observer must be
    /// `Send` so stage artifacts can cross threads.
    pub fn observer(mut self, observer: impl FlowObserver + Send + 'static) -> Self {
        self.ctx.observer = Box::new(observer);
        self
    }

    /// The cache identity of this synthesis' source, when it has one
    /// (state-graph sources are already elaborated and never cached).
    fn source_key(&self) -> Option<SourceKey> {
        match &self.source {
            Source::Benchmark(name) => Some(SourceKey::Benchmark(name.clone())),
            Source::Text(text) => Some(SourceKey::Text(text.clone())),
            Source::Stg(stg) => Some(SourceKey::Text(write_g(stg))),
            Source::StateGraph(_) => None,
        }
    }

    /// Resolves the source and elaborates it into a state graph,
    /// repairing CSC first when [`Config::repair_csc`] is on.
    ///
    /// When the synthesis is wired to an [`Engine`], the elaboration is
    /// answered from the engine's cache if an identical (source,
    /// elaboration-relevant configuration) pair was elaborated before —
    /// the observer callbacks (stages, CSC conflicts, CSC repairs) are
    /// replayed exactly as the cold run emitted them, but reachability
    /// and repair themselves are skipped.
    ///
    /// # Errors
    /// [`Error::UnknownBenchmark`], [`Error::Parse`], [`Error::Elaborate`]
    /// on load/reachability problems; [`Error::CscRepairFailed`] (with the
    /// original conflict list) when repair was requested but impossible.
    pub fn elaborate(mut self) -> Result<Elaborated, Error> {
        // Engine fast path: a memoized elaboration skips reachability.
        // The observer sees the exact event stream a cold run of the same
        // source kind would emit (benchmark/text sources fire Load, STG
        // sources do not; conflicts and repairs replay from the cache);
        // only the work inside the stages is skipped. The key is built
        // once — canonicalizing an STG source is O(spec size) — and
        // reused for the store on a miss.
        let key = match &self.engine {
            Some(engine) => {
                self.source_key().map(|source| engine.elab_key(source, &self.ctx.config))
            }
            None => None,
        };
        if let (Some(engine), Some(key)) = (&self.engine, &key) {
            if let Some(cached) = engine.lookup(key) {
                match &self.source {
                    Source::Benchmark(name) => {
                        let name = name.clone();
                        self.ctx.start(Stage::Load, &name);
                        self.ctx.end(Stage::Load);
                        self.ctx.start(Stage::Elaborate, &name);
                    }
                    Source::Text(_) => {
                        self.ctx.start(Stage::Load, "<g-source>");
                        self.ctx.end(Stage::Load);
                        self.ctx.start(Stage::Elaborate, cached.sg.name());
                    }
                    Source::Stg(stg) => {
                        let name = stg.name().to_string();
                        self.ctx.start(Stage::Elaborate, &name);
                    }
                    Source::StateGraph(_) => unreachable!("state graphs have no cache key"),
                }
                if !cached.conflicts.is_empty() {
                    self.ctx.observer.on_csc_conflicts(&cached.conflicts);
                    for signal in &cached.repaired {
                        self.ctx.observer.on_csc_repair(signal);
                    }
                }
                self.ctx.end(Stage::Elaborate);
                return Ok(Elaborated {
                    ctx: self.ctx,
                    sg: cached.sg,
                    repaired: cached.repaired,
                    reach: cached.reach,
                });
            }
        }

        let reach = self.ctx.config.reach.clone();
        let (sg, reach_stats) = match self.source {
            Source::Benchmark(ref name) => {
                self.ctx.start(Stage::Load, name);
                // Resolve through the engine's registry when available so
                // the STG itself is built at most once per engine family.
                let stg = match &self.engine {
                    Some(engine) => engine.registry().get(name),
                    None => benchmark(name).map(Arc::new),
                }
                .ok_or_else(|| Error::UnknownBenchmark { name: name.clone() })?;
                self.ctx.end(Stage::Load);
                self.ctx.start(Stage::Elaborate, name);
                let (sg, stats) = elaborate_with_stats(&stg, &reach)?;
                (sg, Some(stats))
            }
            Source::Text(ref text) => {
                self.ctx.start(Stage::Load, "<g-source>");
                let stg = parse_g(text)?;
                self.ctx.end(Stage::Load);
                self.ctx.start(Stage::Elaborate, stg.name());
                let (sg, stats) = elaborate_with_stats(&stg, &reach)?;
                (sg, Some(stats))
            }
            Source::Stg(ref stg) => {
                self.ctx.start(Stage::Elaborate, stg.name());
                let (sg, stats) = elaborate_with_stats(stg, &reach)?;
                (sg, Some(stats))
            }
            Source::StateGraph(sg) => {
                self.ctx.start(Stage::Elaborate, sg.name());
                (*sg, None)
            }
        };

        let mut repaired = Vec::new();
        let conflicts = csc_conflicts(&sg);
        let sg = if conflicts.is_empty() {
            sg
        } else {
            self.ctx.observer.on_csc_conflicts(&conflicts);
            if self.ctx.config.flow.repair_csc {
                match repair_csc(&sg, &self.ctx.config.csc_repair) {
                    Ok((fixed, inserted)) => {
                        for signal in &inserted {
                            self.ctx.observer.on_csc_repair(signal);
                        }
                        repaired = inserted;
                        fixed
                    }
                    Err(error) => {
                        return Err(Error::CscRepairFailed { error, conflicts });
                    }
                }
            } else {
                // Repair not requested: the violation surfaces as
                // `Error::CscViolation` when covers are synthesized,
                // but the elaborated graph itself is still usable.
                sg
            }
        };
        self.ctx.end(Stage::Elaborate);
        let sg = Arc::new(sg);
        if let (Some(engine), Some(key)) = (&self.engine, key) {
            engine.store(
                key,
                CachedElaboration {
                    sg: sg.clone(),
                    repaired: repaired.clone(),
                    conflicts,
                    reach: reach_stats,
                },
            );
        }
        Ok(Elaborated { ctx: self.ctx, sg, repaired, reach: reach_stats })
    }

    /// Runs the whole flow — elaborate, covers, decompose, map and (unless
    /// disabled) verify — and returns the classic [`FlowReport`].
    ///
    /// Matching the historical `run_flow` contract, a verification
    /// *refutation* is reported as `verified == Some(false)` rather than
    /// an error; use the staged [`Mapped::verify`] for a typed verdict.
    ///
    /// # Errors
    /// Everything [`Synthesis::elaborate`] and [`Elaborated::covers`] can
    /// raise.
    pub fn run(self) -> Result<FlowReport, Error> {
        let verify = self.ctx.config.flow.verify;
        let mapped = self.elaborate()?.covers()?.decompose()?.map();
        let verified = if verify { mapped.verify_compat() } else { mapped.skip_verify() };
        Ok(verified.into_report())
    }
}

/// Stage artifact: the elaborated (and possibly CSC-repaired) state
/// graph. The graph is behind an [`Arc`]: cache hits and clones share it.
pub struct Elaborated {
    ctx: Ctx,
    sg: Arc<StateGraph>,
    repaired: Vec<String>,
    reach: Option<ReachStats>,
}

impl Elaborated {
    /// The elaborated state graph.
    pub fn state_graph(&self) -> &StateGraph {
        &self.sg
    }

    /// Exploration counters of the reachability run that produced this
    /// graph — markings visited/interned, edges fired, the strategy that
    /// ran. `None` when the synthesis started from an already-elaborated
    /// state graph; cache hits report the cold run's counters.
    pub fn reach_stats(&self) -> Option<ReachStats> {
        self.reach
    }

    /// A shared handle to the elaborated state graph (cheap to clone).
    pub fn state_graph_arc(&self) -> Arc<StateGraph> {
        self.sg.clone()
    }

    /// Names of the state signals inserted by CSC repair (empty when the
    /// specification had CSC or repair was off).
    pub fn csc_repaired(&self) -> &[String] {
        &self.repaired
    }

    /// The §2.1 property report of the elaborated graph.
    pub fn properties(&self) -> simap_sg::PropertyReport {
        simap_sg::check_all(&self.sg)
    }

    /// Synthesizes monotonous covers for every implementable signal.
    ///
    /// # Errors
    /// [`Error::CscViolation`] — with the full conflict list — when the
    /// specification lacks Complete State Coding.
    pub fn covers(mut self) -> Result<Covers, Error> {
        self.ctx.start(Stage::Covers, self.sg.name());
        let mc = match synthesize_mc_jobs(&self.sg, self.ctx.config.synth_jobs()) {
            Ok(mc) => mc,
            Err(crate::mc::McError::CscConflict { signal, code }) => {
                return Err(Error::CscViolation {
                    signal,
                    code,
                    conflicts: csc_conflicts(&self.sg),
                });
            }
        };
        // Per-signal progress events fire from the merged result, in
        // signal-index order — the canonical stream is the same at any
        // `synth_jobs` and identical between cold and cached elaborations
        // (all CSC callbacks belong to the Elaborate stage and precede
        // these by construction).
        for signal in &mc.signals {
            let name = &self.sg.signals()[signal.signal.0].name;
            self.ctx.observer.on_signal_synth(name, signal.cube_count(), signal.literal_count());
        }
        let initial_histogram = mc.gate_histogram();
        let limit = self.ctx.config.flow.decompose.literal_limit.max(2);
        let non_si = non_si_cost(&mc, limit);
        self.ctx.end(Stage::Covers);
        Ok(Covers {
            ctx: self.ctx,
            sg: self.sg,
            repaired: self.repaired,
            reach: self.reach,
            mc,
            initial_histogram,
            non_si,
        })
    }
}

/// Stage artifact: the initial monotonous-cover implementation.
pub struct Covers {
    ctx: Ctx,
    sg: Arc<StateGraph>,
    repaired: Vec<String>,
    reach: Option<ReachStats>,
    mc: McImpl,
    initial_histogram: Vec<usize>,
    non_si: Cost,
}

impl Covers {
    /// The state graph the covers were synthesized for.
    pub fn state_graph(&self) -> &StateGraph {
        &self.sg
    }

    /// The initial monotonous-cover implementation.
    pub fn mc(&self) -> &McImpl {
        &self.mc
    }

    /// Gate-complexity histogram of the initial implementation.
    pub fn initial_histogram(&self) -> &[usize] {
        &self.initial_histogram
    }

    /// Non-SI `tech_decomp` baseline cost of the initial implementation.
    pub fn non_si_cost(&self) -> Cost {
        self.non_si
    }

    /// Runs the §3 decomposition/resynthesis loop, firing
    /// [`FlowObserver::on_decompose_step`] per committed insertion.
    ///
    /// # Errors
    /// [`Error::CscViolation`] if a resynthesis step hits an ill-defined
    /// cover (cannot happen for specifications that passed
    /// [`Elaborated::covers`]).
    pub fn decompose(mut self) -> Result<Decomposed, Error> {
        self.ctx.start(Stage::Decompose, self.sg.name());
        let outcome = decompose_with_jobs(
            &self.sg,
            &self.ctx.config.flow.decompose,
            self.ctx.config.synth_jobs(),
            self.ctx.observer.as_mut(),
        )
        .map_err(|crate::mc::McError::CscConflict { signal, code }| {
            Error::CscViolation { signal, code, conflicts: csc_conflicts(&self.sg) }
        })?;
        self.ctx.end(Stage::Decompose);
        Ok(Decomposed {
            ctx: self.ctx,
            repaired: self.repaired,
            reach: self.reach,
            outcome,
            initial_histogram: self.initial_histogram,
            non_si: self.non_si,
        })
    }
}

/// Stage artifact: the decomposition outcome (final state graph, final
/// covers, step trace).
pub struct Decomposed {
    ctx: Ctx,
    repaired: Vec<String>,
    reach: Option<ReachStats>,
    outcome: DecomposeResult,
    initial_histogram: Vec<usize>,
    non_si: Cost,
}

impl Decomposed {
    /// The final state graph (original plus inserted signals).
    pub fn state_graph(&self) -> &StateGraph {
        &self.outcome.sg
    }

    /// The final monotonous-cover implementation.
    pub fn mc(&self) -> &McImpl {
        &self.outcome.mc
    }

    /// Whether every gate fits the literal limit.
    pub fn implementable(&self) -> bool {
        self.outcome.implementable
    }

    /// Names of the signals the loop inserted, in order.
    pub fn inserted(&self) -> &[String] {
        &self.outcome.inserted
    }

    /// The committed decomposition steps.
    pub fn steps(&self) -> &[DecomposeStep] {
        &self.outcome.steps
    }

    /// Builds the standard-C netlist (honoring the configured
    /// [`Config::or_limit`]) and computes the §4 costs.
    pub fn map(mut self) -> Mapped {
        self.ctx.start(Stage::Map, self.outcome.sg.name());
        let circuit = build_circuit_with_or_limit(
            &self.outcome.sg,
            &self.outcome.mc,
            self.ctx.config.or_limit,
        );
        let limit = self.ctx.config.flow.decompose.literal_limit.max(2);
        let si = si_cost(&self.outcome.mc, limit);
        self.ctx.end(Stage::Map);
        Mapped {
            ctx: self.ctx,
            repaired: self.repaired,
            reach: self.reach,
            outcome: self.outcome,
            initial_histogram: self.initial_histogram,
            non_si: self.non_si,
            si,
            circuit,
        }
    }
}

/// Stage artifact: the mapped standard-C netlist with cost accounting.
pub struct Mapped {
    ctx: Ctx,
    repaired: Vec<String>,
    reach: Option<ReachStats>,
    outcome: DecomposeResult,
    initial_histogram: Vec<usize>,
    non_si: Cost,
    si: Cost,
    circuit: Circuit,
}

impl Mapped {
    /// The mapped netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// SI decomposition cost (§4 model).
    pub fn si_cost(&self) -> Cost {
        self.si
    }

    /// Non-SI `tech_decomp` baseline cost of the initial implementation.
    pub fn non_si_cost(&self) -> Cost {
        self.non_si
    }

    /// The final state graph.
    pub fn state_graph(&self) -> &StateGraph {
        &self.outcome.sg
    }

    /// The final monotonous-cover implementation.
    pub fn mc(&self) -> &McImpl {
        &self.outcome.mc
    }

    /// The shared verifier invocation: `Ok(Some(true))` verified,
    /// `Ok(None)` inconclusive (not implementable or state cap hit),
    /// `Err` refuted or structurally unverifiable.
    fn run_verifier(&self) -> Result<Option<bool>, VerifyError> {
        if !self.outcome.implementable {
            return Ok(None);
        }
        match verify_speed_independence(
            &self.circuit,
            &self.outcome.sg,
            &self.ctx.config.flow.verify_config,
        ) {
            Ok(_) => Ok(Some(true)),
            Err(VerifyError::TooManyStates { .. }) => Ok(None),
            Err(error) => Err(error),
        }
    }

    /// Verifies the final netlist against the final state graph.
    ///
    /// Implementations that exceeded the literal limit
    /// (`implementable == false`) and explorations that exceed the
    /// verifier's state cap yield an *inconclusive* verdict (`None`), not
    /// an error.
    ///
    /// # Errors
    /// [`Error::Verify`] when the circuit is refuted (hazard, unexpected
    /// output, deadlock) or structurally unverifiable (missing net,
    /// unstable initial state).
    pub fn verify(mut self) -> Result<Verified, Error> {
        self.ctx.start(Stage::Verify, self.outcome.sg.name());
        let outcome = self.run_verifier();
        let verdict = match &outcome {
            Ok(v) => *v,
            Err(_) => Some(false),
        };
        self.ctx.observer.on_verdict(verdict);
        self.ctx.end(Stage::Verify);
        match outcome {
            Ok(v) => Ok(self.into_verified(v)),
            Err(error) => Err(Error::Verify { error }),
        }
    }

    /// Skips verification, producing a report with `verified == None`.
    pub fn skip_verify(mut self) -> Verified {
        self.ctx.start(Stage::Verify, self.outcome.sg.name());
        self.ctx.observer.on_verdict(None);
        self.ctx.end(Stage::Verify);
        self.into_verified(None)
    }

    /// Verifies with the historical `run_flow` verdict mapping: a
    /// refutation becomes `verified == Some(false)` in the report instead
    /// of an [`Error::Verify`] — for drivers (like the CLI) that report
    /// refutation as data rather than aborting.
    pub fn verify_compat(mut self) -> Verified {
        self.ctx.start(Stage::Verify, self.outcome.sg.name());
        let verdict = self.run_verifier().unwrap_or(Some(false));
        self.ctx.observer.on_verdict(verdict);
        self.ctx.end(Stage::Verify);
        self.into_verified(verdict)
    }

    fn into_verified(self, verified: Option<bool>) -> Verified {
        let report = FlowReport {
            name: self.outcome.sg.name().to_string(),
            initial_histogram: self.initial_histogram,
            inserted: self.outcome.implementable.then_some(self.outcome.inserted.len()),
            inserted_names: self.outcome.inserted.clone(),
            si_cost: self.si,
            non_si_cost: self.non_si,
            verified,
            reach: self.reach,
            outcome: self.outcome,
        };
        Verified { repaired: self.repaired, circuit: self.circuit, report }
    }
}

/// Terminal stage artifact: the flow report plus the verified netlist.
pub struct Verified {
    repaired: Vec<String>,
    circuit: Circuit,
    report: FlowReport,
}

impl Verified {
    /// The verification verdict (`None` = skipped or inconclusive).
    pub fn verdict(&self) -> Option<bool> {
        self.report.verified
    }

    /// The mapped netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Names of the state signals CSC repair inserted before synthesis.
    pub fn csc_repaired(&self) -> &[String] {
        &self.repaired
    }

    /// The classic flow report.
    pub fn report(&self) -> &FlowReport {
        &self.report
    }

    /// Consumes the stage into the classic flow report.
    pub fn into_report(self) -> FlowReport {
        self.report
    }
}

/// Drives many specifications through one pipeline configuration,
/// yielding the [`BatchRow`]s the report emitters consume.
///
/// A batch runs on an [`Engine`]: each benchmark's STG is built once and
/// each (specification, elaboration configuration) pair is elaborated
/// once, whatever the number of literal limits or repeated runs. With
/// [`Batch::jobs`] the specifications are distributed over a pool of
/// `std::thread` workers; the resulting rows are **byte-identical** to a
/// sequential run, in the same order (the first error in input order is
/// reported, as sequentially).
pub struct Batch {
    engine: Engine,
    names: Vec<String>,
    limits: Vec<usize>,
    jobs: usize,
}

impl Batch {
    /// A batch over the given benchmark names, on a fresh default
    /// [`Engine`]. Use [`Engine::batch`] to share an existing engine's
    /// caches and configuration.
    pub fn over_benchmarks<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Batch::on_engine(Engine::default(), names)
    }

    /// A batch over the whole embedded 32-circuit Table 1 suite.
    pub fn over_all_benchmarks() -> Self {
        let engine = Engine::default();
        let names: Vec<&str> = engine.registry().names().to_vec();
        Batch::on_engine(engine, names)
    }

    pub(crate) fn on_engine<I, S>(engine: Engine, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Batch {
            engine,
            names: names.into_iter().map(Into::into).collect(),
            limits: vec![2],
            jobs: 1,
        }
    }

    /// Literal limits to run each specification at (default `[2]`); the
    /// resulting [`BatchRow::reports`] align with this slice. An empty
    /// slice or a limit below 2 surfaces as [`Error::InvalidConfig`] from
    /// [`Batch::run`].
    pub fn limits(mut self, limits: impl Into<Vec<usize>>) -> Self {
        self.limits = limits.into();
        self
    }

    /// Number of worker threads (default 1 = sequential). The results are
    /// identical to a sequential run whatever the value.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n.max(1);
        self
    }

    /// Replaces the batch's configuration (the engine's caches are kept).
    pub fn config(mut self, config: &Config) -> Self {
        self.engine = self.engine.with_config(config.clone());
        self
    }

    fn map_config(mut self, f: impl FnOnce(&mut Config)) -> Self {
        let mut config = self.engine.config().clone();
        f(&mut config);
        self.engine = self.engine.with_config(config);
        self
    }

    /// Whether each run verifies its final netlist (default on).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().verify(on)` with \
                                          `Batch::config`"
    )]
    pub fn verify(self, on: bool) -> Self {
        self.map_config(|c| c.flow.verify = on)
    }

    /// State cap for the speed-independence verifier.
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().verify_config(c)` with \
                                          `Batch::config`"
    )]
    pub fn verify_config(self, config: VerifyConfig) -> Self {
        self.map_config(|c| c.flow.verify_config = config)
    }

    /// Repairs CSC violations before synthesis (default off).
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().repair_csc(on)` with \
                                          `Batch::config`"
    )]
    pub fn repair_csc(self, on: bool) -> Self {
        self.map_config(|c| c.flow.repair_csc = on)
    }

    /// Acknowledgment policy for every run.
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().ack_mode(m)` with \
                                          `Batch::config`"
    )]
    pub fn ack_mode(self, mode: AckMode) -> Self {
        self.map_config(|c| c.flow.decompose.ack_mode = mode)
    }

    /// OR-tree fanin bound for every run.
    #[deprecated(
        since = "0.3.0",
        note = "use `Config::builder().or_limit(n)` with \
                                          `Batch::config`"
    )]
    pub fn or_limit(self, limit: usize) -> Self {
        self.map_config(|c| c.or_limit = Some(limit))
    }

    /// Runs every specification at every limit — on `jobs` worker threads
    /// when configured — elaborating each benchmark once per engine
    /// family.
    ///
    /// # Errors
    /// The first [`Error`] any run raises, in input order. Unknown names
    /// surface as [`Error::UnknownBenchmark`] before any flow runs, and
    /// invalid limits as [`Error::InvalidConfig`].
    pub fn run(self) -> Result<Vec<BatchRow>, Error> {
        // Validate every name upfront so a typo late in the list does not
        // waste the (potentially minutes-long) flows before it.
        for name in &self.names {
            if !self.engine.registry().contains(name) {
                return Err(Error::UnknownBenchmark { name: name.clone() });
            }
        }
        // One configuration per literal limit. Only the limits themselves
        // are validated here: the base config either passed its builder
        // already or was set through the deprecated 0.2 shims, whose
        // out-of-range values must keep their historical (clamped)
        // behavior rather than start failing.
        if self.limits.is_empty() {
            return Err(Error::InvalidConfig {
                message: "a batch needs at least one literal limit".to_string(),
            });
        }
        let configs: Vec<Config> = self
            .limits
            .iter()
            .map(|&limit| {
                if limit < 2 {
                    return Err(Error::InvalidConfig {
                        message: format!("literal limit {limit} is below 2"),
                    });
                }
                let mut config = self.engine.config().clone();
                config.flow.decompose.literal_limit = limit;
                Ok(config)
            })
            .collect::<Result<_, _>>()?;

        let engine = &self.engine;
        let names = &self.names;
        let configs = &configs;
        let jobs = self.jobs.min(names.len()).max(1);
        if jobs == 1 {
            return names.iter().map(|name| run_row(engine, name, configs)).collect();
        }

        // Worker pool: an atomic cursor hands out specifications; each
        // result lands in its input-order slot, so the assembled rows (and
        // the first reported error) are identical to a sequential run.
        // A failure flag cancels the unclaimed suffix — matching the
        // sequential fail-fast contract of not wasting minutes-long flows
        // after an error (rows already claimed still finish).
        let cursor = AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<BatchRow, Error>>>> =
            names.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = names.get(i) else { break };
                    let row = run_row(engine, name, configs);
                    if row.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("result slot") = Some(row);
                });
            }
        });
        // Claims are handed out in input order and every claimed slot is
        // filled, so the unclaimed (empty) suffix can only begin after
        // the first error slot: scanning in order finds the same error a
        // sequential run would report.
        let mut rows = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.into_inner().expect("result slot") {
                Some(Ok(row)) => rows.push(row),
                Some(Err(error)) => return Err(error),
                None => unreachable!("slots are only left empty after an earlier error"),
            }
        }
        Ok(rows)
    }
}

/// One batch row: elaborate once (through the engine cache), then run the
/// full flow at every limit.
fn run_row(engine: &Engine, name: &str, configs: &[Config]) -> Result<BatchRow, Error> {
    let first = configs.first().expect("at least one limit");
    let elaborated = engine.with_config(first.clone()).benchmark(name).elaborate()?;
    let states = elaborated.state_graph().state_count();
    let mut reports = Vec::with_capacity(configs.len());
    for config in configs {
        reports.push(engine.with_config(config.clone()).benchmark(name).run()?);
    }
    Ok(BatchRow { name: name.to_string(), states, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecordingObserver;

    fn config_at(limit: usize) -> Config {
        Config::builder().literal_limit(limit).build().unwrap()
    }

    #[test]
    fn one_shot_matches_quickstart() {
        let report = Synthesis::from_benchmark("hazard").config(&config_at(2)).run().unwrap();
        assert_eq!(report.inserted, Some(1));
        assert_eq!(report.verified, Some(true));
    }

    #[test]
    fn staged_run_exposes_artifacts() {
        let elaborated = Synthesis::from_benchmark("hazard").elaborate().unwrap();
        assert!(elaborated.properties().is_ok());
        let states = elaborated.state_graph().state_count();
        assert!(states > 0);

        let covers = elaborated.covers().unwrap();
        assert!(covers.mc().max_complexity() >= 3, "hazard has a 3-literal cover");
        assert!(covers.non_si_cost().literals > 0);

        let decomposed = covers.decompose().unwrap();
        assert!(decomposed.implementable());
        assert_eq!(decomposed.inserted().len(), decomposed.steps().len());
        assert!(decomposed.state_graph().state_count() > states);

        let mapped = decomposed.map();
        assert!(!mapped.circuit().gates().is_empty());
        assert!(mapped.si_cost().literals > 0);

        let verified = mapped.verify().unwrap();
        assert_eq!(verified.verdict(), Some(true));
        let report = verified.into_report();
        assert_eq!(report.inserted, Some(1));
    }

    #[test]
    fn staged_equals_one_shot() {
        let staged = Synthesis::from_benchmark("dff")
            .config(&config_at(2))
            .elaborate()
            .unwrap()
            .covers()
            .unwrap()
            .decompose()
            .unwrap()
            .map()
            .verify()
            .unwrap()
            .into_report();
        let one_shot = Synthesis::from_benchmark("dff").config(&config_at(2)).run().unwrap();
        assert_eq!(staged.inserted, one_shot.inserted);
        assert_eq!(staged.si_cost, one_shot.si_cost);
        assert_eq!(staged.non_si_cost, one_shot.non_si_cost);
        assert_eq!(staged.verified, one_shot.verified);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_still_configure() {
        let shimmed = Synthesis::from_benchmark("dff").literal_limit(3).run().unwrap();
        let configured = Synthesis::from_benchmark("dff").config(&config_at(3)).run().unwrap();
        assert_eq!(shimmed.inserted, configured.inserted);
        assert_eq!(shimmed.si_cost, configured.si_cost);
    }

    #[test]
    fn unknown_benchmark_is_a_load_error() {
        let err = Synthesis::from_benchmark("no-such-circuit").run().unwrap_err();
        assert!(matches!(err, Error::UnknownBenchmark { ref name } if name == "no-such-circuit"));
        assert_eq!(err.stage(), Stage::Load);
    }

    #[test]
    fn g_source_parses_and_runs() {
        let report = Synthesis::from_g_source(
            ".model ring\n.inputs a\n.outputs b\n.graph\n\
             a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n",
        )
        .run()
        .unwrap();
        assert_eq!(report.inserted, Some(0));
        assert_eq!(report.verified, Some(true));
    }

    #[test]
    fn bad_g_source_is_a_parse_error() {
        let err = Synthesis::from_g_source(".graph\nnonsense\n").run().unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        assert_eq!(err.stage(), Stage::Load);
    }

    #[test]
    fn observer_sees_steps_and_verdict() {
        let recorder = std::sync::Arc::new(std::sync::Mutex::new(RecordingObserver::default()));

        struct Shared(std::sync::Arc<std::sync::Mutex<RecordingObserver>>);
        impl FlowObserver for Shared {
            fn on_stage_start(&mut self, stage: Stage, spec: &str) {
                self.0.lock().unwrap().on_stage_start(stage, spec);
            }
            fn on_decompose_step(&mut self, step: &DecomposeStep) {
                self.0.lock().unwrap().on_decompose_step(step);
            }
            fn on_verdict(&mut self, verified: Option<bool>) {
                self.0.lock().unwrap().on_verdict(verified);
            }
        }

        let report =
            Synthesis::from_benchmark("hazard").observer(Shared(recorder.clone())).run().unwrap();
        let seen = recorder.lock().unwrap();
        assert_eq!(seen.steps.len(), report.inserted.unwrap());
        assert_eq!(seen.verdict, Some(Some(true)));
        for stage in [Stage::Load, Stage::Elaborate, Stage::Covers, Stage::Decompose, Stage::Map] {
            assert!(seen.stages.contains(&stage), "missing {stage}");
        }
    }

    #[test]
    fn stage_artifacts_are_send() {
        fn is_send<T: Send + 'static>() {}
        is_send::<Synthesis>();
        is_send::<Elaborated>();
        is_send::<Covers>();
        is_send::<Decomposed>();
        is_send::<Mapped>();
        is_send::<Verified>();
        is_send::<Batch>();
        is_send::<Engine>();
        is_send::<Config>();
        is_send::<Error>();
        is_send::<FlowReport>();
    }

    #[test]
    fn batch_yields_aligned_rows() {
        let config = Config::builder().verify(false).build().unwrap();
        let rows = Batch::over_benchmarks(["half", "hazard"])
            .config(&config)
            .limits([2, 3])
            .run()
            .unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.reports.len(), 2);
            assert!(row.states > 0);
            assert!(row.reports.iter().all(|r| r.inserted.is_some()));
        }
        assert!(rows[1].reports[0].inserted >= rows[1].reports[1].inserted);
    }

    #[test]
    fn batch_rejects_unknown_names_fail_fast() {
        let err = Batch::over_benchmarks(["half", "bogus"]).run().unwrap_err();
        assert!(matches!(err, Error::UnknownBenchmark { ref name } if name == "bogus"));
    }

    #[test]
    fn batch_rejects_invalid_limits_before_running() {
        let err = Batch::over_benchmarks(["half"]).limits([1]).run().unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
        let err = Batch::over_benchmarks(["half"]).limits(Vec::new()).run().unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_batch_shims_keep_their_clamping_behavior() {
        // 0.2 silently clamped an or_limit of 1 to 2 in the OR-join; the
        // deprecated shim must not start failing validation.
        let rows = Batch::over_benchmarks(["half"]).or_limit(1).verify(false).run().unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].reports[0].inserted.is_some());
    }

    #[test]
    fn parallel_batch_matches_sequential_rows() {
        let engine = Engine::new(Config::builder().verify(false).build().unwrap());
        let names = ["half", "hazard", "dff", "chu133"];
        let sequential = engine.batch(names).limits([2]).jobs(1).run().unwrap();
        let parallel = engine.batch(names).limits([2]).jobs(3).run().unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.states, p.states);
            for (sr, pr) in s.reports.iter().zip(&p.reports) {
                assert_eq!(sr.inserted, pr.inserted, "{}", s.name);
                assert_eq!(sr.inserted_names, pr.inserted_names, "{}", s.name);
                assert_eq!(sr.si_cost, pr.si_cost, "{}", s.name);
                assert_eq!(sr.non_si_cost, pr.non_si_cost, "{}", s.name);
            }
        }
        // The parallel run reused the sequential run's elaborations.
        assert!(engine.cache_stats().hits >= names.len() as u64);
    }

    #[test]
    fn parallel_batch_reports_first_error_in_input_order() {
        // "mmu" elaborates to thousands of states; a tiny reachability cap
        // makes every run fail, and the reported error must be the first
        // name in input order, exactly as sequentially.
        let config = Config::builder().reach_max_states(2).verify(false).build().unwrap();
        let engine = Engine::new(config);
        let err = engine.batch(["half", "hazard"]).jobs(2).run().unwrap_err();
        assert!(matches!(err, Error::Elaborate(_)), "{err}");
    }
}
