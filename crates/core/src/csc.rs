//! Complete State Coding repair by state-signal insertion (§2.3: "this
//! new signal can be added either in order to satisfy the CSC condition,
//! or to break up a complex gate").
//!
//! CSC conflicts are pairs of states with equal codes enabling different
//! non-input events; no cover over the existing signals can separate
//! them, so the insertion works on explicit state-set bipartitions
//! ([`crate::insertion::compute_insertion_from_block`]). Candidate blocks
//! are *event intervals*: the states reachable from the switching region
//! of one event without crossing another event — the region-flavoured
//! heuristic of the paper's companion work on state encoding.

use crate::insertion::{compute_insertion_from_block, insert_signal};
use simap_sg::{
    check_consistency, check_csc, regions_of, Event, PropertyViolation, SignalKind, StateGraph,
    StateId, StateSet,
};
use std::fmt;

/// A CSC conflict: two states with the same code enabling different
/// non-input event sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CscConflict {
    /// First state.
    pub a: StateId,
    /// Second state.
    pub b: StateId,
    /// The shared code.
    pub code: u64,
}

/// Finds all CSC conflicts of a state graph.
pub fn csc_conflicts(sg: &StateGraph) -> Vec<CscConflict> {
    check_csc(sg)
        .into_iter()
        .filter_map(|v| match v {
            PropertyViolation::CscConflict { a, b, code } => Some(CscConflict { a, b, code }),
            _ => None,
        })
        .collect()
}

/// Why CSC repair failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CscRepairError {
    /// No candidate block yields a legal, conflict-reducing insertion —
    /// typically because every separation would delay an input (the
    /// conflict is not resolvable without changing the I/O interface).
    NoLegalInsertion {
        /// Conflicts that remain.
        remaining: usize,
    },
    /// The insertion budget was exhausted.
    TooManyInsertions {
        /// The configured cap.
        limit: usize,
    },
    /// The input graph is broken in a more basic way (inconsistent codes).
    Inconsistent,
}

impl fmt::Display for CscRepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscRepairError::NoLegalInsertion { remaining } => {
                write!(f, "no legal insertion separates the {remaining} remaining conflict(s)")
            }
            CscRepairError::TooManyInsertions { limit } => {
                write!(f, "CSC repair exceeded {limit} insertions")
            }
            CscRepairError::Inconsistent => write!(f, "state graph is not consistent"),
        }
    }
}

impl std::error::Error for CscRepairError {}

/// Configuration for [`repair_csc`].
#[derive(Debug, Clone)]
pub struct CscRepairConfig {
    /// Maximum number of state signals inserted.
    pub max_insertions: usize,
}

impl Default for CscRepairConfig {
    fn default() -> Self {
        CscRepairConfig { max_insertions: 8 }
    }
}

/// Repairs Complete State Coding by inserting internal state signals.
/// Returns the extended graph and the names of the inserted signals.
///
/// # Errors
/// See [`CscRepairError`].
pub fn repair_csc(
    sg: &StateGraph,
    config: &CscRepairConfig,
) -> Result<(StateGraph, Vec<String>), CscRepairError> {
    if !check_consistency(sg).is_empty() {
        return Err(CscRepairError::Inconsistent);
    }
    let mut sg = sg.clone();
    let mut inserted = Vec::new();
    loop {
        let conflicts = csc_conflicts(&sg);
        if conflicts.is_empty() {
            return Ok((sg, inserted));
        }
        if inserted.len() >= config.max_insertions {
            return Err(CscRepairError::TooManyInsertions { limit: config.max_insertions });
        }

        // Rank candidate blocks by how many conflicts they separate.
        let mut best: Option<(usize, StateGraph)> = None;
        let name = format!("csc{}", inserted.len());
        for block in candidate_blocks(&sg) {
            let separated =
                conflicts.iter().filter(|c| block.contains(c.a) != block.contains(c.b)).count();
            if separated == 0 {
                continue;
            }
            let Ok(ins) = compute_insertion_from_block(&sg, block) else { continue };
            let Ok(candidate) = insert_signal(&sg, &ins, &name, SignalKind::Internal) else {
                continue;
            };
            let report = simap_sg::check_all(&candidate);
            let serious = report
                .violations
                .iter()
                .any(|v| !matches!(v, PropertyViolation::CscConflict { .. }));
            if serious {
                continue;
            }
            let after = csc_conflicts(&candidate).len();
            if after >= conflicts.len() {
                continue;
            }
            if best.as_ref().map(|(b, _)| after < *b).unwrap_or(true) {
                best = Some((after, candidate));
            }
        }

        match best {
            Some((_, candidate)) => {
                sg = candidate;
                inserted.push(name);
            }
            None => return Err(CscRepairError::NoLegalInsertion { remaining: conflicts.len() }),
        }
    }
}

/// Candidate `S1` blocks: for every ordered pair of events `(e1, e2)`, the
/// set of states reachable from `SR(e1)` without traversing an arc
/// labeled `e2`.
fn candidate_blocks(sg: &StateGraph) -> Vec<StateSet> {
    let n = sg.state_count();
    let mut events: Vec<Event> = Vec::new();
    for sig in 0..sg.signal_count() {
        let sig = simap_sg::SignalId(sig);
        for ev in [Event::rise(sig), Event::fall(sig)] {
            if sg.states().any(|s| sg.enabled(s, ev)) {
                events.push(ev);
            }
        }
    }
    let mut blocks = Vec::new();
    for &e1 in &events {
        let start: Vec<StateId> =
            regions_of(sg, e1).into_iter().flat_map(|r| r.sr.iter().collect::<Vec<_>>()).collect();
        for &e2 in &events {
            if e1 == e2 {
                continue;
            }
            let mut block = StateSet::new(n);
            let mut stack: Vec<StateId> = Vec::new();
            for &s in &start {
                if block.insert(s) {
                    stack.push(s);
                }
            }
            while let Some(s) = stack.pop() {
                for &(e, t) in sg.succ(s) {
                    if e == e2 {
                        continue;
                    }
                    if block.insert(t) {
                        stack.push(t);
                    }
                }
            }
            if !block.is_empty() && block.count() < n && !blocks.contains(&block) {
                blocks.push(block);
            }
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_sg::{Signal, SignalId, StateGraphBuilder};

    /// The classic CSC conflict: a+ ; b+ ; b- ; a- over two output
    /// signals. States after `a+` and after `b-` share code 01 but enable
    /// different outputs.
    fn conflicted() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "csc-demo",
            vec![Signal::new("a", SignalKind::Output), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        let s2 = bd.add_state(0b11);
        let s3 = bd.add_state(0b01);
        let (a, b) = (SignalId(0), SignalId(1));
        bd.add_arc(s0, Event::rise(a), s1);
        bd.add_arc(s1, Event::rise(b), s2);
        bd.add_arc(s2, Event::fall(b), s3);
        bd.add_arc(s3, Event::fall(a), s0);
        bd.build(s0).unwrap()
    }

    #[test]
    fn conflicts_are_detected() {
        let sg = conflicted();
        let conflicts = csc_conflicts(&sg);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].code, 0b01);
    }

    #[test]
    fn repair_inserts_a_state_signal() {
        let sg = conflicted();
        let (fixed, inserted) = repair_csc(&sg, &CscRepairConfig::default()).expect("repairable");
        assert_eq!(inserted.len(), 1);
        assert!(csc_conflicts(&fixed).is_empty());
        let report = simap_sg::check_all(&fixed);
        assert!(report.is_ok(), "{:?}", report.violations);
        // The repaired spec is now synthesizable.
        let mc = crate::mc::synthesize_mc(&fixed).expect("CSC now holds");
        assert!(mc.max_complexity() >= 1);
    }

    #[test]
    fn repaired_spec_flows_to_gates() {
        let sg = conflicted();
        let (fixed, _) = repair_csc(&sg, &CscRepairConfig::default()).expect("repairable");
        let report = crate::pipeline::Synthesis::from_state_graph(fixed)
            .config(&crate::Config::builder().literal_limit(2).build().unwrap())
            .run()
            .expect("flow succeeds");
        assert!(report.inserted.is_some());
        assert_eq!(report.verified, Some(true));
    }

    #[test]
    fn clean_spec_needs_nothing() {
        let mut bd = StateGraphBuilder::new(
            "clean",
            vec![Signal::new("a", SignalKind::Output), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        let s2 = bd.add_state(0b11);
        let s3 = bd.add_state(0b10);
        bd.add_arc(s0, Event::rise(SignalId(0)), s1);
        bd.add_arc(s1, Event::rise(SignalId(1)), s2);
        bd.add_arc(s2, Event::fall(SignalId(0)), s3);
        bd.add_arc(s3, Event::fall(SignalId(1)), s0);
        let sg = bd.build(s0).unwrap();
        let (fixed, inserted) = repair_csc(&sg, &CscRepairConfig::default()).expect("no-op");
        assert!(inserted.is_empty());
        assert_eq!(fixed.state_count(), sg.state_count());
    }

    #[test]
    fn all_input_spec_has_no_csc_obligation() {
        // CSC compares *non-input* events: a spec with only inputs has
        // nothing to implement and no conflicts to repair.
        let mut bd = StateGraphBuilder::new(
            "inputs-only",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Input)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        let s2 = bd.add_state(0b11);
        let s3 = bd.add_state(0b01);
        bd.add_arc(s0, Event::rise(SignalId(0)), s1);
        bd.add_arc(s1, Event::rise(SignalId(1)), s2);
        bd.add_arc(s2, Event::fall(SignalId(1)), s3);
        bd.add_arc(s3, Event::fall(SignalId(0)), s0);
        let sg = bd.build(s0).unwrap();
        assert!(csc_conflicts(&sg).is_empty());
        let (_, inserted) = repair_csc(&sg, &CscRepairConfig::default()).expect("nothing to do");
        assert!(inserted.is_empty());
    }

    #[test]
    fn input_blocked_conflict_is_reported() {
        // `a` is an input: the only place the state signal could toggle to
        // separate the conflict sits across input transitions that may not
        // be delayed, so repair must fail cleanly.
        let mut bd = StateGraphBuilder::new(
            "csc-input",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        let s2 = bd.add_state(0b11);
        let s3 = bd.add_state(0b01);
        bd.add_arc(s0, Event::rise(SignalId(0)), s1);
        bd.add_arc(s1, Event::rise(SignalId(1)), s2);
        bd.add_arc(s2, Event::fall(SignalId(1)), s3);
        bd.add_arc(s3, Event::fall(SignalId(0)), s0);
        let sg = bd.build(s0).unwrap();
        let err = repair_csc(&sg, &CscRepairConfig::default()).unwrap_err();
        assert!(matches!(err, CscRepairError::NoLegalInsertion { .. }));
    }
}
