//! End-to-end flow: specification → monotonous covers → decomposition →
//! standard-C netlist → cost accounting → speed-independence verification.

use crate::decompose::{DecomposeConfig, DecomposeResult};
use crate::mc::{McImpl, SignalBody};
use simap_netlist::{
    sop_gate, tech_decomp_literals, Circuit, Cost, Gate, GateFunc, NetId, VerifyConfig,
};
use simap_sg::{SignalKind, StateGraph};

/// Builds the standard-C architecture netlist for an implementation:
/// per-region cover gates, OR gates joining the one-hot covers, and a C
/// element per state-holding signal (combinational signals become a single
/// complex gate, Fig. 2b/c). Second-level OR gates keep their natural
/// fanin; see [`build_circuit_with_or_limit`] to split them.
pub fn build_circuit(sg: &StateGraph, mc: &McImpl) -> Circuit {
    build_circuit_with_or_limit(sg, mc, None)
}

/// Like [`build_circuit`], but when `or_limit` is given the second-level
/// OR gates joining multi-region covers are split into balanced trees of
/// at most `or_limit` inputs. The split is *free* with respect to
/// speed-independence: the first-level cover outputs are one-hot (§2.2:
/// "any valid Boolean decomposition of the second-level or gates will be
/// speed-independent").
pub fn build_circuit_with_or_limit(
    sg: &StateGraph,
    mc: &McImpl,
    or_limit: Option<usize>,
) -> Circuit {
    let mut circuit = Circuit::new();
    // One net per specification signal.
    let signal_nets: Vec<NetId> = sg
        .signals()
        .iter()
        .enumerate()
        .map(|(i, s)| circuit.add_net(s.name.clone(), Some(simap_sg::SignalId(i))))
        .collect();

    for simpl in &mc.signals {
        let sig_name = &sg.signals()[simpl.signal.0].name;
        let out_net = signal_nets[simpl.signal.0];
        match &simpl.body {
            SignalBody::Combinational { cover, .. } => {
                if cover.is_zero() || cover.is_one() {
                    // Constant signal: a degenerate gate.
                    let gate = Gate {
                        name: format!("{sig_name}_const"),
                        func: GateFunc::Sop(cover.clone()),
                        fanin: vec![],
                        output: out_net,
                    };
                    circuit.add_gate(gate).expect("fresh net");
                } else {
                    let gate =
                        sop_gate(format!("{sig_name}_cc"), cover, |v| signal_nets[v], out_net);
                    circuit.add_gate(gate).expect("fresh net");
                }
            }
            SignalBody::StandardC { set, reset } => {
                let mut side_net = |covers: &[crate::mc::RegionCover], side: &str| -> NetId {
                    let mut cover_nets = Vec::new();
                    for (j, rc) in covers.iter().enumerate() {
                        let net = circuit.add_net(format!("{sig_name}_{side}{j}"), None);
                        let gate = sop_gate(
                            format!("{sig_name}_{side}{j}_gate"),
                            &rc.cover,
                            |v| signal_nets[v],
                            net,
                        );
                        circuit.add_gate(gate).expect("fresh net");
                        cover_nets.push(net);
                    }
                    or_join(&mut circuit, cover_nets, sig_name, side, or_limit)
                };
                let set_net = side_net(set, "set");
                let reset_net = side_net(reset, "reset");
                let gate = Gate {
                    name: format!("{sig_name}_c"),
                    func: GateFunc::CElement,
                    fanin: vec![set_net, reset_net],
                    output: out_net,
                };
                circuit.add_gate(gate).expect("fresh net");
            }
        }
    }
    circuit
}

/// Joins one-hot cover nets with OR gates, optionally as a bounded-fanin
/// tree.
fn or_join(
    circuit: &mut Circuit,
    nets: Vec<NetId>,
    sig_name: &str,
    side: &str,
    or_limit: Option<usize>,
) -> NetId {
    let chunk_size = or_limit.unwrap_or(usize::MAX).max(2);
    let mut level = nets;
    if level.is_empty() {
        // A side with no excitation regions (degenerate): tie it to 0.
        let net = circuit.add_net(format!("{sig_name}_{side}_zero"), None);
        circuit
            .add_gate(Gate {
                name: format!("{sig_name}_{side}_zero"),
                func: GateFunc::Sop(simap_boolean::Cover::zero()),
                fanin: vec![],
                output: net,
            })
            .expect("fresh net");
        return net;
    }
    let mut counter = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for chunk in level.chunks(chunk_size) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let or_net = circuit.add_net(format!("{sig_name}_{side}_or{counter}"), None);
            counter += 1;
            let or_cover = simap_boolean::Cover::from_cubes((0..chunk.len()).map(|k| {
                simap_boolean::Cube::from_literals([simap_boolean::Literal::pos(k)])
                    .expect("literal cube")
            }));
            circuit
                .add_gate(Gate {
                    name: format!("{sig_name}_{side}_or{counter}"),
                    func: GateFunc::Sop(or_cover),
                    fanin: chunk.to_vec(),
                    output: or_net,
                })
                .expect("fresh net");
            next.push(or_net);
        }
        level = next;
    }
    level[0]
}

/// Builds the circuit with every cover gate *syntactically* decomposed
/// into a tree of at-most-`fanin_limit`-input gates (free input
/// inversions), with **no** state-graph insertion — the Siegel/De
/// Micheli-style baseline the paper compares against ("only decomposes
/// existing gates … without any further search of the implementation
/// space", §1) and the structural artifact behind the `tech_decomp`
/// cost model. The result is generally *not* speed-independent; feeding
/// it to [`simap_netlist::verify_speed_independence`] reproduces the
/// paper's Siegel column.
pub fn build_decomposed_circuit(sg: &StateGraph, mc: &McImpl, fanin_limit: usize) -> Circuit {
    assert!(fanin_limit >= 2);
    let mut circuit = Circuit::new();
    let signal_nets: Vec<NetId> = sg
        .signals()
        .iter()
        .enumerate()
        .map(|(i, s)| circuit.add_net(s.name.clone(), Some(simap_sg::SignalId(i))))
        .collect();

    // Realizes a factored tree as a gate network; returns the output net
    // and the phase with which it should be consumed.
    fn realize(
        tree: &simap_boolean::Factored,
        circuit: &mut Circuit,
        signal_nets: &[NetId],
        fanin_limit: usize,
        name: &str,
        counter: &mut usize,
    ) -> (NetId, bool) {
        use simap_boolean::{Cube, Factored, Literal};
        match tree {
            Factored::Literal(l) => (signal_nets[l.var], l.phase),
            Factored::Const(_) => {
                let net = circuit.add_net(format!("{name}_const{counter}"), None);
                *counter += 1;
                let cover = if matches!(tree, Factored::Const(true)) {
                    simap_boolean::Cover::one()
                } else {
                    simap_boolean::Cover::zero()
                };
                circuit
                    .add_gate(Gate {
                        name: format!("{name}_const"),
                        func: GateFunc::Sop(cover),
                        fanin: vec![],
                        output: net,
                    })
                    .expect("fresh net");
                (net, true)
            }
            Factored::And(children) | Factored::Or(children) => {
                let is_and = matches!(tree, Factored::And(_));
                let mut inputs: Vec<(NetId, bool)> = children
                    .iter()
                    .map(|c| realize(c, circuit, signal_nets, fanin_limit, name, counter))
                    .collect();
                // Chunk into a balanced tree of <=fanin_limit gates.
                while inputs.len() > 1 {
                    let mut next: Vec<(NetId, bool)> = Vec::new();
                    for chunk in inputs.chunks(fanin_limit) {
                        if chunk.len() == 1 {
                            next.push(chunk[0]);
                            continue;
                        }
                        let out = circuit.add_net(format!("{name}_n{counter}"), None);
                        *counter += 1;
                        let cover = if is_and {
                            simap_boolean::Cover::from_cube(
                                Cube::from_literals(
                                    chunk
                                        .iter()
                                        .enumerate()
                                        .map(|(k, &(_, phase))| Literal::new(k, phase)),
                                )
                                .expect("local vars distinct"),
                            )
                        } else {
                            simap_boolean::Cover::from_cubes(chunk.iter().enumerate().map(
                                |(k, &(_, phase))| {
                                    Cube::from_literals([Literal::new(k, phase)])
                                        .expect("single literal")
                                },
                            ))
                        };
                        circuit
                            .add_gate(Gate {
                                name: format!("{name}_g{counter}"),
                                func: GateFunc::Sop(cover),
                                fanin: chunk.iter().map(|&(n, _)| n).collect(),
                                output: out,
                            })
                            .expect("fresh net");
                        next.push((out, true));
                    }
                    inputs = next;
                }
                inputs[0]
            }
        }
    }

    let mut counter = 0usize;
    let emit = |cover: &simap_boolean::Cover,
                out: NetId,
                name: &str,
                circuit: &mut Circuit,
                counter: &mut usize| {
        let tree = simap_boolean::good_factor(cover);
        let (net, phase) = realize(&tree, circuit, &signal_nets, fanin_limit, name, counter);
        // Tie the realized net to the requested output with a buffer or
        // inverter (phase false).
        let cover = simap_boolean::Cover::from_cube(
            simap_boolean::Cube::from_literals([simap_boolean::Literal::new(0, phase)])
                .expect("single literal"),
        );
        circuit
            .add_gate(Gate {
                name: format!("{name}_out"),
                func: GateFunc::Sop(cover),
                fanin: vec![net],
                output: out,
            })
            .expect("fresh net");
    };

    for simpl in &mc.signals {
        let sig_name = sg.signals()[simpl.signal.0].name.clone();
        let out_net = signal_nets[simpl.signal.0];
        match &simpl.body {
            SignalBody::Combinational { cover, .. } => {
                emit(cover, out_net, &sig_name, &mut circuit, &mut counter);
            }
            SignalBody::StandardC { set, reset } => {
                let side = |covers: &[crate::mc::RegionCover],
                            label: &str,
                            circuit: &mut Circuit,
                            counter: &mut usize|
                 -> NetId {
                    let nets: Vec<NetId> = covers
                        .iter()
                        .enumerate()
                        .map(|(j, rc)| {
                            let n = circuit.add_net(format!("{sig_name}_{label}{j}"), None);
                            emit(&rc.cover, n, &format!("{sig_name}_{label}{j}"), circuit, counter);
                            n
                        })
                        .collect();
                    if nets.len() == 1 {
                        nets[0]
                    } else {
                        let or_net = circuit.add_net(format!("{sig_name}_{label}"), None);
                        let or_cover = simap_boolean::Cover::from_cubes((0..nets.len()).map(|k| {
                            simap_boolean::Cube::from_literals([simap_boolean::Literal::pos(k)])
                                .expect("single literal")
                        }));
                        circuit
                            .add_gate(Gate {
                                name: format!("{sig_name}_{label}_or"),
                                func: GateFunc::Sop(or_cover),
                                fanin: nets,
                                output: or_net,
                            })
                            .expect("fresh net");
                        or_net
                    }
                };
                let set_net = side(set, "set", &mut circuit, &mut counter);
                let reset_net = side(reset, "reset", &mut circuit, &mut counter);
                circuit
                    .add_gate(Gate {
                        name: format!("{sig_name}_c"),
                        func: GateFunc::CElement,
                        fanin: vec![set_net, reset_net],
                        output: out_net,
                    })
                    .expect("fresh net");
            }
        }
    }
    circuit
}

/// SI cost of an implementation in the §4 model: cover-gate literals (each
/// gate counted at its `min(F, F̄)` complexity) plus the pins of the OR
/// trees joining multi-region covers (decomposed to `fanin_limit`), plus
/// one C element per state-holding signal.
pub fn si_cost(mc: &McImpl, fanin_limit: usize) -> Cost {
    let mut literals = 0usize;
    let mut c_elements = 0usize;
    for s in &mc.signals {
        match &s.body {
            SignalBody::Combinational { complexity, .. } => literals += *complexity,
            SignalBody::StandardC { set, reset } => {
                c_elements += 1;
                for side in [set, reset] {
                    for rc in side {
                        literals += rc.complexity;
                    }
                    if side.len() > 1 {
                        literals += or_tree_pins(side.len(), fanin_limit);
                    }
                }
            }
        }
    }
    Cost { literals, c_elements }
}

/// Non-SI cost: every cover factored and decomposed to `fanin_limit`-input
/// gates with no hazard analysis (the SIS `tech_decomp` baseline).
pub fn non_si_cost(mc: &McImpl, fanin_limit: usize) -> Cost {
    let mut literals = 0usize;
    let mut c_elements = 0usize;
    for s in &mc.signals {
        match &s.body {
            SignalBody::Combinational { cover, .. } => {
                literals += tech_decomp_literals(cover, fanin_limit);
            }
            SignalBody::StandardC { set, reset } => {
                c_elements += 1;
                for side in [set, reset] {
                    for rc in side {
                        literals += tech_decomp_literals(&rc.cover, fanin_limit);
                    }
                    if side.len() > 1 {
                        literals += or_tree_pins(side.len(), fanin_limit);
                    }
                }
            }
        }
    }
    Cost { literals, c_elements }
}

fn or_tree_pins(k: usize, fanin_limit: usize) -> usize {
    if k <= 1 {
        k
    } else {
        k + (k - 1).div_ceil(fanin_limit.max(2) - 1) - 1
    }
}

/// Report of a full technology-mapping run on one specification.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Specification name.
    pub name: String,
    /// Gate-complexity histogram of the initial MC implementation
    /// (`hist[n]` = gates with n literals).
    pub initial_histogram: Vec<usize>,
    /// Number of signals inserted, or `None` when not implementable at the
    /// limit (the paper's "n.i.").
    pub inserted: Option<usize>,
    /// Names of the inserted signals.
    pub inserted_names: Vec<String>,
    /// SI decomposition cost (only meaningful when implementable).
    pub si_cost: Cost,
    /// Non-SI `tech_decomp` baseline cost of the *initial* implementation.
    pub non_si_cost: Cost,
    /// Speed-independence verification verdict of the final circuit:
    /// `Some(true)` verified, `Some(false)` refuted, `None` skipped or
    /// inconclusive.
    pub verified: Option<bool>,
    /// Exploration counters of the STG→state-graph reachability run that
    /// elaborated the specification (cache hits replay the cold run's
    /// counters). `None` when the flow started from an already-elaborated
    /// state graph.
    pub reach: Option<simap_stg::ReachStats>,
    /// The decomposition outcome (final SG, covers, steps).
    pub outcome: DecomposeResult,
}

/// Options for [`run_flow`].
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Decomposition configuration (literal limit etc.).
    pub decompose: DecomposeConfig,
    /// Verify the final netlist against the final state graph.
    pub verify: bool,
    /// State cap for verification.
    pub verify_config: VerifyConfig,
    /// Repair Complete State Coding violations by state-signal insertion
    /// before mapping (see [`crate::csc`]). Off by default: a CSC
    /// violation is then an error, as in the paper's setting.
    pub repair_csc: bool,
}

impl FlowConfig {
    /// Flow targeting gates of at most `limit` literals.
    pub fn with_limit(limit: usize) -> Self {
        FlowConfig {
            decompose: DecomposeConfig::with_limit(limit),
            verify: true,
            verify_config: VerifyConfig::default(),
            repair_csc: false,
        }
    }
}

/// Runs the full mapping flow on a specification.
///
/// Deprecated compatibility shim over [`crate::pipeline::Synthesis`]: the
/// pipeline exposes the same flow as typed stages, a unified
/// [`crate::Error`] and progress observers. One historical wart is kept
/// intentionally: when `repair_csc` is on and the repair *fails*, this
/// shim falls back to the unrepaired graph (so the error reported is the
/// plain CSC conflict, as before). The pipeline instead surfaces
/// [`crate::Error::CscRepairFailed`] with the original conflict list.
///
/// # Errors
/// Returns [`crate::mc::McError`] when the specification violates CSC
/// (and `repair_csc` is off or the repair fails).
#[deprecated(
    since = "0.2.0",
    note = "use `simap_core::pipeline::Synthesis` (e.g. \
            `Synthesis::from_state_graph(sg.clone()).flow_config(config).run()`)"
)]
pub fn run_flow(sg: &StateGraph, config: &FlowConfig) -> Result<FlowReport, crate::mc::McError> {
    use crate::pipeline::Synthesis;
    let run = |repair: bool| {
        let mut full = crate::config::Config::from_flow_config(config);
        full.flow.repair_csc = repair;
        Synthesis::from_state_graph(sg.clone()).config(&full).run()
    };
    let outcome = match run(config.repair_csc) {
        Err(crate::Error::CscRepairFailed { .. }) => run(false),
        other => other,
    };
    match outcome {
        Ok(report) => Ok(report),
        Err(crate::Error::CscViolation { signal, code, .. }) => {
            Err(crate::mc::McError::CscConflict { signal, code })
        }
        Err(e) => unreachable!("state-graph sources only fail on CSC: {e}"),
    }
}

/// Internal signals of a state graph (the inserted ones plus any the spec
/// already had).
pub fn internal_signal_names(sg: &StateGraph) -> Vec<String> {
    sg.signals().iter().filter(|s| s.kind == SignalKind::Internal).map(|s| s.name.clone()).collect()
}

#[cfg(test)]
#[allow(deprecated)] // `run_flow` stays covered until the shim is removed
mod tests {
    use super::*;
    use simap_netlist::{verify_speed_independence, VerifyConfig};
    use simap_sg::{check_all, Event, Signal, SignalId, StateGraphBuilder};

    fn handshake_sg() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "hs",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [bd.add_state(0b00), bd.add_state(0b01), bd.add_state(0b11), bd.add_state(0b10)];
        bd.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        bd.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        bd.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        bd.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        bd.build(s[0]).unwrap()
    }

    fn celement_sg(k: usize) -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            format!("c{k}"),
            (0..k)
                .map(|i| Signal::new(format!("a{i}"), SignalKind::Input))
                .chain(std::iter::once(Signal::new("c", SignalKind::Output)))
                .collect(),
        )
        .unwrap();
        let cbit = 1u64 << k;
        let full = (1u64 << k) - 1;
        let mut rising = std::collections::HashMap::new();
        let mut falling = std::collections::HashMap::new();
        for sub in 0..=full {
            rising.insert(sub, bd.add_state(sub));
            falling.insert(sub, bd.add_state(sub | cbit));
        }
        for sub in 0..=full {
            for i in 0..k {
                let bit = 1u64 << i;
                if sub & bit == 0 {
                    bd.add_arc(rising[&sub], Event::rise(SignalId(i)), rising[&(sub | bit)]);
                } else {
                    bd.add_arc(falling[&sub], Event::fall(SignalId(i)), falling[&(sub & !bit)]);
                }
            }
        }
        bd.add_arc(rising[&full], Event::rise(SignalId(k)), falling[&full]);
        bd.add_arc(falling[&0], Event::fall(SignalId(k)), rising[&0]);
        bd.build(rising[&0]).unwrap()
    }

    #[test]
    fn handshake_flow_verifies() {
        let sg = handshake_sg();
        let report = run_flow(&sg, &FlowConfig::with_limit(2)).unwrap();
        assert_eq!(report.inserted, Some(0));
        assert_eq!(report.verified, Some(true));
        assert!(report.si_cost.literals >= 1);
    }

    #[test]
    fn celement2_standard_c_verifies() {
        let sg = celement_sg(2);
        let report = run_flow(&sg, &FlowConfig::with_limit(2)).unwrap();
        assert_eq!(report.inserted, Some(0));
        assert_eq!(report.verified, Some(true), "standard-C C element must be SI");
        assert_eq!(report.si_cost.c_elements, 1);
        assert_eq!(report.si_cost.literals, 4);
    }

    #[test]
    fn celement3_decomposed_and_verified() {
        let sg = celement_sg(3);
        let report = run_flow(&sg, &FlowConfig::with_limit(2)).unwrap();
        assert!(report.inserted.unwrap_or(0) >= 1);
        assert_eq!(report.verified, Some(true), "decomposed C3 must stay SI");
        assert!(check_all(&report.outcome.sg).is_ok());
        // The final spec has inserted internal signals.
        assert!(!internal_signal_names(&report.outcome.sg).is_empty());
    }

    #[test]
    fn non_si_baseline_costs_initial_impl() {
        let sg = celement_sg(6);
        let report =
            run_flow(&sg, &FlowConfig { verify: false, ..FlowConfig::with_limit(2) }).unwrap();
        // Initial implementation: set = 6-lit AND, reset = 6-lit AND.
        // tech_decomp at 2: 10 + 10 literals + 1 C.
        assert_eq!(report.non_si_cost, Cost { literals: 20, c_elements: 1 });
        assert_eq!(report.initial_histogram.get(6), Some(&2));
    }

    #[test]
    fn circuit_structure_matches_architecture() {
        let sg = celement_sg(2);
        let mc = crate::mc::synthesize_mc(&sg).unwrap();
        let circuit = build_circuit(&sg, &mc);
        // 2 cover gates + 1 C element; 3 signal nets + 2 cover nets.
        assert_eq!(circuit.gates().len(), 3);
        assert_eq!(circuit.c_element_count(), 1);
        assert_eq!(circuit.nets().len(), 5);
    }

    #[test]
    fn or_limit_splits_wide_joins() {
        // A 3-branch dispatcher whose output q is *held* until a separate
        // acknowledge: q+ has three excitation regions with distinct codes
        // (one cover each, joined by an OR3) and q is state-holding.
        let src = "\
.model orjoin
.inputs r1 r2 r3 s
.outputs q
.graph
p r1+ r2+ r3+
r1+ q+
q+ r1-
r1- s+
s+ q-
q- s-
s- p
r2+ q+/2
q+/2 r2-
r2- s+/2
s+/2 q-/2
q-/2 s-/2
s-/2 p
r3+ q+/3
q+/3 r3-
r3- s+/3
s+/3 q-/3
q-/3 s-/3
s-/3 p
.marking { p }
.end
";
        let stg = simap_stg::parse_g(src).expect("parses");
        let sg = simap_stg::elaborate(&stg).expect("elaborates");
        assert!(simap_sg::check_all(&sg).is_ok());
        let mc = crate::mc::synthesize_mc(&sg).expect("CSC holds");

        let wide = build_circuit(&sg, &mc);
        let narrow = build_circuit_with_or_limit(&sg, &mc, Some(2));
        let or_fanin = |c: &simap_netlist::Circuit| {
            c.gates()
                .iter()
                .filter(|g| g.name.contains("_or"))
                .map(|g| g.fanin.len())
                .max()
                .unwrap_or(0)
        };
        assert!(or_fanin(&wide) >= 3, "unsplit circuit has a wide OR");
        assert!(or_fanin(&narrow) <= 2, "split OR gates must be 2-input");
        // The split is free w.r.t. speed-independence (one-hot covers).
        for circuit in [&wide, &narrow] {
            verify_speed_independence(circuit, &sg, &VerifyConfig::default())
                .expect("both forms are SI");
        }
        assert!(narrow.logic_depth() >= wide.logic_depth());
    }

    #[test]
    fn or_tree_pin_math() {
        assert_eq!(or_tree_pins(1, 2), 1);
        assert_eq!(or_tree_pins(2, 2), 2);
        assert_eq!(or_tree_pins(3, 2), 4); // OR2+OR2 = 4 pins
        assert_eq!(or_tree_pins(4, 4), 4);
    }
}
