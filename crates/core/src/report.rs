//! Structured emitters for flow results: markdown, CSV and JSON
//! renderings of Table 1-style batches, plus a per-circuit synthesis
//! dossier.
//!
//! The JSON emitters are hand-rolled (no serde — the build environment is
//! offline): deterministic key order, RFC 8259-compliant string escaping,
//! `null` for "not implementable" / "unverified".

use crate::flow::FlowReport;
use simap_netlist::Cost;
use std::fmt::Write as _;

/// One row of a batch report (a named flow result at several limits).
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Circuit name.
    pub name: String,
    /// Number of states of the elaborated specification.
    pub states: usize,
    /// Reports per literal limit, in the same order as the batch header.
    pub reports: Vec<FlowReport>,
}

/// Renders a batch as a GitHub-flavoured markdown table.
pub fn to_markdown(limits: &[usize], rows: &[BatchRow]) -> String {
    let mut out = String::new();
    let mut header = String::from("| circuit | states |");
    let mut rule = String::from("|---|---|");
    for l in limits {
        let _ = write!(header, " i={l} |");
        rule.push_str("---|");
    }
    header.push_str(" non-SI | SI | verified |");
    rule.push_str("---|---|---|");
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    for row in rows {
        let _ = write!(out, "| {} | {} |", row.name, row.states);
        for r in &row.reports {
            match r.inserted {
                Some(n) => {
                    let _ = write!(out, " {n} |");
                }
                None => {
                    let _ = write!(out, " n.i. |");
                }
            }
        }
        let first = row.reports.first();
        let (non_si, si, verified) = match first {
            Some(r) => (
                r.non_si_cost.to_string(),
                r.si_cost.to_string(),
                match r.verified {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                }
                .to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let _ = writeln!(out, " {non_si} | {si} | {verified} |");
    }
    out
}

/// Renders a batch as CSV (one line per circuit × limit).
pub fn to_csv(limits: &[usize], rows: &[BatchRow]) -> String {
    let mut out = String::from(
        "circuit,states,literal_limit,inserted,implementable,si_literals,si_celements,non_si_literals,non_si_celements,verified\n",
    );
    for row in rows {
        for (l, r) in limits.iter().zip(&row.reports) {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                row.name,
                row.states,
                l,
                r.inserted.map(|n| n.to_string()).unwrap_or_default(),
                r.inserted.is_some(),
                r.si_cost.literals,
                r.si_cost.c_elements,
                r.non_si_cost.literals,
                r.non_si_cost.c_elements,
                r.verified.map(|v| v.to_string()).unwrap_or_default(),
            );
        }
    }
    out
}

/// Escapes a string for inclusion in a JSON document (RFC 8259 §7).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", quoted.join(","))
}

fn json_usize_array(items: &[usize]) -> String {
    let rendered: Vec<String> = items.iter().map(usize::to_string).collect();
    format!("[{}]", rendered.join(","))
}

fn json_cost(cost: Cost) -> String {
    format!("{{\"literals\":{},\"c_elements\":{}}}", cost.literals, cost.c_elements)
}

fn json_opt<T: std::fmt::Display>(value: Option<T>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Renders one flow report as a JSON object (what `simap map --json`
/// prints). `inserted` is `null` when not implementable at the limit, and
/// `verified` is `null` when verification was skipped or inconclusive.
pub fn report_json(report: &FlowReport) -> String {
    format!(
        "{{\"name\":{},\"initial_histogram\":{},\"implementable\":{},\"inserted\":{},\
         \"inserted_names\":{},\"si_cost\":{},\"non_si_cost\":{},\"verified\":{}}}",
        json_string(&report.name),
        json_usize_array(&report.initial_histogram),
        report.inserted.is_some(),
        json_opt(report.inserted),
        json_string_array(&report.inserted_names),
        json_cost(report.si_cost),
        json_cost(report.non_si_cost),
        json_opt(report.verified),
    )
}

/// Renders a batch as one JSON document: the literal limits plus one
/// object per circuit whose `runs` align with `limits`.
pub fn to_json(limits: &[usize], rows: &[BatchRow]) -> String {
    let mut out = String::from("{\"limits\":");
    out.push_str(&json_usize_array(limits));
    out.push_str(",\"circuits\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"states\":{},\"runs\":[",
            json_string(&row.name),
            row.states
        );
        for (j, (limit, report)) in limits.iter().zip(&row.reports).enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"literal_limit\":{limit},\"report\":{}}}", report_json(report));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// A human-readable synthesis dossier for one flow result: histogram,
/// steps and costs.
pub fn dossier(report: &FlowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit: {}", report.name);
    let hist: Vec<String> = report
        .initial_histogram
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &c)| c > 0)
        .map(|(n, &c)| format!("{c}x{n}lit"))
        .collect();
    let _ = writeln!(out, "initial gates: {}", hist.join(" "));
    match report.inserted {
        Some(n) => {
            let _ = writeln!(out, "implementable with {n} inserted signal(s)");
        }
        None => {
            let _ = writeln!(out, "not implementable at this limit (n.i.)");
        }
    }
    for step in &report.outcome.steps {
        let _ = writeln!(
            out,
            "  {} = {}  [target {}, excess {}->{}]",
            step.signal, step.divisor, step.target, step.excess.0, step.excess.1
        );
    }
    let _ = writeln!(
        out,
        "cost: SI {} vs non-SI {}; verified: {:?}",
        report.si_cost, report.non_si_cost, report.verified
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Synthesis;
    use simap_sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};

    fn handshake_report() -> FlowReport {
        let mut bd = StateGraphBuilder::new(
            "hs",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [bd.add_state(0b00), bd.add_state(0b01), bd.add_state(0b11), bd.add_state(0b10)];
        bd.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        bd.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        bd.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        bd.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        let sg = bd.build(s[0]).unwrap();
        let config = crate::Config::builder().literal_limit(2).build().unwrap();
        Synthesis::from_state_graph(sg).config(&config).run().unwrap()
    }

    #[test]
    fn markdown_shape() {
        let report = handshake_report();
        let rows = vec![BatchRow { name: "hs".into(), states: 4, reports: vec![report] }];
        let md = to_markdown(&[2], &rows);
        assert!(md.starts_with("| circuit |"));
        assert!(md.contains("| hs | 4 | 0 |"), "{md}");
        assert!(md.contains("yes"));
    }

    #[test]
    fn csv_shape() {
        let report = handshake_report();
        let rows = vec![BatchRow { name: "hs".into(), states: 4, reports: vec![report] }];
        let csv = to_csv(&[2], &rows);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("circuit,states"));
        let data = lines.next().unwrap();
        assert!(data.starts_with("hs,4,2,0,true,"), "{data}");
    }

    #[test]
    fn json_escaping_is_rfc8259() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_shape() {
        let report = handshake_report();
        let single = report_json(&report);
        assert!(single.starts_with("{\"name\":\"hs\""), "{single}");
        assert!(single.contains("\"implementable\":true"));
        assert!(single.contains("\"verified\":true"));
        assert!(single.contains("\"si_cost\":{\"literals\":"));

        let rows = vec![BatchRow { name: "hs".into(), states: 4, reports: vec![report] }];
        let doc = to_json(&[2], &rows);
        assert!(doc.starts_with("{\"limits\":[2],\"circuits\":["), "{doc}");
        assert!(doc.contains("\"runs\":[{\"literal_limit\":2,\"report\":{"));
        assert!(doc.ends_with("]}"));
        // Balanced braces/brackets (a cheap well-formedness proxy, since
        // no JSON parser is available offline).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = doc.matches(open).count();
            let closes = doc.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {doc}");
        }
    }

    #[test]
    fn json_null_for_skipped_verification() {
        let mut report = handshake_report();
        report.verified = None;
        report.inserted = None;
        let single = report_json(&report);
        assert!(single.contains("\"implementable\":false"));
        assert!(single.contains("\"inserted\":null"));
        assert!(single.contains("\"verified\":null"));
    }

    #[test]
    fn dossier_mentions_costs() {
        let report = handshake_report();
        let text = dossier(&report);
        assert!(text.contains("circuit: hs"));
        assert!(text.contains("cost: SI"));
    }
}
