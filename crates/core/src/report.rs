//! Structured emitters for flow results: markdown, CSV and JSON
//! renderings of Table 1-style batches, a machine-readable benchmark
//! registry listing, plus a per-circuit synthesis dossier.
//!
//! The JSON emitters are hand-rolled on [`crate::json`] (no serde — the
//! build environment is offline): deterministic key order, RFC
//! 8259-compliant string escaping, `null` for "not implementable" /
//! "unverified". Every document they produce parses with
//! [`crate::json::parse`], which is how the `simap-serve` wire protocol
//! reads them back.

use crate::engine::Engine;
use crate::error::Error;
use crate::flow::FlowReport;
use crate::json;
use simap_netlist::Cost;
use simap_stg::ReachStats;
use std::fmt::Write as _;

/// One row of a batch report (a named flow result at several limits).
#[derive(Debug, Clone)]
pub struct BatchRow {
    /// Circuit name.
    pub name: String,
    /// Number of states of the elaborated specification.
    pub states: usize,
    /// Reports per literal limit, in the same order as the batch header.
    pub reports: Vec<FlowReport>,
}

/// Renders a batch as a GitHub-flavoured markdown table.
pub fn to_markdown(limits: &[usize], rows: &[BatchRow]) -> String {
    let mut out = String::new();
    let mut header = String::from("| circuit | states |");
    let mut rule = String::from("|---|---|");
    for l in limits {
        let _ = write!(header, " i={l} |");
        rule.push_str("---|");
    }
    header.push_str(" non-SI | SI | verified |");
    rule.push_str("---|---|---|");
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    for row in rows {
        let _ = write!(out, "| {} | {} |", row.name, row.states);
        for r in &row.reports {
            match r.inserted {
                Some(n) => {
                    let _ = write!(out, " {n} |");
                }
                None => {
                    let _ = write!(out, " n.i. |");
                }
            }
        }
        let first = row.reports.first();
        let (non_si, si, verified) = match first {
            Some(r) => (
                r.non_si_cost.to_string(),
                r.si_cost.to_string(),
                match r.verified {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                }
                .to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let _ = writeln!(out, " {non_si} | {si} | {verified} |");
    }
    out
}

/// Renders a batch as CSV (one line per circuit × limit).
pub fn to_csv(limits: &[usize], rows: &[BatchRow]) -> String {
    let mut out = String::from(
        "circuit,states,literal_limit,inserted,implementable,si_literals,si_celements,non_si_literals,non_si_celements,verified\n",
    );
    for row in rows {
        for (l, r) in limits.iter().zip(&row.reports) {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                row.name,
                row.states,
                l,
                r.inserted.map(|n| n.to_string()).unwrap_or_default(),
                r.inserted.is_some(),
                r.si_cost.literals,
                r.si_cost.c_elements,
                r.non_si_cost.literals,
                r.non_si_cost.c_elements,
                r.verified.map(|v| v.to_string()).unwrap_or_default(),
            );
        }
    }
    out
}

fn json_cost(cost: Cost) -> String {
    format!("{{\"literals\":{},\"c_elements\":{}}}", cost.literals, cost.c_elements)
}

fn json_reach(stats: Option<ReachStats>) -> String {
    match stats {
        Some(s) => {
            // Spill counters appear only for spill-strategy runs, so
            // documents from the in-memory strategies keep their exact
            // historical bytes.
            let spill = match s.spill {
                Some(c) => format!(
                    ",\"spill\":{{\"spilled_bytes\":{},\"files_created\":{},\
                     \"resident_peak\":{},\"table_bytes\":{},\"budget\":{},\"shards\":{},\
                     \"checkpoints_written\":{},\"checkpoint_bytes\":{},\"resume_level\":{}}}",
                    c.spilled_bytes,
                    c.files_created,
                    c.resident_peak,
                    c.table_bytes,
                    c.budget,
                    c.shards,
                    c.checkpoints_written,
                    c.checkpoint_bytes,
                    c.resume_level
                ),
                None => String::new(),
            };
            format!(
                "{{\"visited\":{},\"interned\":{},\"edges\":{},\"strategy\":{}{spill}}}",
                s.visited,
                s.interned,
                s.edges,
                json::quote(&s.strategy.to_string())
            )
        }
        None => "null".to_string(),
    }
}

/// Renders one flow report as a JSON object (what `simap map --json`
/// prints). `inserted` is `null` when not implementable at the limit,
/// `verified` is `null` when verification was skipped or inconclusive,
/// and `reach` is `null` when the flow started from an already-elaborated
/// state graph (no reachability ran).
pub fn report_json(report: &FlowReport) -> String {
    format!(
        "{{\"name\":{},\"initial_histogram\":{},\"implementable\":{},\"inserted\":{},\
         \"inserted_names\":{},\"si_cost\":{},\"non_si_cost\":{},\"verified\":{},\"reach\":{}}}",
        json::quote(&report.name),
        json::usize_array(&report.initial_histogram),
        report.inserted.is_some(),
        json::opt(report.inserted),
        json::string_array(&report.inserted_names),
        json_cost(report.si_cost),
        json_cost(report.non_si_cost),
        json::opt(report.verified),
        json_reach(report.reach),
    )
}

/// Renders a batch as one JSON document: the literal limits plus one
/// object per circuit whose `runs` align with `limits`.
pub fn to_json(limits: &[usize], rows: &[BatchRow]) -> String {
    let mut out = String::from("{\"limits\":");
    out.push_str(&json::usize_array(limits));
    out.push_str(",\"circuits\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"states\":{},\"runs\":[",
            json::quote(&row.name),
            row.states
        );
        for (j, (limit, report)) in limits.iter().zip(&row.reports).enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"literal_limit\":{limit},\"report\":{}}}", report_json(report));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders the embedded benchmark registry as one machine-readable JSON
/// document — the listing shared by `simap bench list --json` and the
/// service's `GET /benchmarks` (both must stay byte-identical).
///
/// Each entry is elaborated through the engine's cache to report its
/// signal and state counts, so a second call (or a service answering the
/// route repeatedly) skips reachability entirely.
///
/// # Errors
/// The first elaboration failure, should any embedded benchmark fail
/// under the engine's configuration.
pub fn benchmarks_json(engine: &Engine) -> Result<String, Error> {
    let mut out = String::from("{\"benchmarks\":[");
    for (i, name) in engine.registry().names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let elaborated = engine.benchmark(*name).elaborate()?;
        let sg = elaborated.state_graph();
        let _ = write!(
            out,
            "{{\"name\":{},\"signals\":{},\"states\":{}}}",
            json::quote(name),
            sg.signal_count(),
            sg.state_count()
        );
    }
    out.push_str("]}");
    Ok(out)
}

/// A human-readable synthesis dossier for one flow result: histogram,
/// steps and costs.
pub fn dossier(report: &FlowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit: {}", report.name);
    let hist: Vec<String> = report
        .initial_histogram
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &c)| c > 0)
        .map(|(n, &c)| format!("{c}x{n}lit"))
        .collect();
    let _ = writeln!(out, "initial gates: {}", hist.join(" "));
    match report.inserted {
        Some(n) => {
            let _ = writeln!(out, "implementable with {n} inserted signal(s)");
        }
        None => {
            let _ = writeln!(out, "not implementable at this limit (n.i.)");
        }
    }
    for step in &report.outcome.steps {
        let _ = writeln!(
            out,
            "  {} = {}  [target {}, excess {}->{}]",
            step.signal, step.divisor, step.target, step.excess.0, step.excess.1
        );
    }
    let _ = writeln!(
        out,
        "cost: SI {} vs non-SI {}; verified: {:?}",
        report.si_cost, report.non_si_cost, report.verified
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Synthesis;
    use simap_sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};

    fn handshake_report() -> FlowReport {
        let mut bd = StateGraphBuilder::new(
            "hs",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [bd.add_state(0b00), bd.add_state(0b01), bd.add_state(0b11), bd.add_state(0b10)];
        bd.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        bd.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        bd.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        bd.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        let sg = bd.build(s[0]).unwrap();
        let config = crate::Config::builder().literal_limit(2).build().unwrap();
        Synthesis::from_state_graph(sg).config(&config).run().unwrap()
    }

    #[test]
    fn markdown_shape() {
        let report = handshake_report();
        let rows = vec![BatchRow { name: "hs".into(), states: 4, reports: vec![report] }];
        let md = to_markdown(&[2], &rows);
        assert!(md.starts_with("| circuit |"));
        assert!(md.contains("| hs | 4 | 0 |"), "{md}");
        assert!(md.contains("yes"));
    }

    #[test]
    fn csv_shape() {
        let report = handshake_report();
        let rows = vec![BatchRow { name: "hs".into(), states: 4, reports: vec![report] }];
        let csv = to_csv(&[2], &rows);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("circuit,states"));
        let data = lines.next().unwrap();
        assert!(data.starts_with("hs,4,2,0,true,"), "{data}");
    }

    #[test]
    fn json_shape() {
        let report = handshake_report();
        let single = report_json(&report);
        assert!(single.starts_with("{\"name\":\"hs\""), "{single}");
        assert!(single.contains("\"implementable\":true"));
        assert!(single.contains("\"verified\":true"));
        assert!(single.contains("\"si_cost\":{\"literals\":"));
        // The handshake report started from a pre-elaborated state graph:
        // no reachability ran, so the counters are null.
        assert!(single.ends_with("\"reach\":null}"), "{single}");

        let rows = vec![BatchRow { name: "hs".into(), states: 4, reports: vec![report] }];
        let doc = to_json(&[2], &rows);
        assert!(doc.starts_with("{\"limits\":[2],\"circuits\":["), "{doc}");
        assert!(doc.contains("\"runs\":[{\"literal_limit\":2,\"report\":{"));
        assert!(doc.ends_with("]}"));
        // The emitted document must parse with the crate's own parser and
        // carry the expected structure.
        let parsed = crate::json::parse(&doc).expect("emitters produce valid JSON");
        let circuits = parsed.get("circuits").and_then(crate::json::Json::as_array).unwrap();
        assert_eq!(circuits.len(), 1);
        assert_eq!(
            circuits[0].get("name").and_then(crate::json::Json::as_str),
            Some("hs"),
            "{doc}"
        );
    }

    #[test]
    fn json_reach_counters_for_elaborated_sources() {
        let config = crate::Config::builder().build().unwrap();
        let report = Synthesis::from_benchmark("half").config(&config).run().unwrap();
        let single = report_json(&report);
        assert!(single.contains("\"reach\":{\"visited\":6,\"interned\":6,\"edges\":"), "{single}");
        assert!(single.contains("\"strategy\":\"packed\""), "{single}");
    }

    #[test]
    fn benchmarks_json_lists_the_registry() {
        let engine = Engine::default();
        let doc = benchmarks_json(&engine).unwrap();
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        let entries = parsed.get("benchmarks").and_then(crate::json::Json::as_array).unwrap();
        assert_eq!(entries.len(), engine.registry().names().len());
        let half = entries
            .iter()
            .find(|e| e.get("name").and_then(crate::json::Json::as_str) == Some("half"))
            .expect("half is embedded");
        assert_eq!(half.get("states").and_then(crate::json::Json::as_usize), Some(6));
        // The listing elaborated through the engine cache: a second call
        // is answered from it.
        let misses = engine.cache_stats().misses;
        assert_eq!(benchmarks_json(&engine).unwrap(), doc);
        assert_eq!(engine.cache_stats().misses, misses);
    }

    #[test]
    fn json_null_for_skipped_verification() {
        let mut report = handshake_report();
        report.verified = None;
        report.inserted = None;
        let single = report_json(&report);
        assert!(single.contains("\"implementable\":false"));
        assert!(single.contains("\"inserted\":null"));
        assert!(single.contains("\"verified\":null"));
    }

    #[test]
    fn dossier_mentions_costs() {
        let report = handshake_report();
        let text = dossier(&report);
        assert!(text.contains("circuit: hs"));
        assert!(text.contains("cost: SI"));
    }
}
