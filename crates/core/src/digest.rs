//! Small stable hashing for content-addressed keys.
//!
//! The persistent result cache of `simap serve` addresses finished
//! reports by a digest of the request's identity plus the full
//! [`crate::Config`] fingerprint. Those digests must be stable across
//! processes, restarts and compiler versions — which rules out
//! [`std::hash::Hasher`] implementations with randomized or unspecified
//! state — and the build environment has no hashing crates. FNV-1a fits:
//! a dozen lines, well-distributed for short keys, and fully specified.
//!
//! A 64-bit digest is *not* collision-proof; consumers that cannot
//! tolerate a collision (the result cache) must store the full
//! uncompressed key alongside the addressed content and verify it on
//! read.

/// Incremental FNV-1a 64-bit hasher with a stable, documented state
/// sequence (offset basis `0xcbf29ce484222325`, prime `0x100000001b3`).
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: 0xcbf2_9ce4_8422_2325 }
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Absorbs `bytes` into the running digest.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
