//! # simap-core
//!
//! The paper's primary contribution: technology mapping of
//! speed-independent circuits by combinational decomposition and
//! resynthesis (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DATE 1997).
//!
//! The algorithmic layers:
//! 1. [`mc`] — monotonous-cover synthesis for the standard-C architecture;
//! 2. [`insertion`] — speed-independence-preserving event insertion
//!    (I-partitions, well-formed SIP excitation regions, the Fig. 3
//!    splitting scheme);
//! 3. [`progress`] — Property 3.1/3.2 filters ranking candidate divisors;
//! 4. [`mod@decompose`] — the main loop: pick the most complex cover, divide
//!    it (kernels / OR / AND decompositions), insert the best divisor's
//!    signal, resynthesize every cover from scratch;
//! 5. [`flow`] — netlist construction and §4 cost accounting.
//!
//! They are driven through the staged [`pipeline`] API: a [`Synthesis`]
//! builder producing typed stage artifacts (elaborated state graph,
//! covers, decomposition outcome, mapped netlist, verdict), a unified
//! [`Error`] and per-step [`FlowObserver`] progress hooks.
//!
//! ```
//! use simap_core::pipeline::Synthesis;
//!
//! let report = Synthesis::from_benchmark("hazard").literal_limit(2).run()?;
//! assert!(report.inserted.is_some()); // implementable with 2-input gates
//! assert_eq!(report.verified, Some(true)); // and provably speed-independent
//! # Ok::<(), simap_core::Error>(())
//! ```
//!
//! Stepping through the stages instead of running one-shot:
//!
//! ```
//! use simap_core::pipeline::Synthesis;
//!
//! let covers = Synthesis::from_benchmark("hazard").elaborate()?.covers()?;
//! assert!(covers.mc().max_complexity() > 2); // why insertion is needed
//! let verified = covers.decompose()?.map().verify()?;
//! assert_eq!(verified.verdict(), Some(true));
//! # Ok::<(), simap_core::Error>(())
//! ```
//!
//! ## Deprecation policy
//!
//! Flow-level free functions superseded by the pipeline (today:
//! [`flow::run_flow`]) remain available as `#[deprecated]` shims with
//! unchanged behavior for at least one minor release before removal.
//! Algorithm primitives ([`mc::synthesize_mc`], [`csc::repair_csc`],
//! [`insertion::compute_insertion`], [`flow::build_circuit`], …) are the
//! stable substrate the pipeline itself is built on and are **not**
//! deprecated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csc;
pub mod decompose;
pub mod error;
pub mod flow;
pub mod insertion;
pub mod mc;
pub mod observer;
pub mod pipeline;
pub mod progress;
pub mod report;

pub use csc::{csc_conflicts, repair_csc, CscConflict, CscRepairConfig, CscRepairError};
pub use decompose::{
    decompose, decompose_with, excess, AckMode, DecomposeConfig, DecomposeResult, DecomposeStep,
};
pub use error::{Error, Stage};
#[allow(deprecated)] // the shim stays reachable from its historical path
pub use flow::run_flow;
pub use flow::{
    build_circuit, build_circuit_with_or_limit, build_decomposed_circuit, non_si_cost, si_cost,
    FlowConfig, FlowReport,
};
pub use insertion::{
    compute_insertion, compute_insertion_from_block, insert_function, insert_signal, Insertion,
    InsertionError,
};
pub use mc::{
    synthesize_mc, synthesize_signal, validate_mc, McError, McImpl, RegionCover, SignalBody,
    SignalImpl,
};
pub use observer::{FlowObserver, NullObserver, RecordingObserver, StderrObserver};
pub use pipeline::{Batch, Covers, Decomposed, Elaborated, Mapped, Synthesis, Verified};
pub use progress::{estimate_progress, replaces_trigger, ProgressEstimate};
pub use report::{dossier, to_csv, to_markdown, BatchRow};
