//! # simap-core
//!
//! The paper's primary contribution: technology mapping of
//! speed-independent circuits by combinational decomposition and
//! resynthesis (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DATE 1997).
//!
//! The pipeline:
//! 1. [`mc`] — monotonous-cover synthesis for the standard-C architecture;
//! 2. [`insertion`] — speed-independence-preserving event insertion
//!    (I-partitions, well-formed SIP excitation regions, the Fig. 3
//!    splitting scheme);
//! 3. [`progress`] — Property 3.1/3.2 filters ranking candidate divisors;
//! 4. [`mod@decompose`] — the main loop: pick the most complex cover, divide
//!    it (kernels / OR / AND decompositions), insert the best divisor's
//!    signal, resynthesize every cover from scratch;
//! 5. [`flow`] — netlist construction, §4 cost accounting and
//!    speed-independence verification.
//!
//! ```
//! use simap_core::{run_flow, FlowConfig};
//! let stg = simap_stg::benchmark("hazard").ok_or("unknown benchmark")?;
//! let sg = simap_stg::elaborate(&stg)?;
//! let report = run_flow(&sg, &FlowConfig::with_limit(2))?;
//! assert!(report.inserted.is_some()); // implementable with 2-input gates
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csc;
pub mod decompose;
pub mod flow;
pub mod insertion;
pub mod mc;
pub mod progress;
pub mod report;

pub use csc::{csc_conflicts, repair_csc, CscConflict, CscRepairConfig, CscRepairError};
pub use decompose::{decompose, excess, AckMode, DecomposeConfig, DecomposeResult, DecomposeStep};
pub use flow::{build_circuit, build_circuit_with_or_limit, build_decomposed_circuit, non_si_cost, run_flow, si_cost, FlowConfig, FlowReport};
pub use insertion::{compute_insertion, compute_insertion_from_block, insert_function, insert_signal, Insertion, InsertionError};
pub use mc::{synthesize_mc, synthesize_signal, validate_mc, McError, McImpl, RegionCover, SignalBody, SignalImpl};
pub use report::{dossier, to_csv, to_markdown, BatchRow};
pub use progress::{estimate_progress, replaces_trigger, ProgressEstimate};
