//! # simap-core
//!
//! The paper's primary contribution: technology mapping of
//! speed-independent circuits by combinational decomposition and
//! resynthesis (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DATE 1997).
//!
//! The algorithmic layers:
//! 1. [`mc`] — monotonous-cover synthesis for the standard-C architecture;
//! 2. [`insertion`] — speed-independence-preserving event insertion
//!    (I-partitions, well-formed SIP excitation regions, the Fig. 3
//!    splitting scheme);
//! 3. [`progress`] — Property 3.1/3.2 filters ranking candidate divisors;
//! 4. [`mod@decompose`] — the main loop: pick the most complex cover, divide
//!    it (kernels / OR / AND decompositions), insert the best divisor's
//!    signal, resynthesize every cover from scratch;
//! 5. [`flow`] — netlist construction and §4 cost accounting.
//!
//! ## Execution layer
//!
//! Runs are described by one validated [`Config`] and executed through an
//! [`Engine`] — a cheaply-cloneable, thread-safe handle owning the shared
//! immutable inputs (benchmark registry, gate library) and a memoized
//! elaboration cache, so repeated syntheses of the same specification
//! skip STG→state-graph reachability. The engine is the middle of three
//! entry tiers: the `simap` CLI wraps it for one-shot processes, this
//! API embeds it in long-running programs, and the `simap-serve` crate
//! hosts one shared engine behind an HTTP service (`simap serve`) so
//! many clients reuse the same warm cache — all three produce identical
//! reports for identical requests (the service byte-compares against
//! `simap map --json` in CI):
//!
//! ```
//! use simap_core::{Config, Engine};
//!
//! let engine = Engine::new(Config::builder().literal_limit(2).build()?);
//! let report = engine.synthesize("hazard")?;
//! assert!(report.inserted.is_some()); // implementable with 2-input gates
//! assert_eq!(report.verified, Some(true)); // and provably speed-independent
//!
//! let again = engine.synthesize("hazard")?; // elaboration answered from cache
//! assert_eq!(report.inserted, again.inserted);
//! assert_eq!(engine.cache_stats().hits, 1);
//! # Ok::<(), simap_core::Error>(())
//! ```
//!
//! Elaboration runs on one of **four reachability strategies** selected
//! through [`ConfigBuilder::reach_strategy`]:
//!
//! * [`simap_stg::ReachStrategy::Packed`] (default) — bit-packed
//!   markings in a contiguous arena, mask-compiled transitions, optional
//!   parallel frontier expansion via [`ConfigBuilder::reach_jobs`]; the
//!   fastest way to an explicit graph.
//! * [`simap_stg::ReachStrategy::Explicit`] — the legacy explicit BFS,
//!   kept as a differential oracle; byte-identical graphs and errors.
//! * [`simap_stg::ReachStrategy::Symbolic`] — BDD fixed-point
//!   reachability for 1-safe nets ([`simap_stg::symbolic`]). It wins
//!   when the *size* of the state space is the question: the exact count
//!   and the CSC verdict come out of the Boolean representation without
//!   enumerating a marking, so nets past the enumerative `StateLimit`
//!   stay analyzable through [`simap_stg::reach_symbolic`]. An explicit
//!   graph (byte-identical to the other strategies, with the symbolic
//!   count cross-checked) is materialized only up to
//!   [`ConfigBuilder::reach_materialize_limit`].
//! * [`simap_stg::ReachStrategy::Spill`] — the packed engine with an
//!   external-memory working set ([`simap_stg::extmem`]): marking pages,
//!   frontier runs and the edge log cycle through scratch files so the
//!   resident set stays under [`ConfigBuilder::reach_memory_budget`]
//!   (placement via [`ConfigBuilder::reach_spill_dir`], dedup
//!   partitioning via [`ConfigBuilder::reach_shards`]). It wins when the
//!   graph itself is needed — synthesis, not just analysis — and the
//!   state space is larger than RAM; expect scratch traffic on the
//!   order of the arena plus 16 bytes per edge.
//!
//! All four produce the same graphs and agree on error families; the
//! strategy — and its strategy-specific knobs — are part of the
//! elaboration cache key. [`Elaborated::reach_stats`] exposes the
//! visited/interned/edge counters of the run that produced a graph
//! (cache hits replay the cold run's counters), plus per-run spill
//! counters under the spill strategy.
//!
//! The elaboration cache itself is unbounded by default; long-running
//! hosts (the HTTP service) can cap it with
//! [`ConfigBuilder::cache_capacity`] — least-recently-used entries are
//! evicted past the cap, and [`Engine::cache_stats`] reports the
//! eviction count alongside hits and misses.
//!
//! [`Batch`] drives many specifications through one configuration —
//! sequentially or on a worker pool with deterministic, order-preserving
//! results:
//!
//! ```
//! use simap_core::{Config, Engine};
//!
//! let engine = Engine::new(Config::builder().verify(false).build()?);
//! let rows = engine.batch(["half", "hazard"]).limits([2]).jobs(2).run()?;
//! assert_eq!(rows.len(), 2);
//! # Ok::<(), simap_core::Error>(())
//! ```
//!
//! **Which jobs knob does what.** Four deterministic fan-outs compose
//! freely, one per granularity:
//!
//! | Knob | Fans out | Scope |
//! |------|----------|-------|
//! | [`ConfigBuilder::reach_jobs`] | frontier expansion inside one elaboration | one STG → state-graph run |
//! | [`ConfigBuilder::synth_jobs`] | per-signal cover synthesis ([`mc::synthesize_mc_jobs`]) and decomposition candidate evaluation ([`decompose::decompose_with_jobs`]) | one flow's Covers + Decompose stages |
//! | [`Batch::jobs`] | whole specifications across a worker pool | many flows, one process |
//! | `simap serve --jobs` | concurrent HTTP jobs over one shared engine | many flows, many clients |
//!
//! `synth_jobs` merges per-signal results in signal-index order and
//! ranks decomposition candidates exactly as the sequential loop does,
//! so reports, [`FlowObserver`] event sequences and netlists are
//! byte-identical at any fan-out; like `reach_jobs` it is excluded from
//! the elaboration cache key:
//!
//! ```
//! use simap_core::{report_json, Config, Engine};
//!
//! let engine = Engine::new(Config::builder().synth_jobs(4).build()?);
//! let report = engine.synthesize("hazard")?;
//! let sequential = Engine::new(Config::builder().build()?).synthesize("hazard")?;
//! assert_eq!(report_json(&report), report_json(&sequential));
//! # Ok::<(), simap_core::Error>(())
//! ```
//!
//! Stepping through the typed stages instead of running one-shot — every
//! stage artifact is `Send + 'static` and can be moved across threads:
//!
//! ```
//! use simap_core::pipeline::Synthesis;
//!
//! let covers = Synthesis::from_benchmark("hazard").elaborate()?.covers()?;
//! assert!(covers.mc().max_complexity() > 2); // why insertion is needed
//! let verified = covers.decompose()?.map().verify()?;
//! assert_eq!(verified.verdict(), Some(true));
//! # Ok::<(), simap_core::Error>(())
//! ```
//!
//! Progress hooks ([`FlowObserver`], [`pipeline::Synthesis::observer`])
//! have a serializable form — [`FlowEvent`] with a stable one-line JSON
//! rendering, adapted by [`EventObserver`] — which is what `simap-serve`
//! streams to NDJSON clients. Reports render through [`report`]
//! (markdown / CSV / JSON, including [`report::benchmarks_json`], the
//! registry listing the CLI and the service share) on the hand-rolled
//! [`json`] module, whose recursive-descent [`json::parse`] is the other
//! half of the service's wire protocol.
//!
//! ## Deprecation policy
//!
//! Configuration spread across per-stage setters
//! (`Synthesis::literal_limit`, `Batch::verify`, …) was superseded in 0.3
//! by [`Config`]/[`Engine`]; the setters remain available as
//! `#[deprecated]` shims with unchanged behavior for at least one minor
//! release before removal, as does the flow-level free function
//! [`flow::run_flow`] (deprecated in 0.2). Algorithm primitives
//! ([`mc::synthesize_mc`], [`csc::repair_csc`],
//! [`insertion::compute_insertion`], [`flow::build_circuit`], …) are the
//! stable substrate the pipeline itself is built on and are **not**
//! deprecated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod csc;
pub mod decompose;
pub mod digest;
pub mod engine;
pub mod error;
pub mod flow;
pub mod insertion;
pub mod json;
pub mod mc;
pub mod observer;
pub mod pipeline;
pub mod progress;
pub mod report;

pub use config::{Config, ConfigBuilder};
pub use csc::{csc_conflicts, repair_csc, CscConflict, CscRepairConfig, CscRepairError};
pub use decompose::{
    decompose, decompose_with, excess, AckMode, DecomposeConfig, DecomposeResult, DecomposeStep,
};
pub use digest::{fnv1a64, Fnv64};
pub use engine::{CacheStats, Engine};
pub use error::{Error, Stage};
#[allow(deprecated)] // the shim stays reachable from its historical path
pub use flow::run_flow;
pub use flow::{
    build_circuit, build_circuit_with_or_limit, build_decomposed_circuit, non_si_cost, si_cost,
    FlowConfig, FlowReport,
};
pub use insertion::{
    compute_insertion, compute_insertion_from_block, insert_function, insert_signal, Insertion,
    InsertionError,
};
pub use mc::{
    synthesize_mc, synthesize_mc_jobs, synthesize_signal, validate_mc, McError, McImpl,
    RegionCover, SignalBody, SignalImpl,
};
pub use observer::{
    EventObserver, FlowEvent, FlowObserver, NullObserver, RecordingObserver, StderrObserver,
};
pub use pipeline::{Batch, Covers, Decomposed, Elaborated, Mapped, Synthesis, Verified};
pub use progress::{estimate_progress, replaces_trigger, ProgressEstimate};
pub use report::{benchmarks_json, dossier, report_json, to_csv, to_json, to_markdown, BatchRow};
