//! The technology-mapping decomposition loop (§3).
//!
//! ```text
//! while circuit is not implementable do
//!     calculate monotonous covers for all events;
//!     a* = event with the most complex cover;
//!     D  = divisors of c(a*);                      (§3.1)
//!     for each f ∈ D: I-partition, progress check; (§3.2, §3.3)
//!     insert the best divisor's signal;            (Fig. 3)
//!     recompute every cover from scratch;          (resynthesis)
//! ```
//!
//! Every accepted insertion is committed only after the rebuilt state
//! graph `A′` passes all property checks and the resynthesized covers
//! strictly reduce the *excess* (sum over gates of `literals − limit`),
//! which guarantees termination.

use crate::insertion::{compute_insertion, insert_signal, Insertion};
use crate::mc::{
    run_parallel, synthesize_mc_jobs, synthesize_signal, McError, McImpl, SignalBody, SignalImpl,
};
use crate::observer::{FlowObserver, NullObserver};
use crate::progress::estimate_progress;
use simap_boolean::{generate_divisors, Cover, DivisorConfig};
use simap_sg::{check_all, SignalId, SignalKind, StateGraph};
use std::collections::HashSet;

/// How transitions of inserted signals may be acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// The paper's method: any cover may acknowledge the new signal
    /// (sharing + global acknowledgment, Fig. 4).
    Global,
    /// The Siegel/De Micheli-style baseline: the new signal may only be
    /// acknowledged by the covers of the signal being decomposed
    /// (fanout 1, local acknowledgment).
    Local,
}

/// Configuration of the decomposition loop.
#[derive(Debug, Clone)]
pub struct DecomposeConfig {
    /// Gate complexity target `i`: every cover must fit `i` literals.
    pub literal_limit: usize,
    /// Hard cap on inserted signals.
    pub max_insertions: usize,
    /// How many top-ranked candidates are actually tried per iteration.
    pub max_candidates_tried: usize,
    /// Divisor-generation tuning.
    pub divisors: DivisorConfig,
    /// Acknowledgment policy.
    pub ack_mode: AckMode,
    /// Whether the Property 3.1/3.2 filter ranks candidates (ablation
    /// hook; with `false`, candidates are tried in generation order).
    pub use_progress_filter: bool,
    /// Whether each algebraic divisor is also tried in its boolean
    /// "C-element-ified" refinement `f ∨ (a*·⋁lits(f))` (§3.2/§5's
    /// refinement step; ablation hook — without it, wide C-element covers
    /// are typically not 2-input implementable).
    pub use_boolean_refinement: bool,
}

impl DecomposeConfig {
    /// Default configuration for a literal limit.
    pub fn with_limit(literal_limit: usize) -> Self {
        DecomposeConfig {
            literal_limit,
            max_insertions: 64,
            max_candidates_tried: 16,
            divisors: DivisorConfig::default(),
            ack_mode: AckMode::Global,
            use_progress_filter: true,
            use_boolean_refinement: true,
        }
    }
}

/// One committed decomposition step.
#[derive(Debug, Clone)]
pub struct DecomposeStep {
    /// Name given to the inserted signal.
    pub signal: String,
    /// The divisor function (rendered over the then-current signals).
    pub divisor: String,
    /// The event whose cover was being decomposed.
    pub target: String,
    /// Excess before → after.
    pub excess: (usize, usize),
}

/// Result of the decomposition loop.
#[derive(Debug, Clone)]
pub struct DecomposeResult {
    /// The final state graph (original plus inserted signals).
    pub sg: StateGraph,
    /// The final monotonous-cover implementation.
    pub mc: McImpl,
    /// Names of inserted signals, in insertion order.
    pub inserted: Vec<String>,
    /// Whether every gate now fits the literal limit.
    pub implementable: bool,
    /// The committed steps, for reporting.
    pub steps: Vec<DecomposeStep>,
}

/// Total amount by which gates exceed the literal limit.
pub fn excess(mc: &McImpl, limit: usize) -> usize {
    let mut total = 0;
    for s in &mc.signals {
        match &s.body {
            SignalBody::Combinational { complexity, .. } => {
                total += complexity.saturating_sub(limit);
            }
            SignalBody::StandardC { set, reset } => {
                for c in set.iter().chain(reset.iter()) {
                    total += c.complexity.saturating_sub(limit);
                }
            }
        }
    }
    total
}

/// Runs the decomposition loop on a specification.
///
/// # Errors
/// Returns [`McError`] when the input specification violates CSC (no
/// implementation exists at all). A specification that *has* covers but
/// cannot be decomposed to the limit is reported via
/// `DecomposeResult::implementable == false` (the paper's "n.i.").
pub fn decompose(sg: &StateGraph, config: &DecomposeConfig) -> Result<DecomposeResult, McError> {
    decompose_with(sg, config, &mut NullObserver)
}

/// Like [`decompose`], but fires
/// [`FlowObserver::on_decompose_step`] for every committed insertion —
/// the hook behind [`crate::pipeline::Synthesis::observer`].
///
/// # Errors
/// See [`decompose`].
pub fn decompose_with(
    sg: &StateGraph,
    config: &DecomposeConfig,
    observer: &mut dyn FlowObserver,
) -> Result<DecomposeResult, McError> {
    decompose_with_jobs(sg, config, 1, observer)
}

/// Like [`decompose_with`], but fans the independent per-candidate and
/// per-signal synthesis work across `jobs` worker threads. Candidates are
/// still folded in ranked order and signals merged in signal-index order,
/// so the result is byte-identical to the sequential run — `jobs` only
/// changes wall-clock time, never output (which is why
/// `Config::synth_jobs` is excluded from the engine's elaboration key).
///
/// # Errors
/// See [`decompose`].
pub fn decompose_with_jobs(
    sg: &StateGraph,
    config: &DecomposeConfig,
    jobs: usize,
    observer: &mut dyn FlowObserver,
) -> Result<DecomposeResult, McError> {
    let mut sg = sg.clone();
    let mut mc = synthesize_mc_jobs(&sg, jobs)?;
    let mut inserted: Vec<String> = Vec::new();
    let mut steps: Vec<DecomposeStep> = Vec::new();

    loop {
        let over = mc.gates_over(config.literal_limit);
        if over.is_empty() {
            return Ok(DecomposeResult { sg, mc, inserted, implementable: true, steps });
        }
        if inserted.len() >= config.max_insertions {
            return Ok(DecomposeResult { sg, mc, inserted, implementable: false, steps });
        }

        let excess_now = excess(&mc, config.literal_limit);
        let mut committed = false;

        // Try the most complex cover first, then the others (§3: "other
        // events different from a* can also be selected").
        'targets: for (target_signal, target_event, target_cover, _) in &over {
            // Generate and rank candidate divisors. Each algebraic divisor
            // f is tried both as-is and in its "C-element-ified" boolean
            // refinement f ∨ (a*·⋁lits(f)) — the new signal then holds its
            // value through the target's active phase, so its complement is
            // usable by the opposite cover (the paper's §3.2/§5 refinement
            // that yields sequential decompositions such as C-element
            // trees).
            let divisors = generate_divisors(target_cover, &config.divisors);
            let mut ranked: Vec<(i64, Cover, crate::insertion::Insertion)> = Vec::new();
            let mut seen_partitions: Vec<Cover> = Vec::new();
            for base in divisors {
                let refined = if config.use_boolean_refinement {
                    c_elementify(&base, *target_signal, target_event.rising)
                } else {
                    None
                };
                let variants = [Some(base.clone()), refined];
                for partition in variants.into_iter().flatten() {
                    if seen_partitions.contains(&partition) {
                        continue;
                    }
                    seen_partitions.push(partition.clone());
                    let Ok(ins) = compute_insertion(&sg, &partition) else { continue };
                    let score = if config.use_progress_filter {
                        let est = estimate_progress(&sg, target_cover, &base, &ins);
                        if !est.makes_progress() {
                            continue;
                        }
                        est.score()
                    } else {
                        0
                    };
                    ranked.push((score, partition, ins));
                }
            }
            ranked.sort_by_key(|(score, f, _)| (std::cmp::Reverse(*score), f.literal_count()));

            // Evaluate the top-ranked candidates exactly (insertion +
            // verification + resynthesis of the *affected* signals only —
            // covers that do not mention the new signal and whose events
            // are not delayed remain valid verbatim) and commit the best.
            // Candidates are independent, so they run on the worker pool;
            // folding the results in ranked order below keeps the outcome
            // identical to the sequential loop (which also tries every
            // candidate and keeps the first strictly-better one).
            let tried: Vec<(i64, Cover, Insertion)> =
                ranked.into_iter().take(config.max_candidates_tried).collect();
            // When several candidates already occupy the pool, each one
            // resynthesizes its affected signals inline.
            let inner_jobs = if tried.len() >= 2 { 1 } else { jobs };
            let name = format!("x{}", inserted.len());
            let evaluated = run_parallel(&tried, jobs, |(_, f, ins)| {
                let candidate_sg = insert_signal(&sg, ins, &name, SignalKind::Internal).ok()?;
                if !check_all(&candidate_sg).is_ok() {
                    return None;
                }
                let candidate_mc =
                    resynthesize_affected(&candidate_sg, &mc, ins, *target_signal, inner_jobs)
                        .ok()?;
                if config.ack_mode == AckMode::Local {
                    let x = SignalId(candidate_sg.signal_count() - 1);
                    if !locally_acknowledged(&candidate_mc, *target_signal, x) {
                        return None;
                    }
                }
                let excess_after = excess(&candidate_mc, config.literal_limit);
                if excess_after >= excess_now {
                    return None;
                }
                let area = crate::flow::si_cost(&candidate_mc, config.literal_limit.max(2)).area();
                Some((excess_after, area, candidate_sg, candidate_mc, f.clone()))
            });
            let mut best: Option<(usize, usize, StateGraph, McImpl, Cover)> = None;
            for candidate in evaluated.into_iter().flatten() {
                let (excess_after, area, ..) = &candidate;
                if best.as_ref().map(|(e, a, ..)| (excess_after, area) < (e, a)).unwrap_or(true) {
                    best = Some(candidate);
                }
            }
            if let Some((_, _, candidate_sg, candidate_mc, f)) = best {
                // Full resynthesis on commit ("the implementation of every
                // signal is recomputed at every step", §3) — keeping, per
                // signal, whichever implementation is cheaper. In local
                // mode the partial implementation is kept as-is: the full
                // resynthesis could re-introduce sharing across signals.
                let merged = if config.ack_mode == AckMode::Local {
                    candidate_mc
                } else {
                    let full = synthesize_mc_jobs(&candidate_sg, jobs)?;
                    merge_cheaper(full, candidate_mc)
                };
                let excess_after = excess(&merged, config.literal_limit);
                if excess_after < excess_now {
                    let name = format!("x{}", inserted.len());
                    let step = DecomposeStep {
                        signal: name.clone(),
                        divisor: format!("{}", f.display_with(|v| sg.signals()[v].name.clone())),
                        target: sg.event_name(*target_event),
                        excess: (excess_now, excess_after),
                    };
                    observer.on_decompose_step(&step);
                    steps.push(step);
                    sg = candidate_sg;
                    mc = merged;
                    inserted.push(name);
                    committed = true;
                    break 'targets;
                }
            }
        }

        if !committed {
            return Ok(DecomposeResult { sg, mc, inserted, implementable: false, steps });
        }
    }
}

/// Rebuilds an implementation for `candidate_sg` (which is `mc`'s graph
/// plus one inserted signal) by resynthesizing only the signals the
/// insertion can affect: the decomposition target, the new signal itself,
/// and every signal owning an event delayed by the grown excitation
/// regions (those events gain `x` as trigger and their covers change
/// category). All other covers mention neither `x` nor any state whose
/// region classification moved, so they stay valid verbatim.
fn resynthesize_affected(
    candidate_sg: &StateGraph,
    mc: &McImpl,
    ins: &Insertion,
    target: SignalId,
    jobs: usize,
) -> Result<McImpl, McError> {
    let _ = ins;
    let x = SignalId(candidate_sg.signal_count() - 1);
    let mut affected: HashSet<SignalId> = HashSet::new();
    affected.insert(target);
    affected.insert(x);
    // Exact delayed-exit set: an event is delayed at a split state when it
    // is enabled after x fires but not before. Those events gain x as a
    // trigger — their owners must be resynthesized.
    for s in candidate_sg.states() {
        for ev in [simap_sg::Event::rise(x), simap_sg::Event::fall(x)] {
            if let Some(after) = candidate_sg.fire(s, ev) {
                for &(e, _) in candidate_sg.succ(after) {
                    if e.signal != x && !candidate_sg.enabled(s, e) {
                        affected.insert(e.signal);
                    }
                }
            }
        }
    }

    let targets = candidate_sg.implementable_signals();
    let results = run_parallel(&targets, jobs, |&signal| {
        if affected.contains(&signal) {
            synthesize_signal(candidate_sg, signal)
        } else {
            let previous =
                mc.signal_impl(signal).expect("unaffected signal existed before the insertion");
            Ok(previous.clone())
        }
    });
    let mut signals = Vec::with_capacity(results.len());
    for result in results {
        signals.push(result?);
    }
    Ok(McImpl { signals })
}

/// Merges two implementations of the same graph, keeping per signal the
/// cheaper body (fewest max-gate literals, then total literals).
fn merge_cheaper(a: McImpl, b: McImpl) -> McImpl {
    let cost = |s: &SignalImpl| -> (usize, usize) {
        match &s.body {
            SignalBody::Combinational { complexity, .. } => (*complexity, *complexity),
            SignalBody::StandardC { set, reset } => {
                let max = set.iter().chain(reset.iter()).map(|c| c.complexity).max().unwrap_or(0);
                let total: usize = set.iter().chain(reset.iter()).map(|c| c.complexity).sum();
                (max, total + 3)
            }
        }
    };
    let signals = a
        .signals
        .into_iter()
        .zip(b.signals)
        .map(|(sa, sb)| {
            debug_assert_eq!(sa.signal, sb.signal);
            if cost(&sa) <= cost(&sb) {
                sa
            } else {
                sb
            }
        })
        .collect();
    McImpl { signals }
}

/// The boolean refinement of a divisor against its target: the bipartition
/// `f ∨ (a*·(l1 ∨ … ∨ lk))` over the literals of `f`, where `a*` is the
/// target literal (`a` when decomposing the set side, `ā` for the reset
/// side). The inserted signal rises with `f` and keeps its value until
/// *all* of `f`'s literals have withdrawn inside the target's active
/// phase — a C-element-like behaviour whose set *and* reset covers are
/// small and whose complement serves the opposite network.
fn c_elementify(f: &Cover, target: SignalId, target_rising: bool) -> Option<Cover> {
    use simap_boolean::{Cube, Literal};
    if f.support().contains(&target.0) {
        return None; // the target literal is already part of f
    }
    let mut any_literal = Cover::zero();
    for cube in f.cubes() {
        for lit in cube.literals() {
            any_literal.push(Cube::from_literals([lit]).expect("single literal"));
        }
    }
    any_literal.make_minimal_wrt_containment();
    let target_lit = Cover::literal(Literal::new(target.0, target_rising));
    Some(f.or(&target_lit.and(&any_literal)))
}

/// Local-acknowledgment constraint: the inserted signal `x` may appear
/// only in the covers of the target signal and of `x` itself.
fn locally_acknowledged(mc: &McImpl, target: SignalId, x: SignalId) -> bool {
    for s in &mc.signals {
        if s.signal == target || s.signal == x {
            continue;
        }
        let uses_x = |cover: &Cover| cover.support().contains(&x.0);
        let bad = match &s.body {
            SignalBody::Combinational { cover, .. } => uses_x(cover),
            SignalBody::StandardC { set, reset } => {
                set.iter().chain(reset.iter()).any(|c| uses_x(&c.cover))
            }
        };
        if bad {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::synthesize_mc;
    use simap_sg::{Event, Signal, StateGraphBuilder};

    /// k-input C element spec as a state graph (inputs a0..ak-1, output c).
    fn celement_sg(k: usize) -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            format!("c{k}"),
            (0..k)
                .map(|i| Signal::new(format!("a{i}"), SignalKind::Input))
                .chain(std::iter::once(Signal::new("c", SignalKind::Output)))
                .collect(),
        )
        .unwrap();
        // Rising phase: all subsets of inputs high, c = 0; falling phase
        // mirrored with c = 1.
        let cbit = 1u64 << k;
        let full = (1u64 << k) - 1;
        let mut rising = std::collections::HashMap::new();
        let mut falling = std::collections::HashMap::new();
        for sub in 0..=full {
            rising.insert(sub, bd.add_state(sub));
            falling.insert(sub, bd.add_state(sub | cbit));
        }
        for sub in 0..=full {
            for i in 0..k {
                let bit = 1u64 << i;
                if sub & bit == 0 {
                    bd.add_arc(rising[&sub], Event::rise(SignalId(i)), rising[&(sub | bit)]);
                } else {
                    bd.add_arc(falling[&sub], Event::fall(SignalId(i)), falling[&(sub & !bit)]);
                }
            }
        }
        bd.add_arc(rising[&full], Event::rise(SignalId(k)), falling[&full]);
        bd.add_arc(falling[&0], Event::fall(SignalId(k)), rising[&0]);
        bd.build(rising[&0]).unwrap()
    }

    #[test]
    fn celement3_decomposes_to_two_input_gates() {
        let sg = celement_sg(3);
        assert!(check_all(&sg).is_ok());
        let result = decompose(&sg, &DecomposeConfig::with_limit(2)).unwrap();
        assert!(result.implementable, "steps: {:?}", result.steps);
        assert!(!result.inserted.is_empty(), "3-literal covers need insertion");
        assert!(result.mc.max_complexity() <= 2);
        // The decomposed spec still satisfies every SG property.
        assert!(check_all(&result.sg).is_ok());
    }

    #[test]
    fn already_simple_circuit_needs_nothing() {
        let sg = celement_sg(2);
        let result = decompose(&sg, &DecomposeConfig::with_limit(2)).unwrap();
        assert!(result.implementable);
        assert!(result.inserted.is_empty());
        assert!(result.steps.is_empty());
    }

    #[test]
    fn limit_three_easier_than_two() {
        let sg = celement_sg(4);
        let at3 = decompose(&sg, &DecomposeConfig::with_limit(3)).unwrap();
        let at2 = decompose(&sg, &DecomposeConfig::with_limit(2)).unwrap();
        assert!(at3.implementable);
        assert!(at2.implementable);
        assert!(at3.inserted.len() <= at2.inserted.len());
    }

    #[test]
    fn excess_metric() {
        let sg = celement_sg(3);
        let mc = synthesize_mc(&sg).unwrap();
        // Two 3-literal gates at limit 2: excess 2.
        assert_eq!(excess(&mc, 2), 2);
        assert_eq!(excess(&mc, 3), 0);
    }

    #[test]
    fn local_mode_still_handles_single_celement() {
        // The C-element tree lives entirely inside the target signal's
        // covers, so the signal-local policy suffices here.
        let sg = celement_sg(3);
        let mut config = DecomposeConfig::with_limit(2);
        config.ack_mode = AckMode::Local;
        let result = decompose(&sg, &config).unwrap();
        assert!(result.implementable);
        assert!(check_all(&result.sg).is_ok());
    }

    #[test]
    fn refinement_is_required_for_celements() {
        // Ablation C at unit level: pure algebraic divisors stall on the
        // §3.4 acknowledgment ping-pong.
        let sg = celement_sg(3);
        let mut config = DecomposeConfig::with_limit(2);
        config.use_boolean_refinement = false;
        let result = decompose(&sg, &config).unwrap();
        assert!(!result.implementable, "pure-AND divisors cannot finish at i=2");
    }

    #[test]
    fn max_insertions_caps_the_loop() {
        let sg = celement_sg(4);
        let mut config = DecomposeConfig::with_limit(2);
        config.max_insertions = 0;
        let result = decompose(&sg, &config).unwrap();
        assert!(!result.implementable);
        assert!(result.inserted.is_empty());
    }

    #[test]
    fn steps_record_divisors() {
        let sg = celement_sg(3);
        let result = decompose(&sg, &DecomposeConfig::with_limit(2)).unwrap();
        assert_eq!(result.steps.len(), result.inserted.len());
        for step in &result.steps {
            assert!(step.excess.1 < step.excess.0);
            assert!(!step.divisor.is_empty());
        }
    }
}
