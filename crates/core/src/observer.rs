//! Progress observation for the synthesis pipeline.
//!
//! A [`FlowObserver`] receives a callback at every stage boundary, every
//! committed decomposition step, every CSC-repair insertion and the final
//! verification verdict. It replaces ad-hoc printing inside the flow: the
//! library stays silent by default ([`NullObserver`]), the CLI's
//! `--verbose` attaches a [`StderrObserver`], and future progress UIs or
//! batch schedulers can attach their own implementation through
//! [`crate::pipeline::Synthesis::observer`].
//!
//! For consumers that forward progress across a process or wire boundary
//! — the `simap-serve` NDJSON streaming mode in particular — every
//! callback also has a serializable value form, [`FlowEvent`], with a
//! stable one-line JSON rendering ([`FlowEvent::to_json`]);
//! [`EventObserver`] adapts any `FnMut(FlowEvent)` sink into a
//! [`FlowObserver`].

use crate::csc::CscConflict;
use crate::decompose::DecomposeStep;
use crate::error::Stage;
use crate::json;

/// Callbacks fired as a synthesis run progresses. All methods have empty
/// default bodies: implement only what you need.
pub trait FlowObserver {
    /// A stage is starting for the named specification.
    fn on_stage_start(&mut self, stage: Stage, spec: &str) {
        let _ = (stage, spec);
    }

    /// A stage finished successfully.
    fn on_stage_end(&mut self, stage: Stage) {
        let _ = stage;
    }

    /// The elaborated specification has CSC conflicts (fired before any
    /// repair attempt; an empty run never fires this).
    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        let _ = conflicts;
    }

    /// CSC repair inserted a state signal.
    fn on_csc_repair(&mut self, signal: &str) {
        let _ = signal;
    }

    /// The decomposition loop committed one insertion.
    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        let _ = step;
    }

    /// The Covers stage synthesized one signal's monotonous covers.
    /// Always fired in signal-index order, after all CSC callbacks of the
    /// run: the per-signal work itself may execute on
    /// `Config::synth_jobs` worker threads, but events are emitted from
    /// the merged result, so the stream is canonical regardless of
    /// completion order (and identical between cold and cached runs).
    fn on_signal_synth(&mut self, signal: &str, cubes: usize, literals: usize) {
        let _ = (signal, cubes, literals);
    }

    /// The final verification verdict (`None` = skipped or inconclusive).
    fn on_verdict(&mut self, verified: Option<bool>) {
        let _ = verified;
    }
}

/// One observer callback as a serializable value: what happened, with
/// the same payload the corresponding [`FlowObserver`] method receives.
#[derive(Debug, Clone)]
pub enum FlowEvent {
    /// A stage started for the named specification.
    StageStart {
        /// The stage that started.
        stage: Stage,
        /// The specification it runs on.
        spec: String,
    },
    /// A stage finished successfully.
    StageEnd {
        /// The stage that finished.
        stage: Stage,
    },
    /// The elaborated specification has CSC conflicts.
    CscConflicts {
        /// How many conflicting state pairs were found.
        count: usize,
    },
    /// CSC repair inserted a state signal.
    CscRepair {
        /// Name of the inserted state signal.
        signal: String,
    },
    /// The decomposition loop committed one insertion.
    Step {
        /// The committed step.
        step: DecomposeStep,
    },
    /// The Covers stage synthesized one signal's monotonous covers
    /// (always streamed in signal-index order).
    SignalSynth {
        /// Name of the synthesized signal.
        signal: String,
        /// Total cubes across its first-level covers.
        cubes: usize,
        /// Total literals across its first-level covers.
        literals: usize,
    },
    /// The final verification verdict.
    Verdict {
        /// `Some(true)` verified, `Some(false)` refuted, `None` skipped
        /// or inconclusive.
        verified: Option<bool>,
    },
    /// A gateway middleware decision on the request that carries this
    /// flow (emitted by `simap serve` ahead of the stage events, so a
    /// streaming client sees how its request traversed the gateway).
    Gateway {
        /// The deciding layer (`auth`, `ratelimit`, `breaker`,
        /// `rescache`).
        layer: String,
        /// The decision (`allow`, `reject`, `hit`, `miss`, …).
        decision: String,
        /// The client the decision applies to.
        client: String,
    },
}

impl FlowEvent {
    /// Renders the event as one line of JSON (no trailing newline): a
    /// `{"event":...}` object whose remaining keys depend on the variant.
    /// This is the NDJSON wire form `simap serve` streams to clients.
    pub fn to_json(&self) -> String {
        match self {
            FlowEvent::StageStart { stage, spec } => format!(
                "{{\"event\":\"stage_start\",\"stage\":{},\"spec\":{}}}",
                json::quote(&stage.to_string()),
                json::quote(spec)
            ),
            FlowEvent::StageEnd { stage } => {
                format!("{{\"event\":\"stage_end\",\"stage\":{}}}", json::quote(&stage.to_string()))
            }
            FlowEvent::CscConflicts { count } => {
                format!("{{\"event\":\"csc_conflicts\",\"count\":{count}}}")
            }
            FlowEvent::CscRepair { signal } => {
                format!("{{\"event\":\"csc_repair\",\"signal\":{}}}", json::quote(signal))
            }
            FlowEvent::Step { step } => format!(
                "{{\"event\":\"step\",\"signal\":{},\"divisor\":{},\"target\":{},\
                 \"excess_before\":{},\"excess_after\":{}}}",
                json::quote(&step.signal),
                json::quote(&step.divisor),
                json::quote(&step.target),
                step.excess.0,
                step.excess.1
            ),
            FlowEvent::SignalSynth { signal, cubes, literals } => format!(
                "{{\"event\":\"signal_synth\",\"signal\":{},\"cubes\":{},\"literals\":{}}}",
                json::quote(signal),
                cubes,
                literals
            ),
            FlowEvent::Verdict { verified } => {
                format!("{{\"event\":\"verdict\",\"verified\":{}}}", json::opt(*verified))
            }
            FlowEvent::Gateway { layer, decision, client } => format!(
                "{{\"event\":\"gateway\",\"layer\":{},\"decision\":{},\"client\":{}}}",
                json::quote(layer),
                json::quote(decision),
                json::quote(client)
            ),
        }
    }
}

/// Adapts a `FnMut(FlowEvent)` sink into a [`FlowObserver`]: every
/// callback is forwarded as the corresponding [`FlowEvent`] value. The
/// sink decides what to do with it — send it over a channel, write it to
/// a socket, collect it in a vector.
#[derive(Debug)]
pub struct EventObserver<F: FnMut(FlowEvent)> {
    sink: F,
}

impl<F: FnMut(FlowEvent)> EventObserver<F> {
    /// An observer forwarding every callback to `sink`.
    pub fn new(sink: F) -> Self {
        EventObserver { sink }
    }
}

impl<F: FnMut(FlowEvent)> FlowObserver for EventObserver<F> {
    fn on_stage_start(&mut self, stage: Stage, spec: &str) {
        (self.sink)(FlowEvent::StageStart { stage, spec: spec.to_string() });
    }

    fn on_stage_end(&mut self, stage: Stage) {
        (self.sink)(FlowEvent::StageEnd { stage });
    }

    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        (self.sink)(FlowEvent::CscConflicts { count: conflicts.len() });
    }

    fn on_csc_repair(&mut self, signal: &str) {
        (self.sink)(FlowEvent::CscRepair { signal: signal.to_string() });
    }

    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        (self.sink)(FlowEvent::Step { step: step.clone() });
    }

    fn on_signal_synth(&mut self, signal: &str, cubes: usize, literals: usize) {
        (self.sink)(FlowEvent::SignalSynth { signal: signal.to_string(), cubes, literals });
    }

    fn on_verdict(&mut self, verified: Option<bool>) {
        (self.sink)(FlowEvent::Verdict { verified });
    }
}

/// The default observer: ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl FlowObserver for NullObserver {}

/// An observer that narrates the flow to standard error, one line per
/// event — what the CLI prints under `--verbose`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrObserver;

impl FlowObserver for StderrObserver {
    fn on_stage_start(&mut self, stage: Stage, spec: &str) {
        eprintln!("[{stage}] {spec}");
    }

    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        eprintln!("  {} CSC conflict(s)", conflicts.len());
    }

    fn on_csc_repair(&mut self, signal: &str) {
        eprintln!("  inserted CSC state signal {signal}");
    }

    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        eprintln!(
            "  inserted {} = {} targeting {} (excess {} -> {})",
            step.signal, step.divisor, step.target, step.excess.0, step.excess.1
        );
    }

    fn on_signal_synth(&mut self, signal: &str, cubes: usize, literals: usize) {
        eprintln!("  covers for {signal}: {cubes} cube(s), {literals} literal(s)");
    }

    fn on_verdict(&mut self, verified: Option<bool>) {
        eprintln!(
            "  speed-independent: {}",
            match verified {
                Some(true) => "verified",
                Some(false) => "REFUTED",
                None => "unchecked",
            }
        );
    }
}

/// An observer that records every event; useful in tests and as a model
/// for UI integrations.
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    /// Stages started, in order.
    pub stages: Vec<Stage>,
    /// Signals inserted by the decomposition loop, in commit order.
    pub steps: Vec<DecomposeStep>,
    /// Signals inserted by CSC repair.
    pub csc_insertions: Vec<String>,
    /// Conflict counts reported before repair.
    pub conflict_counts: Vec<usize>,
    /// Per-signal cover synthesis events `(signal, cubes, literals)`, in
    /// the order they were fired (canonically: signal-index order).
    pub signal_synths: Vec<(String, usize, usize)>,
    /// The final verdict, when the flow got that far.
    pub verdict: Option<Option<bool>>,
}

impl FlowObserver for RecordingObserver {
    fn on_stage_start(&mut self, stage: Stage, _spec: &str) {
        self.stages.push(stage);
    }

    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        self.conflict_counts.push(conflicts.len());
    }

    fn on_csc_repair(&mut self, signal: &str) {
        self.csc_insertions.push(signal.to_string());
    }

    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        self.steps.push(step.clone());
    }

    fn on_signal_synth(&mut self, signal: &str, cubes: usize, literals: usize) {
        self.signal_synths.push((signal.to_string(), cubes, literals));
    }

    fn on_verdict(&mut self, verified: Option<bool>) {
        self.verdict = Some(verified);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_observer_forwards_a_full_run_as_json_lines() {
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = events.clone();
        let report = crate::pipeline::Synthesis::from_benchmark("hazard")
            .observer(EventObserver::new(move |e: FlowEvent| {
                sink.lock().unwrap().push(e.to_json());
            }))
            .run()
            .unwrap();
        let lines = events.lock().unwrap();
        assert_eq!(
            lines.first().map(String::as_str),
            Some("{\"event\":\"stage_start\",\"stage\":\"load\",\"spec\":\"hazard\"}")
        );
        let steps = lines.iter().filter(|l| l.starts_with("{\"event\":\"step\"")).count();
        assert_eq!(steps, report.inserted.unwrap());
        assert!(
            lines.contains(&"{\"event\":\"verdict\",\"verified\":true}".to_string()),
            "{lines:?}"
        );
        // Every streamed line is a parseable JSON object with an `event` key.
        for line in lines.iter() {
            let parsed = crate::json::parse(line).expect("event lines are valid JSON");
            assert!(parsed.get("event").is_some(), "{line}");
        }
    }

    #[test]
    fn event_json_escapes_payloads() {
        let event = FlowEvent::CscRepair { signal: "a\"b".into() };
        assert_eq!(event.to_json(), "{\"event\":\"csc_repair\",\"signal\":\"a\\\"b\"}");
        assert_eq!(
            FlowEvent::Verdict { verified: None }.to_json(),
            "{\"event\":\"verdict\",\"verified\":null}"
        );
    }
}
