//! Progress observation for the synthesis pipeline.
//!
//! A [`FlowObserver`] receives a callback at every stage boundary, every
//! committed decomposition step, every CSC-repair insertion and the final
//! verification verdict. It replaces ad-hoc printing inside the flow: the
//! library stays silent by default ([`NullObserver`]), the CLI's
//! `--verbose` attaches a [`StderrObserver`], and future progress UIs or
//! batch schedulers can attach their own implementation through
//! [`crate::pipeline::Synthesis::observer`].

use crate::csc::CscConflict;
use crate::decompose::DecomposeStep;
use crate::error::Stage;

/// Callbacks fired as a synthesis run progresses. All methods have empty
/// default bodies: implement only what you need.
pub trait FlowObserver {
    /// A stage is starting for the named specification.
    fn on_stage_start(&mut self, stage: Stage, spec: &str) {
        let _ = (stage, spec);
    }

    /// A stage finished successfully.
    fn on_stage_end(&mut self, stage: Stage) {
        let _ = stage;
    }

    /// The elaborated specification has CSC conflicts (fired before any
    /// repair attempt; an empty run never fires this).
    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        let _ = conflicts;
    }

    /// CSC repair inserted a state signal.
    fn on_csc_repair(&mut self, signal: &str) {
        let _ = signal;
    }

    /// The decomposition loop committed one insertion.
    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        let _ = step;
    }

    /// The final verification verdict (`None` = skipped or inconclusive).
    fn on_verdict(&mut self, verified: Option<bool>) {
        let _ = verified;
    }
}

/// The default observer: ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl FlowObserver for NullObserver {}

/// An observer that narrates the flow to standard error, one line per
/// event — what the CLI prints under `--verbose`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrObserver;

impl FlowObserver for StderrObserver {
    fn on_stage_start(&mut self, stage: Stage, spec: &str) {
        eprintln!("[{stage}] {spec}");
    }

    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        eprintln!("  {} CSC conflict(s)", conflicts.len());
    }

    fn on_csc_repair(&mut self, signal: &str) {
        eprintln!("  inserted CSC state signal {signal}");
    }

    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        eprintln!(
            "  inserted {} = {} targeting {} (excess {} -> {})",
            step.signal, step.divisor, step.target, step.excess.0, step.excess.1
        );
    }

    fn on_verdict(&mut self, verified: Option<bool>) {
        eprintln!(
            "  speed-independent: {}",
            match verified {
                Some(true) => "verified",
                Some(false) => "REFUTED",
                None => "unchecked",
            }
        );
    }
}

/// An observer that records every event; useful in tests and as a model
/// for UI integrations.
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    /// Stages started, in order.
    pub stages: Vec<Stage>,
    /// Signals inserted by the decomposition loop, in commit order.
    pub steps: Vec<DecomposeStep>,
    /// Signals inserted by CSC repair.
    pub csc_insertions: Vec<String>,
    /// Conflict counts reported before repair.
    pub conflict_counts: Vec<usize>,
    /// The final verdict, when the flow got that far.
    pub verdict: Option<Option<bool>>,
}

impl FlowObserver for RecordingObserver {
    fn on_stage_start(&mut self, stage: Stage, _spec: &str) {
        self.stages.push(stage);
    }

    fn on_csc_conflicts(&mut self, conflicts: &[CscConflict]) {
        self.conflict_counts.push(conflicts.len());
    }

    fn on_csc_repair(&mut self, signal: &str) {
        self.csc_insertions.push(signal.to_string());
    }

    fn on_decompose_step(&mut self, step: &DecomposeStep) {
        self.steps.push(step.clone());
    }

    fn on_verdict(&mut self, verified: Option<bool>) {
        self.verdict = Some(verified);
    }
}
