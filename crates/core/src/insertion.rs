//! Property-preserving event insertion (§2.3, §3.2).
//!
//! Given a boolean function `f` over the specification signals, this
//! module computes the minimal well-formed SIP excitation regions
//! `ER(x+)`, `ER(x−)` of a new signal `x` realizing `f` (the iterative
//! procedure of §3.2) and reconstructs the state graph `A′` with the event
//! insertion scheme of Fig. 3. The construction is conservative: a caller
//! is expected to re-verify `A′` with [`simap_sg::check_all`]; rejection
//! of a divisor is always safe.

use simap_boolean::Cover;
use simap_sg::{
    Event, Signal, SignalId, SignalKind, StateGraph, StateGraphBuilder, StateId, StateSet,
};
use std::fmt;

/// The I-partition of a candidate signal: the `f = 1` block, the `f = 0`
/// block and the grown excitation regions.
#[derive(Debug, Clone)]
pub struct Insertion {
    /// States where `f = 1`.
    pub s1: StateSet,
    /// States where `f = 0`.
    pub s0: StateSet,
    /// Excitation region of `x+` (inside `s1`).
    pub er_plus: StateSet,
    /// Excitation region of `x−` (inside `s0`).
    pub er_minus: StateSet,
}

/// Why no legal insertion exists for a divisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertionError {
    /// `f` is constant on the reachable states: nothing to insert.
    ConstantFunction,
    /// Growing an excitation region would force it across its block
    /// boundary (the §3.2 procedure's failure case).
    RegionEscapes {
        /// `true` when ER(x+) failed, `false` for ER(x−).
        rising: bool,
    },
    /// An input event would be delayed and the interface-preserving
    /// extension is impossible.
    DelaysInput {
        /// Name of the delayed input signal.
        input: String,
    },
    /// The split graph violates a state-graph invariant (caught during
    /// construction).
    Malformed {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for InsertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertionError::ConstantFunction => {
                write!(f, "divisor is constant on reachable states")
            }
            InsertionError::RegionEscapes { rising } => {
                write!(f, "ER(x{}) escapes its block", if *rising { "+" } else { "-" })
            }
            InsertionError::DelaysInput { input } => {
                write!(f, "insertion would delay input `{input}`")
            }
            InsertionError::Malformed { detail } => write!(f, "malformed split graph: {detail}"),
        }
    }
}

impl std::error::Error for InsertionError {}

/// Computes the I-partition for divisor function `f`: the input borders
/// IB(f+), IB(f−) grown to minimal well-formed SIP sets.
///
/// The closure rules implemented (each mirrored for the falling side):
/// 1. `IB(f+) ⊆ ER(x+)` — every `f`-rising edge enters the region.
/// 2. Well-formedness: a state of `S1` with a successor in `ER(x+)` joins
///    `ER(x+)` (no entry from inside the block).
/// 3. Persistency/diamond closure: if an event `b` exits `ER(x+)` from
///    state `s` and `b` was already enabled when `s` was entered (at the
///    pre-`x+` level), delaying `b` at `s` would disable it — the exit
///    target joins the region.
/// 4. Interface preservation: an *input* event may never be delayed, so
///    input exits always pull their targets in.
///
/// # Errors
/// See [`InsertionError`].
pub fn compute_insertion(sg: &StateGraph, f: &Cover) -> Result<Insertion, InsertionError> {
    let n = sg.state_count();
    let mut s1 = StateSet::new(n);
    for s in sg.states() {
        if f.eval(sg.code(s)) {
            s1.insert(s);
        }
    }
    compute_insertion_from_block(sg, s1)
}

/// Computes the I-partition for an explicit `S1` block of states (the
/// general form used for Complete State Coding repair, where conflicting
/// states share a code and therefore no cover over the existing signals
/// can separate them).
///
/// # Errors
/// See [`InsertionError`].
pub fn compute_insertion_from_block(
    sg: &StateGraph,
    s1: StateSet,
) -> Result<Insertion, InsertionError> {
    let n = sg.state_count();
    let mut s0 = StateSet::new(n);
    for s in sg.states() {
        if !s1.contains(s) {
            s0.insert(s);
        }
    }
    if s1.is_empty() || s0.is_empty() {
        return Err(InsertionError::ConstantFunction);
    }
    let er_plus = grow_region(sg, &s1, true)?;
    let er_minus = grow_region(sg, &s0, false)?;
    Ok(Insertion { s1, s0, er_plus, er_minus })
}

/// Grows the excitation region inside `block` starting from its input
/// border.
fn grow_region(
    sg: &StateGraph,
    block: &StateSet,
    rising: bool,
) -> Result<StateSet, InsertionError> {
    let n = sg.state_count();
    let mut er = StateSet::new(n);
    // Rule 1: the input border.
    for s in block.iter() {
        if sg.pred(s).iter().any(|&(_, p)| !block.contains(p)) {
            er.insert(s);
        }
    }
    if er.is_empty() {
        // The block is never entered: f is constant along all cycles
        // through it, or the block contains the initial state and is never
        // re-entered. Treat the whole block as unreachable-from-outside;
        // no transition of x is ever needed, which the caller treats as a
        // degenerate insertion.
        return Err(InsertionError::ConstantFunction);
    }

    loop {
        let mut changed = false;

        // Rule 2: backward closure within the block.
        let members: Vec<StateId> = er.iter().collect();
        for s in members {
            for &(_, p) in sg.pred(s) {
                if block.contains(p) && !er.contains(p) {
                    er.insert(p);
                    changed = true;
                }
            }
        }

        // Rules 3 & 4: exit events that must not be delayed pull their
        // targets into the region.
        let members: Vec<StateId> = er.iter().collect();
        for s in members {
            for &(b, t) in sg.succ(s) {
                if er.contains(t) {
                    continue; // internal edge: fine
                }
                let is_input = sg.signals()[b.signal.0].kind == SignalKind::Input;
                let must_not_delay = is_input || enabled_before_entering(sg, &er, s, b);
                if !must_not_delay {
                    continue; // b is delayed at the pre-x level: allowed
                }
                if !block.contains(t) {
                    // The undelayable event crosses out of the block: no
                    // legal region.
                    return Err(if is_input {
                        InsertionError::DelaysInput { input: sg.signals()[b.signal.0].name.clone() }
                    } else {
                        InsertionError::RegionEscapes { rising }
                    });
                }
                er.insert(t);
                changed = true;
            }
        }

        if !changed {
            return Ok(er);
        }
    }
}

/// Whether event `b` (which exits the region at `s`) was already enabled
/// at some predecessor's pre-`x` level, so that delaying it at `s` would
/// disable it (a persistency violation in `A′`).
fn enabled_before_entering(sg: &StateGraph, er: &StateSet, s: StateId, b: Event) -> bool {
    for &(c, p) in sg.pred(s) {
        if c == b {
            continue;
        }
        if let Some(u) = sg.fire(p, b) {
            // b enabled at p. At p's effective pre-x copy, b is enabled
            // unless p is inside the region with b's target outside it
            // (then b is delayed at p too, and the violation is charged to
            // p's own exit analysis).
            if !er.contains(p) || er.contains(u) {
                return true;
            }
        }
    }
    false
}

/// Constructs `A′`: inserts signal `name` realizing the given I-partition
/// using the Fig. 3 splitting scheme. States in `ER(x+)` and `ER(x−)` are
/// split in two; events exiting a region fire from the post-`x` copy only.
///
/// # Errors
/// Returns [`InsertionError::Malformed`] when an edge of the original
/// graph cannot be consistently mapped (the caller should reject the
/// divisor).
pub fn insert_signal(
    sg: &StateGraph,
    ins: &Insertion,
    name: &str,
    kind: SignalKind,
) -> Result<StateGraph, InsertionError> {
    let x_bit = sg.signal_count();
    if x_bit >= 64 {
        return Err(InsertionError::Malformed { detail: "too many signals".into() });
    }
    let x = SignalId(x_bit);
    let mut signals = sg.signals().to_vec();
    signals.push(Signal::new(name, kind));
    let mut builder = StateGraphBuilder::new(sg.name(), signals)
        .map_err(|e| InsertionError::Malformed { detail: e.to_string() })?;

    // Copy classification of each original state.
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Plain1,
        Plain0,
        ErPlus,
        ErMinus,
    }
    let kind_of = |s: StateId| -> Kind {
        if ins.er_plus.contains(s) {
            Kind::ErPlus
        } else if ins.er_minus.contains(s) {
            Kind::ErMinus
        } else if ins.s1.contains(s) {
            Kind::Plain1
        } else {
            Kind::Plain0
        }
    };

    // Allocate states: lo/hi copies (plain states use one of them).
    let n = sg.state_count();
    let mut lo: Vec<Option<StateId>> = vec![None; n];
    let mut hi: Vec<Option<StateId>> = vec![None; n];
    for s in sg.states() {
        let base = sg.code(s);
        match kind_of(s) {
            Kind::Plain1 => hi[s.0] = Some(builder.add_state(base | (1 << x_bit))),
            Kind::Plain0 => lo[s.0] = Some(builder.add_state(base)),
            Kind::ErPlus | Kind::ErMinus => {
                lo[s.0] = Some(builder.add_state(base));
                hi[s.0] = Some(builder.add_state(base | (1 << x_bit)));
            }
        }
    }

    // x transitions.
    for s in sg.states() {
        match kind_of(s) {
            Kind::ErPlus => {
                builder.add_arc(lo[s.0].expect("split"), Event::rise(x), hi[s.0].expect("split"));
            }
            Kind::ErMinus => {
                builder.add_arc(hi[s.0].expect("split"), Event::fall(x), lo[s.0].expect("split"));
            }
            _ => {}
        }
    }

    // Original edges.
    let err = |s: StateId, t: StateId, why: &str| InsertionError::Malformed {
        detail: format!("edge {} -> {}: {}", sg.state_label(s), sg.state_label(t), why),
    };
    for s in sg.states() {
        for &(e, t) in sg.succ(s) {
            use Kind::*;
            match (kind_of(s), kind_of(t)) {
                (Plain1, Plain1) => builder.add_arc(hi[s.0].expect("p1"), e, hi[t.0].expect("p1")),
                (Plain0, Plain0) => builder.add_arc(lo[s.0].expect("p0"), e, lo[t.0].expect("p0")),
                (Plain0, ErPlus) => builder.add_arc(lo[s.0].expect("p0"), e, lo[t.0].expect("er")),
                (Plain1, ErMinus) => builder.add_arc(hi[s.0].expect("p1"), e, hi[t.0].expect("er")),
                (ErPlus, ErPlus) => {
                    builder.add_arc(lo[s.0].expect("er"), e, lo[t.0].expect("er"));
                    builder.add_arc(hi[s.0].expect("er"), e, hi[t.0].expect("er"));
                }
                (ErMinus, ErMinus) => {
                    builder.add_arc(lo[s.0].expect("er"), e, lo[t.0].expect("er"));
                    builder.add_arc(hi[s.0].expect("er"), e, hi[t.0].expect("er"));
                }
                // Exits fire from the post-x copy only (the delay).
                (ErPlus, Plain1) => builder.add_arc(hi[s.0].expect("er"), e, hi[t.0].expect("p1")),
                (ErPlus, ErMinus) => builder.add_arc(hi[s.0].expect("er"), e, hi[t.0].expect("er")),
                (ErMinus, Plain0) => builder.add_arc(lo[s.0].expect("er"), e, lo[t.0].expect("p0")),
                (ErMinus, ErPlus) => builder.add_arc(lo[s.0].expect("er"), e, lo[t.0].expect("er")),
                // Structurally impossible when the closure rules hold:
                (Plain1, ErPlus) => return Err(err(s, t, "entry into ER(x+) from S1")),
                (Plain0, ErMinus) => return Err(err(s, t, "entry into ER(x-) from S0")),
                (Plain1, Plain0) => return Err(err(s, t, "S1 -> S0 outside ER(x-)")),
                (Plain0, Plain1) => return Err(err(s, t, "S0 -> S1 outside ER(x+)")),
                (ErPlus, Plain0) => return Err(err(s, t, "ER(x+) exits into S0")),
                (ErMinus, Plain1) => return Err(err(s, t, "ER(x-) exits into S1")),
            }
        }
    }

    let init = sg.initial();
    let init_new = match kind_of(init) {
        Kind::Plain1 => hi[init.0],
        _ => lo[init.0],
    }
    .expect("initial state mapped");
    builder.build(init_new).map_err(|e| InsertionError::Malformed { detail: e.to_string() })
}

/// Convenience: computes the I-partition and builds `A′`, then fully
/// re-verifies every state-graph property; any violation rejects the
/// divisor.
///
/// # Errors
/// Returns [`InsertionError`] if no legal insertion exists or the
/// constructed graph fails verification.
pub fn insert_function(
    sg: &StateGraph,
    f: &Cover,
    name: &str,
) -> Result<(StateGraph, Insertion), InsertionError> {
    let ins = compute_insertion(sg, f)?;
    let new_sg = insert_signal(sg, &ins, name, SignalKind::Internal)?;
    let report = simap_sg::check_all(&new_sg);
    if let Some(v) = report.violations.first() {
        return Err(InsertionError::Malformed { detail: format!("A' fails: {v}") });
    }
    Ok((new_sg, ins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_boolean::{Cube, Literal};
    use simap_sg::check_all;

    /// Sequencer a+ b+ c+ a- b- c- (a input, b,c outputs),
    /// codes bit0=a bit1=b bit2=c.
    fn seq3() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "seq3",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Output),
                Signal::new("c", SignalKind::Output),
            ],
        )
        .unwrap();
        let codes = [0b000, 0b001, 0b011, 0b111, 0b110, 0b100];
        let st: Vec<StateId> = codes.iter().map(|&c| bd.add_state(c)).collect();
        let (a, b, c) = (SignalId(0), SignalId(1), SignalId(2));
        bd.add_arc(st[0], Event::rise(a), st[1]);
        bd.add_arc(st[1], Event::rise(b), st[2]);
        bd.add_arc(st[2], Event::rise(c), st[3]);
        bd.add_arc(st[3], Event::fall(a), st[4]);
        bd.add_arc(st[4], Event::fall(b), st[5]);
        bd.add_arc(st[5], Event::fall(c), st[0]);
        bd.build(st[0]).unwrap()
    }

    fn cover_of(lits: &[(usize, bool)]) -> Cover {
        Cover::from_cube(
            Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap(),
        )
    }

    #[test]
    fn insertion_of_ab_into_sequencer() {
        let sg = seq3();
        // f = a·b : rises when b+ fires (state 011), falls when a- fires.
        let f = cover_of(&[(0, true), (1, true)]);
        let (new_sg, ins) = insert_function(&sg, &f, "x").expect("legal insertion");
        assert!(ins.er_plus.count() >= 1);
        assert!(ins.er_minus.count() >= 1);
        assert_eq!(new_sg.signal_count(), 4);
        assert!(check_all(&new_sg).is_ok());
        // The new signal toggles: both x+ and x- occur somewhere.
        let x = new_sg.signal_by_name("x").unwrap();
        let has_rise = new_sg.states().any(|s| new_sg.enabled(s, Event::rise(x)));
        let has_fall = new_sg.states().any(|s| new_sg.enabled(s, Event::fall(x)));
        assert!(has_rise && has_fall);
    }

    #[test]
    fn constant_function_rejected() {
        let sg = seq3();
        let err = compute_insertion(&sg, &Cover::one()).unwrap_err();
        assert_eq!(err, InsertionError::ConstantFunction);
        let err = compute_insertion(&sg, &Cover::zero()).unwrap_err();
        assert_eq!(err, InsertionError::ConstantFunction);
    }

    #[test]
    fn state_count_grows_by_region_sizes() {
        let sg = seq3();
        let f = cover_of(&[(0, true), (1, true)]);
        let ins = compute_insertion(&sg, &f).unwrap();
        let new_sg = insert_signal(&sg, &ins, "x", SignalKind::Internal).unwrap();
        assert_eq!(
            new_sg.state_count(),
            sg.state_count() + ins.er_plus.count() + ins.er_minus.count()
        );
    }

    #[test]
    fn input_delay_is_refused_or_extended() {
        let sg = seq3();
        // f = b̄ : S1 = {000,001,100}; rising border is entered by c- (wait:
        // f falls when b+ fires and rises when b- fires). ER(x+) starts at
        // {100}; its exit event c- is an *output*, so this may legally
        // delay c-. The insertion must either succeed or fail cleanly; it
        // must never delay the input a.
        let f = cover_of(&[(1, false)]);
        match insert_function(&sg, &f, "x") {
            Ok((new_sg, _)) => assert!(check_all(&new_sg).is_ok()),
            Err(e) => assert!(
                !matches!(e, InsertionError::Malformed { .. }),
                "must fail cleanly, got {e}"
            ),
        }
    }

    #[test]
    fn inserted_signal_value_matches_blocks() {
        // In A', x must be 1 exactly on S1-plain states, on the post-x+
        // copies of ER(x+) and the pre-x- copies of ER(x-).
        let sg = seq3();
        let f = cover_of(&[(0, true), (1, true)]);
        let ins = compute_insertion(&sg, &f).unwrap();
        let new_sg = insert_signal(&sg, &ins, "x", SignalKind::Internal).unwrap();
        let x = new_sg.signal_by_name("x").unwrap();
        let x_bit = 1u64 << x.0;
        for s in new_sg.states() {
            let base_code = new_sg.code(s) & !x_bit;
            let x_val = new_sg.code(s) & x_bit != 0;
            let f_val = f.eval(base_code);
            if new_sg.enabled(s, Event::rise(x)) {
                assert!(!x_val, "pre-x+ copy must have x=0");
                assert!(f_val, "ER(x+) lies in S1");
            } else if new_sg.enabled(s, Event::fall(x)) {
                assert!(x_val, "pre-x- copy must have x=1");
                assert!(!f_val, "ER(x-) lies in S0");
            } else {
                assert_eq!(x_val, f_val, "stable states carry f's value");
            }
        }
    }

    #[test]
    fn insertion_into_choice_spec() {
        // A dispatcher with input choice: inserting a function of one
        // branch's signals must keep determinism/commutativity (verified
        // by insert_function) or be rejected cleanly.
        let stg = simap_stg::patterns::choice(2);
        let sg = simap_stg::elaborate(&stg).unwrap();
        let r0 = sg.signal_by_name("r0").unwrap();
        let a0 = sg.signal_by_name("a0").unwrap();
        let f = Cover::from_cube(
            Cube::from_literals([Literal::pos(r0.0), Literal::pos(a0.0)]).unwrap(),
        );
        match insert_function(&sg, &f, "x") {
            Ok((new_sg, _)) => {
                assert!(check_all(&new_sg).is_ok());
                assert_eq!(new_sg.signal_count(), sg.signal_count() + 1);
            }
            Err(e) => {
                assert!(!matches!(e, InsertionError::Malformed { .. }), "clean rejection, got {e}");
            }
        }
    }

    #[test]
    fn insertion_with_multiple_excitation_regions() {
        // The shared-output dispatcher gives the divisor's blocks several
        // disconnected components; the grown regions must still verify.
        let stg = simap_stg::patterns::shared_output_choice(2);
        let sg = simap_stg::elaborate(&stg).unwrap();
        let x_sig = sg.signal_by_name("x").unwrap();
        let r0 = sg.signal_by_name("r0").unwrap();
        let f = Cover::from_cube(
            Cube::from_literals([Literal::pos(x_sig.0), Literal::pos(r0.0)]).unwrap(),
        );
        if let Ok((new_sg, _)) = insert_function(&sg, &f, "w") {
            assert!(check_all(&new_sg).is_ok());
        }
    }

    #[test]
    fn concurrent_spec_diamond_handling() {
        // 2-input C element spec; divisor a·b (the set function itself).
        let mut bd = StateGraphBuilder::new(
            "c2",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Input),
                Signal::new("c", SignalKind::Output),
            ],
        )
        .unwrap();
        let s00 = bd.add_state(0b000);
        let s01 = bd.add_state(0b001);
        let s10 = bd.add_state(0b010);
        let s11 = bd.add_state(0b011);
        let t11 = bd.add_state(0b111);
        let t01 = bd.add_state(0b101);
        let t10 = bd.add_state(0b110);
        let t00 = bd.add_state(0b100);
        let (a, b, c) = (SignalId(0), SignalId(1), SignalId(2));
        bd.add_arc(s00, Event::rise(a), s01);
        bd.add_arc(s00, Event::rise(b), s10);
        bd.add_arc(s01, Event::rise(b), s11);
        bd.add_arc(s10, Event::rise(a), s11);
        bd.add_arc(s11, Event::rise(c), t11);
        bd.add_arc(t11, Event::fall(a), t10);
        bd.add_arc(t11, Event::fall(b), t01);
        bd.add_arc(t10, Event::fall(b), t00);
        bd.add_arc(t01, Event::fall(a), t00);
        bd.add_arc(t00, Event::fall(c), s00);
        let sg = bd.build(s00).unwrap();

        let f = cover_of(&[(0, true), (1, true)]);
        // S1 = {011,111}; exits of ER(x+)={011}: c+ (output, newly enabled
        // there? c+ enabled at s11 which IS the entry state...). The
        // insertion is either accepted with a verified A' or cleanly
        // rejected; inputs a,b only *enter* S1, so no input delay occurs.
        match insert_function(&sg, &f, "x") {
            Ok((new_sg, _)) => {
                assert!(check_all(&new_sg).is_ok());
                let x = new_sg.signal_by_name("x").unwrap();
                // x+ must precede c+ in A' (x triggers c).
                let some_x_before_c = new_sg.states().any(|s| {
                    new_sg.enabled(s, Event::rise(x)) && !new_sg.enabled(s, Event::rise(c))
                });
                assert!(some_x_before_c);
            }
            Err(e) => panic!("expected legal insertion for the set function: {e}"),
        }
    }
}
