//! Shared hand-rolled JSON support: the emit helpers every report
//! emitter uses plus a recursive-descent parser for the `simap-serve`
//! wire protocol.
//!
//! The build environment is offline (no serde), so both directions are
//! implemented here by hand and kept deliberately small:
//!
//! * **Emitting** — [`quote`] (RFC 8259 §7 string escaping),
//!   [`string_array`], [`usize_array`] and [`opt`] are the primitives
//!   [`crate::report`] renders documents with. Emitters write keys in a
//!   fixed order, so a given value always renders to the same bytes.
//! * **Parsing** — [`parse`] turns a JSON text into a [`Json`] tree:
//!   objects preserve member order, numbers split into [`Json::Int`]
//!   (no fraction/exponent, fits `i64`) and [`Json::Float`], and errors
//!   carry the byte offset they were detected at.
//!
//! Parse ∘ emit is the identity on emitted documents (asserted by the
//! `json_roundtrip` property suite): for every `Json` value `v`,
//! `parse(&v.emit())` returns `v` — with the one documented exception
//! that non-finite floats emit as `null`.
//!
//! ```
//! use simap_core::json::{parse, Json};
//!
//! let doc = parse(r#"{"bench":"half","limits":[2,3],"verify":false}"#)?;
//! assert_eq!(doc.get("bench").and_then(Json::as_str), Some("half"));
//! assert_eq!(doc.get("limits").and_then(Json::as_array).map(<[Json]>::len), Some(2));
//! assert_eq!(doc.emit(), r#"{"bench":"half","limits":[2,3],"verify":false}"#);
//! # Ok::<(), simap_core::json::JsonError>(())
//! ```

use std::fmt::Write as _;

/// Deepest value nesting [`parse`] accepts (arrays/objects inside
/// arrays/objects); beyond it the parser reports an error instead of
/// risking stack exhaustion on adversarial input.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object members keep their textual order, so
/// emitting a parsed document reproduces it byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent that fits an `i64`.
    Int(i64),
    /// Any other number (fractions, exponents, beyond-`i64` magnitudes).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in member order. Duplicate keys are kept as parsed.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The value of an object member, when this is an object containing
    /// `key` (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is an [`Json::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as a `usize`, when this is a non-negative
    /// [`Json::Int`] that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON (no whitespace, fixed member
    /// order). Non-finite floats — unrepresentable in JSON — render as
    /// `null`.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let start = out.len();
                    let _ = write!(out, "{v}");
                    // `Display` prints whole floats without a marker
                    // ("2"); add one so the text parses back as a float.
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(key));
                    out.push(':');
                    value.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes and quotes a string for inclusion in a JSON document
/// (RFC 8259 §7): quotes, backslashes and control characters are escaped,
/// everything else passes through verbatim.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a slice of strings as a JSON array of quoted strings.
pub fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| quote(s)).collect();
    format!("[{}]", quoted.join(","))
}

/// Renders a slice of counts as a JSON array of numbers.
pub fn usize_array(items: &[usize]) -> String {
    let rendered: Vec<String> = items.iter().map(usize::to_string).collect();
    format!("[{}]", rendered.join(","))
}

/// Renders an optional displayable value: the value itself, or `null`.
pub fn opt<T: std::fmt::Display>(value: Option<T>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// A parse failure: what went wrong and the byte offset it was detected
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON text into a [`Json`] tree.
///
/// # Errors
/// [`JsonError`] on malformed input: unexpected characters, unterminated
/// strings, bad escapes (including lone surrogates), malformed numbers,
/// nesting beyond [`MAX_DEPTH`], or trailing characters after the value.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| JsonError {
                offset: e.offset,
                message: format!("object key: {}", e.message),
            })?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run(run_start)?);
                    self.pos += 1;
                    out.push(self.escape()?);
                    run_start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The raw (escape-free) byte run since `start`, validated as UTF-8.
    /// The input came from a `&str`, so this cannot actually fail, but the
    /// parser re-checks rather than trusting byte arithmetic.
    fn run(&self, start: usize) -> Result<&str, JsonError> {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => return self.unicode_escape(),
            other => {
                self.pos -= 1;
                return Err(self.err(format!("unknown escape `\\{}`", other as char)));
            }
        })
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pairs encode astral-plane characters as two \u
        // escapes; a lone half is not a Unicode scalar value.
        if (0xd800..0xdc00).contains(&first) {
            if !self.bytes[self.pos..].starts_with(b"\\u") {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.err("high surrogate not followed by a low surrogate"));
            }
            let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
            char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xdc00..0xe000).contains(&first) {
            Err(self.err("lone low surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            self.digits();
        }
        let text = self.run(start).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => Err(self.err(format!("malformed number `{text}`"))),
        }
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_is_rfc8259() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("0").unwrap(), Json::Int(0));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("-1.25e-2").unwrap(), Json::Float(-0.0125));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert!(matches!(parse("92233720368547758080").unwrap(), Json::Float(_)));
    }

    #[test]
    fn string_escapes_parse() {
        assert_eq!(parse(r#""a\"b\\c\/d""#).unwrap(), Json::Str("a\"b\\c/d".into()));
        assert_eq!(parse(r#""\b\f\n\r\t""#).unwrap(), Json::Str("\u{8}\u{c}\n\r\t".into()));
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair: U+1D11E MUSICAL SYMBOL G CLEF.
        assert_eq!(parse(r#""\ud834\udd1e""#).unwrap(), Json::Str("𝄞".into()));
    }

    #[test]
    fn containers_preserve_order() {
        let doc = parse(r#" { "b" : [1, 2.5, "x"], "a" : { } , "c": null } "#).unwrap();
        let members = doc.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(members[2].0, "c");
        assert_eq!(doc.emit(), r#"{"b":[1,2.5,"x"],"a":{},"c":null}"#);
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"n":3,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(Json::Int(-1).as_usize(), None, "negative ints do not coerce");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for (input, fragment) in [
            ("", "end of input"),
            ("{", "object key"),
            ("[1,", "end of input"),
            ("[1 2]", "expected `,` or `]`"),
            ("{\"a\" 1}", "expected `:`"),
            ("tru", "expected `true`"),
            ("\"abc", "unterminated string"),
            ("\"\\q\"", "unknown escape"),
            ("\"\\ud834\"", "lone high surrogate"),
            ("\"\\udd1e\"", "lone low surrogate"),
            ("01", "trailing characters"),
            ("1.", "digit after `.`"),
            ("1e", "digit in exponent"),
            ("{} {}", "trailing characters"),
            ("\"\u{1}\"", "control character"),
        ] {
            let err = parse(input).unwrap_err();
            assert!(err.message.contains(fragment), "{input:?}: {err}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn floats_emit_with_a_marker() {
        assert_eq!(Json::Float(2.0).emit(), "2.0");
        assert_eq!(Json::Float(-0.5).emit(), "-0.5");
        assert_eq!(Json::Float(f64::NAN).emit(), "null");
        assert_eq!(Json::Float(f64::INFINITY).emit(), "null");
        // Emitted floats parse back as the same float.
        for v in [2.0, -0.5, 1.0e300, std::f64::consts::PI, -0.0] {
            match parse(&Json::Float(v).emit()).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), v.to_bits()),
                other => panic!("{v} re-parsed as {other:?}"),
            }
        }
    }

    #[test]
    fn emit_parse_round_trip_on_a_nested_value() {
        let value = Json::Object(vec![
            ("name".into(), Json::Str("a\"b\\c\nd\u{1}".into())),
            ("counts".into(), Json::Array(vec![Json::Int(0), Json::Int(-3), Json::Float(1.5)])),
            (
                "nested".into(),
                Json::Object(vec![("ok".into(), Json::Bool(true)), ("none".into(), Json::Null)]),
            ),
            ("empty".into(), Json::Array(vec![])),
        ]);
        let text = value.emit();
        assert_eq!(parse(&text).unwrap(), value);
        assert_eq!(parse(&text).unwrap().emit(), text);
    }
}
