//! The reusable synthesis engine: shared immutable inputs plus a
//! memoized elaboration cache behind one cheaply-cloneable handle.
//!
//! An [`Engine`] owns the things every run of the flow needs but none
//! should rebuild — the [`BenchmarkRegistry`] (each Table 1 STG is
//! constructed at most once), the target gate [`Library`], and a cache of
//! elaborated state graphs keyed by specification source and the
//! configuration subset that affects elaboration (CSC repair, reachability
//! limits). Cloning an `Engine` is an `Arc` bump: clones share the caches,
//! so a pool of worker threads — or [`crate::Batch`] with
//! [`crate::Batch::jobs`] — reuses every elaboration.
//!
//! ```
//! use simap_core::{Config, Engine};
//!
//! let engine = Engine::new(Config::default());
//! let first = engine.synthesize("hazard")?;
//! let again = engine.synthesize("hazard")?; // STG→SG reachability skipped
//! assert_eq!(first.inserted, again.inserted);
//! let stats = engine.cache_stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! # Ok::<(), simap_core::Error>(())
//! ```

use crate::config::Config;
use crate::error::Error;
use crate::flow::FlowReport;
use crate::pipeline::{Batch, Synthesis};
use simap_netlist::Library;
use simap_sg::StateGraph;
use simap_stg::{BenchmarkRegistry, Stg};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of the elaboration cache (see
/// [`Engine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Elaborations answered from the cache.
    pub hits: u64,
    /// Elaborations computed (and then cached).
    pub misses: u64,
    /// Distinct (source, configuration) entries currently cached.
    pub entries: usize,
    /// Entries evicted by the [`Config::cache_capacity`] bound (0 when
    /// the cache is unbounded).
    pub evicted: u64,
}

/// Cache key: the specification's identity plus the configuration subset
/// elaboration depends on. Literal limits, verification settings etc. do
/// **not** participate — runs at different limits share one elaboration.
/// Built once per elaboration via [`Engine::elab_key`] (the canonical
/// text of STG sources is O(spec size) to produce, so it is not rebuilt
/// for the lookup and the store separately).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ElabKey {
    source: SourceKey,
    repair_csc: bool,
    csc_max_insertions: usize,
    reach_max_states: usize,
    reach_max_tokens: u8,
    /// Both strategies produce byte-identical graphs, but cached entries
    /// carry the [`simap_stg::ReachStats`] of the run that filled them —
    /// keying by strategy keeps those counters honest (and lets a
    /// differential harness elaborate both ways through one engine).
    /// `ReachConfig::jobs` is deliberately *not* part of the key: it is
    /// pure execution parallelism with a byte-identical-output contract.
    reach_strategy: simap_stg::ReachStrategy,
    /// The symbolic strategy's materialization threshold changes whether
    /// an elaboration succeeds at all, so it participates too — but only
    /// under [`simap_stg::ReachStrategy::Symbolic`]; the enumerative
    /// engines ignore the knob, and keying it would cost them spurious
    /// cache misses (normalized to 0 there).
    reach_materialize_limit: usize,
    /// The spill engine's knobs, participating only under
    /// [`simap_stg::ReachStrategy::Spill`] for the same reason: graphs
    /// are byte-identical whatever the budget, but cached entries carry
    /// the run's [`simap_stg::SpillCounters`], which the budget, shard
    /// count and scratch directory all shape (normalized to `0`/`None`
    /// under the in-memory strategies). The checkpoint knobs
    /// (`checkpoint_every`, `checkpoint_dir`, `resume`) are excluded
    /// like `jobs`: a resumed run is byte-identical to a cold one by
    /// contract, so a warm cache entry is exactly the result a resume
    /// would have recomputed.
    reach_memory_budget: usize,
    reach_shards: usize,
    reach_spill_dir: Option<std::path::PathBuf>,
}

/// The source component of an [`ElabKey`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum SourceKey {
    /// A named circuit of the embedded suite.
    Benchmark(String),
    /// Canonical `.g` text (parsed sources and ad-hoc STGs, via
    /// [`simap_stg::write_g`]).
    Text(String),
}

#[derive(Clone)]
pub(crate) struct CachedElaboration {
    pub(crate) sg: Arc<StateGraph>,
    pub(crate) repaired: Vec<String>,
    /// The CSC conflicts of the *unrepaired* graph, kept so cache hits
    /// replay the same observer events as the cold run that filled them.
    pub(crate) conflicts: Vec<crate::csc::CscConflict>,
    /// Exploration counters of the cold run (`None` for sources that
    /// arrive pre-elaborated).
    pub(crate) reach: Option<simap_stg::ReachStats>,
}

struct Shared {
    registry: Arc<BenchmarkRegistry>,
    /// Entries tagged with their last-used tick (for LRU eviction when a
    /// [`Config::cache_capacity`] bound is set).
    cache: Mutex<HashMap<ElabKey, (CachedElaboration, u64)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    /// Monotonic use counter driving the LRU ordering.
    tick: AtomicU64,
}

/// The thread-safe, reusable front door to the synthesis pipeline.
///
/// See the [module docs](self) for the caching contract. All methods take
/// `&self`; the engine is `Send + Sync` and cloning it shares all state.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
    // Per-handle (not in `Shared`): the library tracks this handle's
    // literal limit, which `with_config` siblings may differ on.
    library: Arc<Library>,
    config: Config,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.cache_stats();
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("library", &self.library.name)
            .field("cache", &stats)
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(Config::default())
    }
}

impl Engine {
    /// An engine running every synthesis with `config`. The gate library
    /// is derived from the configured literal limit.
    pub fn new(config: Config) -> Self {
        Engine {
            shared: Arc::new(Shared {
                registry: Arc::new(BenchmarkRegistry::new()),
                cache: Mutex::new(HashMap::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                tick: AtomicU64::new(0),
            }),
            library: Arc::new(library_for_limit(config.literal_limit())),
            config,
        }
    }

    /// The engine's base configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// A sibling engine with a different configuration **sharing** this
    /// engine's registry and elaboration cache (entries are keyed by the
    /// relevant configuration subset, so sharing is always sound). The
    /// sibling's [`Engine::library`] tracks the new literal limit.
    pub fn with_config(&self, config: Config) -> Engine {
        let library = if config.literal_limit() == self.config.literal_limit() {
            self.library.clone()
        } else {
            Arc::new(library_for_limit(config.literal_limit()))
        };
        Engine { shared: self.shared.clone(), library, config }
    }

    /// The shared benchmark registry handle.
    pub fn registry(&self) -> &BenchmarkRegistry {
        &self.shared.registry
    }

    /// The target gate library (matching this handle's literal limit).
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// A [`Synthesis`] of a named Table 1 benchmark, configured with this
    /// engine's [`Config`] and wired to its caches.
    pub fn benchmark(&self, name: impl Into<String>) -> Synthesis {
        Synthesis::from_benchmark(name).config(&self.config).engine(self.clone())
    }

    /// A [`Synthesis`] of `.g` source text, wired to this engine.
    pub fn g_source(&self, source: impl Into<String>) -> Synthesis {
        Synthesis::from_g_source(source).config(&self.config).engine(self.clone())
    }

    /// A [`Synthesis`] of an already-built STG, wired to this engine (the
    /// elaboration cache keys it by its canonical `.g` rendering).
    pub fn stg(&self, stg: Stg) -> Synthesis {
        Synthesis::from_stg(stg).config(&self.config).engine(self.clone())
    }

    /// A [`Synthesis`] of an already-elaborated state graph (never
    /// cached: elaboration is already done).
    pub fn state_graph(&self, sg: StateGraph) -> Synthesis {
        Synthesis::from_state_graph(sg).config(&self.config).engine(self.clone())
    }

    /// Runs the whole flow on a named benchmark with the engine's
    /// configuration.
    ///
    /// # Errors
    /// Everything [`Synthesis::run`] can raise.
    pub fn synthesize(&self, name: &str) -> Result<FlowReport, Error> {
        self.benchmark(name).run()
    }

    /// A [`Batch`] over the given benchmark names, sharing this engine's
    /// caches (and configuration).
    pub fn batch<I, S>(&self, names: I) -> Batch
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Batch::on_engine(self.clone(), names)
    }

    /// A [`Batch`] over the whole embedded 32-circuit Table 1 suite.
    pub fn batch_all(&self) -> Batch {
        self.batch(self.shared.registry.names().iter().copied())
    }

    /// Elaboration-cache counters since the engine (or the first engine
    /// of its [`Engine::with_config`] family) was created.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            entries: self.shared.cache.lock().expect("cache lock").len(),
            evicted: self.shared.evicted.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached elaboration (counters keep accumulating).
    pub fn clear_cache(&self) {
        self.shared.cache.lock().expect("cache lock").clear();
    }

    /// The full cache key of one elaboration (built once, used for both
    /// the lookup and — on a miss — the store).
    pub(crate) fn elab_key(&self, source: SourceKey, config: &Config) -> ElabKey {
        ElabKey {
            source,
            repair_csc: config.flow.repair_csc,
            csc_max_insertions: config.csc_repair.max_insertions,
            reach_max_states: config.reach.max_states,
            reach_max_tokens: config.reach.max_tokens,
            reach_strategy: config.reach.strategy,
            reach_materialize_limit: match config.reach.strategy {
                simap_stg::ReachStrategy::Symbolic => config.reach.materialize_limit,
                _ => 0,
            },
            reach_memory_budget: match config.reach.strategy {
                simap_stg::ReachStrategy::Spill => config.reach.memory_budget,
                _ => 0,
            },
            reach_shards: match config.reach.strategy {
                simap_stg::ReachStrategy::Spill => config.reach.shards,
                _ => 0,
            },
            reach_spill_dir: match config.reach.strategy {
                simap_stg::ReachStrategy::Spill => config.reach.spill_dir.clone(),
                _ => None,
            },
        }
    }

    /// Cache lookup; counts a hit (and refreshes the entry's LRU tick)
    /// when present.
    pub(crate) fn lookup(&self, key: &ElabKey) -> Option<CachedElaboration> {
        let mut cache = self.shared.cache.lock().expect("cache lock");
        let hit = cache.get_mut(key).map(|slot| {
            slot.1 = self.shared.tick.fetch_add(1, Ordering::Relaxed) + 1;
            slot.0.clone()
        });
        drop(cache);
        if hit.is_some() {
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Stores a freshly computed elaboration; counts a miss. When this
    /// handle's [`Config::cache_capacity`] bounds the cache, the
    /// least-recently-used entries are evicted to fit (siblings created
    /// by [`Engine::with_config`] share the cache but enforce their own
    /// capacity at their own stores).
    pub(crate) fn store(&self, key: ElabKey, entry: CachedElaboration) {
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
        let tick = self.shared.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cache = self.shared.cache.lock().expect("cache lock");
        cache.insert(key, (entry, tick));
        if let Some(capacity) = self.config.cache_capacity() {
            while cache.len() > capacity {
                let victim = cache
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| k.clone())
                    .expect("over-capacity cache is non-empty");
                cache.remove(&victim);
                self.shared.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The library matching a literal limit (used for reporting; the flow's
/// own limit lives in [`Config::literal_limit`]).
fn library_for_limit(limit: usize) -> Library {
    match limit {
        0..=2 => Library::two_input(),
        3 => Library::three_input(),
        4 => Library::four_input(),
        n => Library { name: format!("{n}-input"), max_literals: n, has_c_elements: true },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_cache() {
        let engine = Engine::default();
        let clone = engine.clone();
        clone.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().misses, 1);
        engine.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().hits, 1, "the clone's entry is visible");
        assert_eq!(engine.cache_stats().entries, 1);
    }

    #[test]
    fn with_config_shares_but_keys_separately() {
        let engine = Engine::default();
        engine.benchmark("half").elaborate().unwrap();
        // Same elaboration-relevant subset: a different literal limit
        // still hits.
        let at3 = engine.with_config(Config::builder().literal_limit(3).build().unwrap());
        at3.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().hits, 1);
        // The materialization threshold only matters to the symbolic
        // strategy: changing it under the packed default still hits.
        let other_limit =
            engine.with_config(Config::builder().reach_materialize_limit(123).build().unwrap());
        other_limit.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().hits, 2);
        // Repair toggled: a different entry.
        let repairing = engine.with_config(Config::builder().repair_csc(true).build().unwrap());
        repairing.benchmark("half").elaborate().unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
    }

    #[test]
    fn stg_and_g_sources_are_cached_by_canonical_text() {
        let engine = Engine::default();
        let stg = simap_stg::benchmark("hazard").unwrap();
        engine.stg(stg.clone()).elaborate().unwrap();
        engine.stg(stg).elaborate().unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn state_graph_sources_bypass_the_cache() {
        let engine = Engine::default();
        let sg = engine.benchmark("half").elaborate().unwrap().state_graph().clone();
        engine.state_graph(sg.clone()).elaborate().unwrap();
        engine.state_graph(sg).elaborate().unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "only the benchmark elaboration counted");
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let engine = Engine::new(Config::builder().cache_capacity(2).build().unwrap());
        engine.benchmark("half").elaborate().unwrap();
        engine.benchmark("hazard").elaborate().unwrap();
        engine.benchmark("converta").elaborate().unwrap(); // evicts "half"
        let stats = engine.cache_stats();
        assert_eq!((stats.entries, stats.evicted, stats.misses), (2, 1, 3));
        // "half" was evicted: elaborating it again misses and in turn
        // evicts "hazard" (the least recently used of the survivors).
        engine.benchmark("half").elaborate().unwrap();
        engine.benchmark("converta").elaborate().unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.entries, stats.evicted), (2, 2));
        assert_eq!((stats.hits, stats.misses), (1, 4), "converta survived, hazard did not");
        engine.benchmark("hazard").elaborate().unwrap();
        assert_eq!(engine.cache_stats().misses, 5);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let engine = Engine::default();
        for name in ["half", "hazard", "converta", "alloc-outbound"] {
            engine.benchmark(name).elaborate().unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!((stats.entries, stats.evicted), (4, 0));
    }

    #[test]
    fn spill_knobs_key_the_cache_only_under_spill() {
        let engine = Engine::default();
        engine.benchmark("half").elaborate().unwrap();
        // The spill knobs are inert under the packed default: still a hit.
        let other_budget = engine.with_config(
            Config::builder().reach_memory_budget(123 * 1024).reach_shards(2).build().unwrap(),
        );
        other_budget.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().hits, 1);
        // Under the spill strategy they shape the cached spill counters,
        // so they participate in the key.
        let spill = engine.with_config(
            Config::builder().reach_strategy(simap_stg::ReachStrategy::Spill).build().unwrap(),
        );
        spill.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().misses, 2, "strategy + budget key a fresh entry");
        let spill_small = engine.with_config(
            Config::builder()
                .reach_strategy(simap_stg::ReachStrategy::Spill)
                .reach_memory_budget(64 * 1024)
                .build()
                .unwrap(),
        );
        spill_small.benchmark("half").elaborate().unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 3), "budget changes miss under spill");
        spill.benchmark("half").elaborate().unwrap();
        assert_eq!(engine.cache_stats().hits, 2, "each spill configuration hits its own entry");
    }

    #[test]
    fn library_tracks_the_limit() {
        assert_eq!(Engine::default().library().max_literals, 2);
        let at4 = Engine::new(Config::builder().literal_limit(4).build().unwrap());
        assert_eq!(at4.library().max_literals, 4);
        let at7 = Engine::new(Config::builder().literal_limit(7).build().unwrap());
        assert_eq!(at7.library().max_literals, 7);
    }

    #[test]
    fn with_config_rebuilds_the_library() {
        let engine = Engine::default();
        let at4 = engine.with_config(Config::builder().literal_limit(4).build().unwrap());
        assert_eq!(at4.library().max_literals, 4, "sibling must not keep the 2-input library");
        assert_eq!(engine.library().max_literals, 2, "the original is untouched");
        // Same limit: the library handle is shared, not rebuilt.
        let same = engine.with_config(Config::builder().verify(false).build().unwrap());
        assert!(Arc::ptr_eq(&engine.library, &same.library));
    }
}
