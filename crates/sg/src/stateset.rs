//! Dense bit-set over state ids.

use crate::graph::StateId;

/// A set of [`StateId`]s backed by a bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StateSet {
    bits: Vec<u64>,
    len: usize,
}

impl StateSet {
    /// Empty set sized for `n` states.
    pub fn new(n: usize) -> Self {
        StateSet { bits: vec![0; n.div_ceil(64)], len: n }
    }

    /// Set containing the given states.
    pub fn from_states<I: IntoIterator<Item = StateId>>(n: usize, states: I) -> Self {
        let mut set = StateSet::new(n);
        for s in states {
            set.insert(s);
        }
        set
    }

    /// Capacity (number of addressable states).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts a state; returns whether it was newly inserted.
    pub fn insert(&mut self, s: StateId) -> bool {
        let (w, b) = (s.0 / 64, s.0 % 64);
        let present = self.bits[w] >> b & 1 == 1;
        self.bits[w] |= 1 << b;
        !present
    }

    /// Removes a state; returns whether it was present.
    pub fn remove(&mut self, s: StateId) -> bool {
        let (w, b) = (s.0 / 64, s.0 % 64);
        let present = self.bits[w] >> b & 1 == 1;
        self.bits[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, s: StateId) -> bool {
        let (w, b) = (s.0 / 64, s.0 % 64);
        self.bits.get(w).map(|word| word >> b & 1 == 1).unwrap_or(false)
    }

    /// Number of states in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter_map(
                move |b| {
                    if word >> b & 1 == 1 {
                        Some(StateId(w * 64 + b))
                    } else {
                        None
                    }
                },
            )
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &StateSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &StateSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &StateSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Whether the two sets share a member.
    pub fn intersects(&self, other: &StateSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &StateSet) -> bool {
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }
}

impl FromIterator<StateId> for StateSet {
    /// Collects states, growing capacity to the largest id seen.
    fn from_iter<T: IntoIterator<Item = StateId>>(iter: T) -> Self {
        let states: Vec<StateId> = iter.into_iter().collect();
        let n = states.iter().map(|s| s.0 + 1).max().unwrap_or(0);
        StateSet::from_states(n, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = StateSet::new(130);
        assert!(set.insert(StateId(0)));
        assert!(set.insert(StateId(129)));
        assert!(!set.insert(StateId(0)));
        assert!(set.contains(StateId(129)));
        assert!(!set.contains(StateId(1)));
        assert_eq!(set.count(), 2);
        assert!(set.remove(StateId(0)));
        assert!(!set.remove(StateId(0)));
        assert_eq!(set.count(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = StateSet::from_states(10, [StateId(1), StateId(2), StateId(3)]);
        let b = StateSet::from_states(10, [StateId(3), StateId(4)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 4);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![StateId(1), StateId(2)]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![StateId(3)]);
        assert!(a.intersects(&b));
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn iteration_order() {
        let set = StateSet::from_states(100, [StateId(99), StateId(5), StateId(64)]);
        let ids: Vec<usize> = set.iter().map(|s| s.0).collect();
        assert_eq!(ids, vec![5, 64, 99]);
    }
}
