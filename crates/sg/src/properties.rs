//! Implementability properties of state graphs (§2.1): consistency,
//! determinism, commutativity, output persistency and Complete State
//! Coding.

use crate::graph::{StateGraph, StateId};
use crate::signal::Event;
use std::collections::HashMap;
use std::fmt;

/// A violation of one of the SG properties, with enough context to debug a
/// specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyViolation {
    /// An arc whose source/target codes are not a single-bit change of the
    /// right polarity on the fired signal.
    Inconsistent {
        /// Source state.
        src: StateId,
        /// Fired event.
        event: Event,
        /// Target state.
        dst: StateId,
    },
    /// Two arcs with the same label leave a state towards different targets.
    NonDeterministic {
        /// The branching state.
        state: StateId,
        /// The ambiguous event.
        event: Event,
    },
    /// A commuting pair of events does not reconverge.
    NonCommutative {
        /// The state where both events are enabled.
        state: StateId,
        /// First event.
        first: Event,
        /// Second event.
        second: Event,
    },
    /// An enabled non-input event is disabled by another event.
    NonPersistent {
        /// State where `event` was enabled.
        state: StateId,
        /// The event that lost its enabling.
        event: Event,
        /// The event whose firing disabled it.
        disabled_by: Event,
    },
    /// Two states share a code but enable different non-input events.
    CscConflict {
        /// First state.
        a: StateId,
        /// Second state.
        b: StateId,
        /// The shared code.
        code: u64,
    },
    /// A state is not reachable from the initial state.
    Unreachable {
        /// The orphaned state.
        state: StateId,
    },
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyViolation::Inconsistent { src, event, dst } => {
                write!(f, "inconsistent arc {}-{}->{}", src.0, event, dst.0)
            }
            PropertyViolation::NonDeterministic { state, event } => {
                write!(f, "non-deterministic event {event} at state {}", state.0)
            }
            PropertyViolation::NonCommutative { state, first, second } => {
                write!(f, "events {first},{second} do not commute from state {}", state.0)
            }
            PropertyViolation::NonPersistent { state, event, disabled_by } => {
                write!(f, "event {event} disabled by {disabled_by} at state {}", state.0)
            }
            PropertyViolation::CscConflict { a, b, code } => {
                write!(f, "CSC conflict between states {} and {} (code {code:b})", a.0, b.0)
            }
            PropertyViolation::Unreachable { state } => {
                write!(f, "state {} unreachable from the initial state", state.0)
            }
        }
    }
}

/// Summary of every property check (§2.1's implementability conditions).
#[derive(Debug, Clone, Default)]
pub struct PropertyReport {
    /// All detected violations.
    pub violations: Vec<PropertyViolation>,
}

impl PropertyReport {
    /// Whether the SG is consistent, deterministic, commutative,
    /// output-persistent, CSC-correct and fully reachable.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the SG is speed-independent (deterministic + commutative +
    /// output-persistent), disregarding CSC/reachability issues.
    pub fn is_speed_independent(&self) -> bool {
        !self.violations.iter().any(|v| {
            matches!(
                v,
                PropertyViolation::NonDeterministic { .. }
                    | PropertyViolation::NonCommutative { .. }
                    | PropertyViolation::NonPersistent { .. }
                    | PropertyViolation::Inconsistent { .. }
            )
        })
    }

    /// Whether CSC holds.
    pub fn has_csc(&self) -> bool {
        !self.violations.iter().any(|v| matches!(v, PropertyViolation::CscConflict { .. }))
    }
}

/// Checks labeling consistency: along every arc exactly the fired signal
/// toggles, with the polarity announced by the event.
pub fn check_consistency(sg: &StateGraph) -> Vec<PropertyViolation> {
    let mut out = Vec::new();
    for s in sg.states() {
        for &(e, t) in sg.succ(s) {
            let bit = 1u64 << e.signal.0;
            let (cs, ct) = (sg.code(s), sg.code(t));
            let src_ok = (cs & bit != 0) == e.pre_value();
            let dst_ok = (ct & bit != 0) == e.post_value();
            let others_ok = cs & !bit == ct & !bit;
            if !(src_ok && dst_ok && others_ok) {
                out.push(PropertyViolation::Inconsistent { src: s, event: e, dst: t });
            }
        }
    }
    out
}

/// Checks determinism: at most one target per (state, event).
pub fn check_determinism(sg: &StateGraph) -> Vec<PropertyViolation> {
    let mut out = Vec::new();
    for s in sg.states() {
        let mut seen: HashMap<Event, StateId> = HashMap::new();
        for &(e, t) in sg.succ(s) {
            if let Some(&prev) = seen.get(&e) {
                if prev != t {
                    out.push(PropertyViolation::NonDeterministic { state: s, event: e });
                }
            } else {
                seen.insert(e, t);
            }
        }
    }
    out
}

/// Checks commutativity: if `a` then `b` and `b` then `a` are both
/// executable from a state, they must reach the same state.
pub fn check_commutativity(sg: &StateGraph) -> Vec<PropertyViolation> {
    let mut out = Vec::new();
    for s in sg.states() {
        let succ = sg.succ(s);
        for (i, &(a, sa)) in succ.iter().enumerate() {
            for &(b, sb) in &succ[i + 1..] {
                if a == b {
                    continue;
                }
                let ab = sg.fire(sa, b);
                let ba = sg.fire(sb, a);
                if let (Some(t1), Some(t2)) = (ab, ba) {
                    if t1 != t2 {
                        out.push(PropertyViolation::NonCommutative {
                            state: s,
                            first: a,
                            second: b,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Checks output persistency: an enabled non-input event stays enabled
/// after any *other* event fires (one-step check suffices by induction).
pub fn check_output_persistency(sg: &StateGraph) -> Vec<PropertyViolation> {
    let mut out = Vec::new();
    for s in sg.states() {
        for e in sg.enabled_non_input_events(s) {
            for &(other, t) in sg.succ(s) {
                if other == e || other.signal == e.signal {
                    continue;
                }
                if !sg.enabled(t, e) {
                    out.push(PropertyViolation::NonPersistent {
                        state: s,
                        event: e,
                        disabled_by: other,
                    });
                }
            }
        }
    }
    out
}

/// Checks Complete State Coding: states with equal codes enable the same
/// set of non-input events.
pub fn check_csc(sg: &StateGraph) -> Vec<PropertyViolation> {
    let mut by_code: HashMap<u64, Vec<StateId>> = HashMap::new();
    for s in sg.states() {
        by_code.entry(sg.code(s)).or_default().push(s);
    }
    let mut out = Vec::new();
    for (code, states) in by_code {
        if states.len() < 2 {
            continue;
        }
        let reference = sg.enabled_non_input_events(states[0]);
        for &s in &states[1..] {
            if sg.enabled_non_input_events(s) != reference {
                out.push(PropertyViolation::CscConflict { a: states[0], b: s, code });
            }
        }
    }
    out
}

/// Checks that every state is reachable from the initial state.
pub fn check_reachability(sg: &StateGraph) -> Vec<PropertyViolation> {
    let mut seen = vec![false; sg.state_count()];
    let mut stack = vec![sg.initial()];
    seen[sg.initial().0] = true;
    while let Some(s) = stack.pop() {
        for &(_, t) in sg.succ(s) {
            if !seen[t.0] {
                seen[t.0] = true;
                stack.push(t);
            }
        }
    }
    seen.iter()
        .enumerate()
        .filter(|&(_, &v)| !v)
        .map(|(i, _)| PropertyViolation::Unreachable { state: StateId(i) })
        .collect()
}

/// Runs every check and aggregates the violations.
pub fn check_all(sg: &StateGraph) -> PropertyReport {
    let mut violations = Vec::new();
    violations.extend(check_consistency(sg));
    violations.extend(check_determinism(sg));
    violations.extend(check_commutativity(sg));
    violations.extend(check_output_persistency(sg));
    violations.extend(check_csc(sg));
    violations.extend(check_reachability(sg));
    PropertyReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StateGraphBuilder;
    use crate::signal::{Signal, SignalId, SignalKind};

    fn sig(name: &str, kind: SignalKind) -> Signal {
        Signal::new(name, kind)
    }

    /// a+ ; b+ ; a- ; b- ring: all properties hold.
    fn good_ring() -> StateGraph {
        let mut b = StateGraphBuilder::new(
            "ring",
            vec![sig("a", SignalKind::Input), sig("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [b.add_state(0b00), b.add_state(0b01), b.add_state(0b11), b.add_state(0b10)];
        let (a, bb) = (SignalId(0), SignalId(1));
        b.add_arc(s[0], Event::rise(a), s[1]);
        b.add_arc(s[1], Event::rise(bb), s[2]);
        b.add_arc(s[2], Event::fall(a), s[3]);
        b.add_arc(s[3], Event::fall(bb), s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn ring_is_clean() {
        let report = check_all(&good_ring());
        assert!(report.is_ok(), "violations: {:?}", report.violations);
        assert!(report.is_speed_independent());
        assert!(report.has_csc());
    }

    #[test]
    fn detects_inconsistency() {
        let mut b = StateGraphBuilder::new("bad", vec![sig("a", SignalKind::Output)]).unwrap();
        let s0 = b.add_state(0);
        let s1 = b.add_state(0); // a+ should lead to code 1
        b.add_arc(s0, Event::rise(SignalId(0)), s1);
        b.add_arc(s1, Event::fall(SignalId(0)), s0);
        let g = b.build(s0).unwrap();
        assert!(!check_consistency(&g).is_empty());
    }

    #[test]
    fn detects_nondeterminism() {
        let mut b = StateGraphBuilder::new("nd", vec![sig("a", SignalKind::Output)]).unwrap();
        let s0 = b.add_state(0);
        let s1 = b.add_state(1);
        let s2 = b.add_state(1);
        b.add_arc(s0, Event::rise(SignalId(0)), s1);
        b.add_arc(s0, Event::rise(SignalId(0)), s2);
        let g = b.build(s0).unwrap();
        assert!(!check_determinism(&g).is_empty());
    }

    #[test]
    fn detects_noncommutativity() {
        // Diamond where ab and ba diverge.
        let mut b = StateGraphBuilder::new(
            "nc",
            vec![
                sig("a", SignalKind::Input),
                sig("b", SignalKind::Input),
                sig("c", SignalKind::Input),
            ],
        )
        .unwrap();
        let s0 = b.add_state(0b000);
        let sa = b.add_state(0b001);
        let sb = b.add_state(0b010);
        let t1 = b.add_state(0b011);
        let t2 = b.add_state(0b111); // divergent: extra c bit (inconsistent too, but that's fine)
        let (a, bb) = (SignalId(0), SignalId(1));
        b.add_arc(s0, Event::rise(a), sa);
        b.add_arc(s0, Event::rise(bb), sb);
        b.add_arc(sa, Event::rise(bb), t1);
        b.add_arc(sb, Event::rise(a), t2);
        let g = b.build(s0).unwrap();
        assert!(!check_commutativity(&g).is_empty());
    }

    #[test]
    fn detects_nonpersistency() {
        // Output b+ enabled at s0, disabled after input a+ fires.
        let mut b = StateGraphBuilder::new(
            "np",
            vec![sig("a", SignalKind::Input), sig("b", SignalKind::Output)],
        )
        .unwrap();
        let s0 = b.add_state(0b00);
        let s1 = b.add_state(0b01);
        let s2 = b.add_state(0b10);
        let (a, bb) = (SignalId(0), SignalId(1));
        b.add_arc(s0, Event::rise(a), s1);
        b.add_arc(s0, Event::rise(bb), s2);
        // b+ not enabled at s1: persistency violation for b+.
        b.add_arc(s1, Event::fall(a), s0);
        let g = b.build(s0).unwrap();
        let v = check_output_persistency(&g);
        assert!(v.iter().any(|v| matches!(
            v,
            PropertyViolation::NonPersistent { event, .. } if *event == Event::rise(bb)
        )));
    }

    #[test]
    fn input_choice_is_allowed() {
        // Two inputs in choice: persistency only applies to outputs.
        let mut b = StateGraphBuilder::new(
            "choice",
            vec![sig("a", SignalKind::Input), sig("b", SignalKind::Input)],
        )
        .unwrap();
        let s0 = b.add_state(0b00);
        let s1 = b.add_state(0b01);
        let s2 = b.add_state(0b10);
        b.add_arc(s0, Event::rise(SignalId(0)), s1);
        b.add_arc(s0, Event::rise(SignalId(1)), s2);
        b.add_arc(s1, Event::fall(SignalId(0)), s0);
        b.add_arc(s2, Event::fall(SignalId(1)), s0);
        let g = b.build(s0).unwrap();
        assert!(check_output_persistency(&g).is_empty());
    }

    #[test]
    fn detects_csc_conflict() {
        // Two distinct states share code 0 but enable different outputs.
        let mut b = StateGraphBuilder::new(
            "csc",
            vec![sig("a", SignalKind::Input), sig("b", SignalKind::Output)],
        )
        .unwrap();
        let s0 = b.add_state(0b00);
        let s1 = b.add_state(0b01);
        let s2 = b.add_state(0b00); // same code as s0
        let s3 = b.add_state(0b10);
        let (a, bb) = (SignalId(0), SignalId(1));
        b.add_arc(s0, Event::rise(a), s1);
        b.add_arc(s1, Event::fall(a), s2);
        b.add_arc(s2, Event::rise(bb), s3);
        b.add_arc(s3, Event::fall(bb), s0);
        let g = b.build(s0).unwrap();
        let v = check_csc(&g);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], PropertyViolation::CscConflict { code: 0, .. }));
    }

    #[test]
    fn detects_unreachable() {
        let mut b = StateGraphBuilder::new("unreach", vec![sig("a", SignalKind::Input)]).unwrap();
        let s0 = b.add_state(0);
        let _orphan = b.add_state(1);
        let g = b.build(s0).unwrap();
        assert_eq!(check_reachability(&g).len(), 1);
    }
}
