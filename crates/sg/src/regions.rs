//! Excitation, switching and quiescent regions (§2.2), trigger events and
//! state diamonds.

use crate::graph::{StateGraph, StateId};
use crate::signal::Event;
use crate::stateset::StateSet;

/// An excitation region `ERj(a*)` together with its switching region
/// `SRj(a*)` and restricted quiescent region `QRj(a*)`.
#[derive(Debug, Clone)]
pub struct Region {
    /// The event this region excites.
    pub event: Event,
    /// Index `j` distinguishing connected occurrences of the event.
    pub index: usize,
    /// The excitation region: a maximal connected set of states where the
    /// event is enabled.
    pub er: StateSet,
    /// States entered immediately after the event fires from this region.
    pub sr: StateSet,
    /// The restricted quiescent region: states reachable from this region
    /// where the signal is stable at its post-transition value and that are
    /// not reachable from a different excitation region of the same event
    /// without passing through this one.
    pub qr: StateSet,
}

impl Region {
    /// The trigger events of this region: labels of arcs entering the ER
    /// from outside.
    pub fn trigger_events(&self, sg: &StateGraph) -> Vec<Event> {
        let mut triggers = Vec::new();
        for s in self.er.iter() {
            for &(e, p) in sg.pred(s) {
                if !self.er.contains(p) && !triggers.contains(&e) {
                    triggers.push(e);
                }
            }
        }
        triggers.sort();
        triggers
    }
}

/// Computes all excitation regions of `event` (connected components of the
/// set of states where it is enabled), each with its SR and restricted QR.
pub fn regions_of(sg: &StateGraph, event: Event) -> Vec<Region> {
    let n = sg.state_count();
    let mut excited = StateSet::new(n);
    for s in sg.states() {
        if sg.enabled(s, event) {
            excited.insert(s);
        }
    }
    let components = connected_components(sg, &excited);

    // Switching regions.
    let mut regions: Vec<Region> = components
        .into_iter()
        .enumerate()
        .map(|(index, er)| {
            let mut sr = StateSet::new(n);
            for s in er.iter() {
                if let Some(t) = sg.fire(s, event) {
                    sr.insert(t);
                }
            }
            Region { event, index, er, sr, qr: StateSet::new(n) }
        })
        .collect();

    // Quiescent regions: BFS from each SR through states where the signal
    // is stable at the post-transition value. Stability blocks the walk
    // from crossing any other excitation region of the same signal, so the
    // "without going through ERj" restriction reduces to removing overlaps
    // between the raw walks of different regions (restricted QR, §2.2
    // footnote 2).
    let post = event.post_value();
    let raw: Vec<StateSet> = regions
        .iter()
        .map(|r| {
            let mut qr = StateSet::new(n);
            let mut stack: Vec<StateId> = Vec::new();
            for s in r.sr.iter() {
                if sg.value(s, event.signal) == post && sg.stable(s, event.signal) && qr.insert(s) {
                    stack.push(s);
                }
            }
            while let Some(s) = stack.pop() {
                for &(_, t) in sg.succ(s) {
                    if sg.value(t, event.signal) == post
                        && sg.stable(t, event.signal)
                        && qr.insert(t)
                    {
                        stack.push(t);
                    }
                }
            }
            qr
        })
        .collect();
    for (i, region) in regions.iter_mut().enumerate() {
        let mut qr = raw[i].clone();
        for (j, other) in raw.iter().enumerate() {
            if i != j {
                qr.difference_with(other);
            }
        }
        region.qr = qr;
    }
    regions
}

/// All regions of every transition of `signal` (both polarities).
pub fn signal_regions(sg: &StateGraph, signal: crate::signal::SignalId) -> Vec<Region> {
    let mut out = regions_of(sg, Event::rise(signal));
    out.extend(regions_of(sg, Event::fall(signal)));
    out
}

/// Weakly-connected components of `set` under the SG adjacency restricted
/// to `set`.
pub fn connected_components(sg: &StateGraph, set: &StateSet) -> Vec<StateSet> {
    let n = sg.state_count();
    let mut visited = StateSet::new(n);
    let mut components = Vec::new();
    for seed in set.iter() {
        if visited.contains(seed) {
            continue;
        }
        let mut comp = StateSet::new(n);
        let mut stack = vec![seed];
        visited.insert(seed);
        comp.insert(seed);
        while let Some(s) = stack.pop() {
            let neighbours =
                sg.succ(s).iter().map(|&(_, t)| t).chain(sg.pred(s).iter().map(|&(_, t)| t));
            for t in neighbours {
                if set.contains(t) && !visited.contains(t) {
                    visited.insert(t);
                    comp.insert(t);
                    stack.push(t);
                }
            }
        }
        components.push(comp);
    }
    components
}

/// A commuting square: `s -a-> sa -b-> t` and `s -b-> sb -a-> t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Diamond {
    /// Bottom state (both events enabled).
    pub s: StateId,
    /// After firing `a`.
    pub sa: StateId,
    /// After firing `b`.
    pub sb: StateId,
    /// Top state (both fired).
    pub t: StateId,
    /// First event.
    pub a: Event,
    /// Second event.
    pub b: Event,
}

/// Enumerates all state diamonds of the graph. Each unordered event pair is
/// reported once per bottom state.
pub fn diamonds(sg: &StateGraph) -> Vec<Diamond> {
    let mut out = Vec::new();
    for s in sg.states() {
        let succ = sg.succ(s);
        for (i, &(a, sa)) in succ.iter().enumerate() {
            for &(b, sb) in &succ[i + 1..] {
                if a == b {
                    continue;
                }
                if let (Some(t1), Some(t2)) = (sg.fire(sa, b), sg.fire(sb, a)) {
                    if t1 == t2 {
                        out.push(Diamond { s, sa, sb, t: t1, a, b });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StateGraphBuilder;
    use crate::signal::{Signal, SignalId, SignalKind};

    /// Fork/join: a+ then (b+ || c+) then d+ then everything falls.
    /// Signals: a(in) b(out) c(out) d(out). Codes: bit0=a bit1=b bit2=c bit3=d.
    fn fork_join() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "fj",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Output),
                Signal::new("c", SignalKind::Output),
                Signal::new("d", SignalKind::Output),
            ],
        )
        .unwrap();
        // rising phase
        let s0 = bd.add_state(0b0000);
        let s1 = bd.add_state(0b0001); // a
        let sb = bd.add_state(0b0011); // a b
        let sc = bd.add_state(0b0101); // a c
        let sbc = bd.add_state(0b0111); // a b c
        let sd = bd.add_state(0b1111); // all
                                       // falling phase (sequential: a- b- c- d-)
        let f1 = bd.add_state(0b1110);
        let f2 = bd.add_state(0b1100);
        let f3 = bd.add_state(0b1000);
        let (a, b, c, d) = (SignalId(0), SignalId(1), SignalId(2), SignalId(3));
        bd.add_arc(s0, Event::rise(a), s1);
        bd.add_arc(s1, Event::rise(b), sb);
        bd.add_arc(s1, Event::rise(c), sc);
        bd.add_arc(sb, Event::rise(c), sbc);
        bd.add_arc(sc, Event::rise(b), sbc);
        bd.add_arc(sbc, Event::rise(d), sd);
        bd.add_arc(sd, Event::fall(a), f1);
        bd.add_arc(f1, Event::fall(b), f2);
        bd.add_arc(f2, Event::fall(c), f3);
        bd.add_arc(f3, Event::fall(d), s0);
        bd.build(s0).unwrap()
    }

    #[test]
    fn excitation_regions_are_connected() {
        let g = fork_join();
        let d = SignalId(3);
        let regs = regions_of(&g, Event::rise(d));
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].er.count(), 1); // only state sbc
        assert_eq!(regs[0].sr.count(), 1); // state sd
    }

    #[test]
    fn b_rise_region_spans_concurrency() {
        let g = fork_join();
        let b = SignalId(1);
        let regs = regions_of(&g, Event::rise(b));
        // b+ enabled at s1 and sc (concurrent with c+): one connected ER.
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].er.count(), 2);
    }

    #[test]
    fn quiescent_region_follows_stability() {
        let g = fork_join();
        let d = SignalId(3);
        let regs = regions_of(&g, Event::rise(d));
        let qr = &regs[0].qr;
        // After d+ : states sd(1111), f1(1110), f2(1100), f3? d falls at f3,
        // so f3 is in ER(d-) and not quiescent.
        assert_eq!(qr.count(), 3);
    }

    #[test]
    fn triggers_of_d_rise() {
        let g = fork_join();
        let d = SignalId(3);
        let regs = regions_of(&g, Event::rise(d));
        let trig = regs[0].trigger_events(&g);
        // ER(d+) = {sbc}; entered by b+ (from sc) and c+ (from sb).
        assert_eq!(trig, vec![Event::rise(SignalId(1)), Event::rise(SignalId(2))]);
    }

    #[test]
    fn diamond_enumeration() {
        let g = fork_join();
        let ds = diamonds(&g);
        assert_eq!(ds.len(), 1);
        let dia = ds[0];
        assert_eq!(dia.a.signal, SignalId(1));
        assert_eq!(dia.b.signal, SignalId(2));
    }

    #[test]
    fn quiescent_region_stops_at_reexcitation() {
        // In a plain ring the QR of b+ runs from after b+ up to (not
        // including) the state where b- becomes enabled.
        let mut bd = StateGraphBuilder::new(
            "ring4",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [bd.add_state(0b00), bd.add_state(0b01), bd.add_state(0b11), bd.add_state(0b10)];
        let (a, b) = (SignalId(0), SignalId(1));
        bd.add_arc(s[0], Event::rise(a), s[1]);
        bd.add_arc(s[1], Event::rise(b), s[2]);
        bd.add_arc(s[2], Event::fall(a), s[3]);
        bd.add_arc(s[3], Event::fall(b), s[0]);
        let g = bd.build(s[0]).unwrap();
        let regs = regions_of(&g, Event::rise(b));
        assert_eq!(regs.len(), 1);
        // ER = {s1}; SR = {s2}; QR = {s2} only — at s3 b- is enabled.
        assert_eq!(regs[0].er.iter().collect::<Vec<_>>(), vec![s[1]]);
        assert_eq!(regs[0].qr.iter().collect::<Vec<_>>(), vec![s[2]]);
    }

    #[test]
    fn trigger_events_exclude_internal_arcs() {
        let g = fork_join();
        let b = SignalId(1);
        let regs = regions_of(&g, Event::rise(b));
        // ER(b+) = {s1, sc}: entered by a+ (into s1) and left... c+ moves
        // within the ER (s1->sc), so c+ must NOT be a trigger.
        let trig = regs[0].trigger_events(&g);
        assert_eq!(trig, vec![Event::rise(SignalId(0))]);
    }

    #[test]
    fn empty_event_has_no_regions() {
        let g = fork_join();
        // Signal d never has a second rise instance: events that never
        // occur yield no regions.
        let regs = regions_of(&g, Event::rise(SignalId(0)));
        // a+ does occur; pick a phantom signal id instead:
        assert!(!regs.is_empty());
        let none = regions_of(&g, Event { signal: SignalId(3), rising: true });
        // d+ occurs too — so build a graph-less check: use the falling
        // event of an input that only rises... All events here occur, so
        // just assert the API handles the "enabled nowhere" case via a
        // quick custom graph.
        let mut bd = StateGraphBuilder::new(
            "still",
            vec![Signal::new("z", SignalKind::Output), Signal::new("w", SignalKind::Output)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        bd.add_arc(s0, Event::rise(SignalId(0)), s1);
        bd.add_arc(s1, Event::fall(SignalId(0)), s0);
        let g2 = bd.build(s0).unwrap();
        assert!(regions_of(&g2, Event::rise(SignalId(1))).is_empty());
        let _ = none;
    }

    #[test]
    fn separated_regions_get_distinct_indices() {
        // a toggles twice per cycle of b: a+ b+ a- a+ b- a-  (two ERs of a+).
        let mut bd = StateGraphBuilder::new(
            "two-er",
            vec![Signal::new("a", SignalKind::Output), Signal::new("b", SignalKind::Input)],
        )
        .unwrap();
        let s0 = bd.add_state(0b00);
        let s1 = bd.add_state(0b01);
        let s2 = bd.add_state(0b11);
        let s3 = bd.add_state(0b10);
        let s4 = bd.add_state(0b11);
        let s5 = bd.add_state(0b01);
        // Wait: reuse codes; that's fine (CSC may fail but regions work).
        let (a, b) = (SignalId(0), SignalId(1));
        bd.add_arc(s0, Event::rise(a), s1);
        bd.add_arc(s1, Event::rise(b), s2);
        bd.add_arc(s2, Event::fall(a), s3);
        bd.add_arc(s3, Event::rise(a), s4);
        bd.add_arc(s4, Event::fall(b), s5);
        bd.add_arc(s5, Event::fall(a), s0);
        let g = bd.build(s0).unwrap();
        let regs = regions_of(&g, Event::rise(a));
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].er.count(), 1);
        assert_eq!(regs[1].er.count(), 1);
        // Restricted QRs of the two a+ regions must be disjoint.
        assert!(!regs[0].qr.intersects(&regs[1].qr));
    }
}
