//! The State Graph (SG) model of §2.1.

use crate::signal::{Event, Signal, SignalId, SignalKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a state within a [`StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

/// A labeled directed graph whose nodes are states (each labeled with a
/// binary signal vector) and whose arcs are labeled with signal
/// transitions.
///
/// Codes assign bit `i` to signal `i`; up to 64 signals are supported.
#[derive(Debug, Clone)]
pub struct StateGraph {
    signals: Vec<Signal>,
    codes: Vec<u64>,
    succ: Vec<Vec<(Event, StateId)>>,
    pred: Vec<Vec<(Event, StateId)>>,
    initial: StateId,
    name: String,
}

/// Errors produced when building a state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSgError {
    /// More than 64 signals.
    TooManySignals(usize),
    /// A duplicate signal name.
    DuplicateSignal(String),
    /// The graph has no states.
    Empty,
}

impl fmt::Display for BuildSgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSgError::TooManySignals(n) => write!(f, "too many signals: {n} (max 64)"),
            BuildSgError::DuplicateSignal(s) => write!(f, "duplicate signal name `{s}`"),
            BuildSgError::Empty => write!(f, "state graph has no states"),
        }
    }
}

impl std::error::Error for BuildSgError {}

/// Incremental builder for [`StateGraph`].
#[derive(Debug, Clone)]
pub struct StateGraphBuilder {
    signals: Vec<Signal>,
    codes: Vec<u64>,
    arcs: Vec<(StateId, Event, StateId)>,
    by_code: HashMap<u64, Vec<StateId>>,
    name: String,
}

impl StateGraphBuilder {
    /// Starts a builder with the given signal declarations.
    ///
    /// # Errors
    /// Fails if there are more than 64 signals or duplicate names.
    pub fn new(name: impl Into<String>, signals: Vec<Signal>) -> Result<Self, BuildSgError> {
        if signals.len() > 64 {
            return Err(BuildSgError::TooManySignals(signals.len()));
        }
        let mut seen = std::collections::HashSet::new();
        for s in &signals {
            if !seen.insert(s.name.clone()) {
                return Err(BuildSgError::DuplicateSignal(s.name.clone()));
            }
        }
        Ok(StateGraphBuilder {
            signals,
            codes: Vec::new(),
            arcs: Vec::new(),
            by_code: HashMap::new(),
            name: name.into(),
        })
    }

    /// Adds a state labeled with `code`; states with equal codes are
    /// distinct nodes (needed before CSC holds).
    pub fn add_state(&mut self, code: u64) -> StateId {
        let id = StateId(self.codes.len());
        self.codes.push(code);
        self.by_code.entry(code).or_default().push(id);
        id
    }

    /// Returns an existing state with this code or adds one. Only sensible
    /// for graphs known to satisfy unique state coding per marking.
    pub fn state_for_code(&mut self, code: u64) -> StateId {
        if let Some(ids) = self.by_code.get(&code) {
            if let Some(&id) = ids.first() {
                return id;
            }
        }
        self.add_state(code)
    }

    /// Adds an arc `src --event--> dst`.
    pub fn add_arc(&mut self, src: StateId, event: Event, dst: StateId) {
        self.arcs.push((src, event, dst));
    }

    /// Finishes the graph with `initial` as initial state.
    ///
    /// # Errors
    /// Fails if no state was added.
    pub fn build(self, initial: StateId) -> Result<StateGraph, BuildSgError> {
        if self.codes.is_empty() {
            return Err(BuildSgError::Empty);
        }
        let n = self.codes.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (src, ev, dst) in self.arcs {
            succ[src.0].push((ev, dst));
            pred[dst.0].push((ev, src));
        }
        for list in succ.iter_mut().chain(pred.iter_mut()) {
            list.sort();
            list.dedup();
        }
        Ok(StateGraph {
            signals: self.signals,
            codes: self.codes,
            succ,
            pred,
            initial,
            name: self.name,
        })
    }
}

impl StateGraph {
    /// Name of the specification.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared signals.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.codes.len()
    }

    /// All state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.codes.len()).map(StateId)
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The binary code labeling a state.
    pub fn code(&self, s: StateId) -> u64 {
        self.codes[s.0]
    }

    /// Value of `signal` in state `s`.
    pub fn value(&self, s: StateId, signal: SignalId) -> bool {
        self.codes[s.0] >> signal.0 & 1 == 1
    }

    /// Outgoing arcs of `s`.
    pub fn succ(&self, s: StateId) -> &[(Event, StateId)] {
        &self.succ[s.0]
    }

    /// Incoming arcs of `s`.
    pub fn pred(&self, s: StateId) -> &[(Event, StateId)] {
        &self.pred[s.0]
    }

    /// Whether `event` is enabled (has an outgoing arc) at `s`.
    pub fn enabled(&self, s: StateId, event: Event) -> bool {
        self.succ[s.0].iter().any(|&(e, _)| e == event)
    }

    /// The target of `event` from `s`, if enabled (deterministic graphs
    /// have at most one).
    pub fn fire(&self, s: StateId, event: Event) -> Option<StateId> {
        self.succ[s.0].iter().find(|&&(e, _)| e == event).map(|&(_, t)| t)
    }

    /// Whether signal `a` is *excited* at `s` (some transition of `a` is
    /// enabled).
    pub fn excited(&self, s: StateId, signal: SignalId) -> bool {
        self.succ[s.0].iter().any(|&(e, _)| e.signal == signal)
    }

    /// Whether signal `a` is *stable* at `s` (not excited).
    pub fn stable(&self, s: StateId, signal: SignalId) -> bool {
        !self.excited(s, signal)
    }

    /// Events enabled at `s`.
    pub fn enabled_events(&self, s: StateId) -> Vec<Event> {
        let mut evs: Vec<Event> = self.succ[s.0].iter().map(|&(e, _)| e).collect();
        evs.sort();
        evs.dedup();
        evs
    }

    /// Output/internal events enabled at `s` (used by the CSC check).
    pub fn enabled_non_input_events(&self, s: StateId) -> Vec<Event> {
        self.enabled_events(s)
            .into_iter()
            .filter(|e| self.signals[e.signal.0].kind.is_implementable())
            .collect()
    }

    /// Looks a signal up by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals.iter().position(|s| s.name == name).map(SignalId)
    }

    /// The ids of all signals of a given kind.
    pub fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| SignalId(i))
            .collect()
    }

    /// All signals the circuit must implement (outputs + internals).
    pub fn implementable_signals(&self) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind.is_implementable())
            .map(|(i, _)| SignalId(i))
            .collect()
    }

    /// Collects the distinct codes of all states (the reachable universe
    /// for two-level minimization).
    pub fn reachable_codes(&self) -> Vec<u64> {
        let mut codes = self.codes.clone();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// States whose code satisfies `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(u64) -> bool) -> Vec<StateId> {
        self.states().filter(|&s| pred(self.code(s))).collect()
    }

    /// Renders an event with its signal name (`req+`).
    pub fn event_name(&self, e: Event) -> String {
        e.display_with(|s| self.signals[s.0].name.clone())
    }

    /// Renders a state as `name:code` with the code shown
    /// most-significant-signal first.
    pub fn state_label(&self, s: StateId) -> String {
        let code = self.code(s);
        let bits: String = (0..self.signal_count())
            .rev()
            .map(|i| if code >> i & 1 == 1 { '1' } else { '0' })
            .collect();
        format!("{}({})", s.0, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> StateGraph {
        // Two signals a (input), b (output); cycle a+ b+ a- b-.
        let mut b = StateGraphBuilder::new(
            "toy",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s00 = b.add_state(0b00);
        let s01 = b.add_state(0b01);
        let s11 = b.add_state(0b11);
        let s10 = b.add_state(0b10);
        let a = SignalId(0);
        let bb = SignalId(1);
        b.add_arc(s00, Event::rise(a), s01);
        b.add_arc(s01, Event::rise(bb), s11);
        b.add_arc(s11, Event::fall(a), s10);
        b.add_arc(s10, Event::fall(bb), s00);
        b.build(s00).unwrap()
    }

    #[test]
    fn basic_structure() {
        let g = toy();
        assert_eq!(g.state_count(), 4);
        assert_eq!(g.signal_count(), 2);
        assert_eq!(g.initial(), StateId(0));
        assert!(g.enabled(StateId(0), Event::rise(SignalId(0))));
        assert_eq!(g.fire(StateId(0), Event::rise(SignalId(0))), Some(StateId(1)));
        assert!(g.excited(StateId(1), SignalId(1)));
        assert!(g.stable(StateId(0), SignalId(1)));
    }

    #[test]
    fn signal_lookup_and_kinds() {
        let g = toy();
        assert_eq!(g.signal_by_name("b"), Some(SignalId(1)));
        assert_eq!(g.signal_by_name("zzz"), None);
        assert_eq!(g.implementable_signals(), vec![SignalId(1)]);
        assert_eq!(g.signals_of_kind(SignalKind::Input), vec![SignalId(0)]);
    }

    #[test]
    fn codes_and_values() {
        let g = toy();
        // state 1 has code 0b01: a=1, b=0.
        assert!(g.value(StateId(1), SignalId(0)));
        assert!(!g.value(StateId(1), SignalId(1)));
        assert_eq!(g.reachable_codes(), vec![0, 1, 2, 3]);
        assert_eq!(g.states_where(|c| c & 1 == 1).len(), 2);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            StateGraphBuilder::new(
                "dup",
                vec![Signal::new("x", SignalKind::Input), Signal::new("x", SignalKind::Output)]
            ),
            Err(BuildSgError::DuplicateSignal(_))
        ));
        let b = StateGraphBuilder::new("empty", vec![]).unwrap();
        assert!(matches!(b.build(StateId(0)), Err(BuildSgError::Empty)));
    }

    #[test]
    fn event_and_state_labels() {
        let g = toy();
        assert_eq!(g.event_name(Event::rise(SignalId(1))), "b+");
        assert_eq!(g.state_label(StateId(2)), "2(11)");
    }

    #[test]
    fn pred_mirrors_succ() {
        let g = toy();
        for s in g.states() {
            for &(e, t) in g.succ(s) {
                assert!(g.pred(t).contains(&(e, s)));
            }
        }
    }
}
