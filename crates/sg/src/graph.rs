//! The State Graph (SG) model of §2.1.

use crate::signal::{Event, Signal, SignalId, SignalKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a state within a [`StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

/// A labeled directed graph whose nodes are states (each labeled with a
/// binary signal vector) and whose arcs are labeled with signal
/// transitions.
///
/// Codes assign bit `i` to signal `i`; up to 64 signals are supported.
///
/// Arcs are stored in compressed sparse row form — one flat, sorted arc
/// array per direction plus per-state offsets — so bulk construction
/// (reachability produces tens of thousands of arcs) costs two sorts
/// instead of one heap allocation per state, and traversals scan
/// contiguous memory.
#[derive(Debug, Clone)]
pub struct StateGraph {
    signals: Vec<Signal>,
    codes: Vec<u64>,
    /// `succ_arcs[succ_off[s]..succ_off[s+1]]` are the outgoing arcs of
    /// state `s`, sorted and deduplicated.
    succ_off: Vec<usize>,
    succ_arcs: Vec<(Event, StateId)>,
    /// Incoming arcs, same layout keyed by target state.
    pred_off: Vec<usize>,
    pred_arcs: Vec<(Event, StateId)>,
    initial: StateId,
    name: String,
}

/// Errors produced when building a state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildSgError {
    /// More than 64 signals.
    TooManySignals(usize),
    /// A duplicate signal name.
    DuplicateSignal(String),
    /// The graph has no states.
    Empty,
    /// [`StateGraph::from_grouped_arcs`] was fed arcs not grouped by
    /// source state.
    UngroupedArcs,
}

impl fmt::Display for BuildSgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSgError::TooManySignals(n) => write!(f, "too many signals: {n} (max 64)"),
            BuildSgError::DuplicateSignal(s) => write!(f, "duplicate signal name `{s}`"),
            BuildSgError::Empty => write!(f, "state graph has no states"),
            BuildSgError::UngroupedArcs => {
                write!(f, "from_grouped_arcs requires arcs grouped by ascending source state")
            }
        }
    }
}

impl std::error::Error for BuildSgError {}

/// Incremental builder for [`StateGraph`].
///
/// The code→state index consulted by [`StateGraphBuilder::state_for_code`]
/// is built lazily on first use, so bulk construction paths that only call
/// [`StateGraphBuilder::add_state`] / [`StateGraphBuilder::add_states`] —
/// like the packed reachability engine, which already interns markings
/// itself — pay nothing for it.
#[derive(Debug, Clone)]
pub struct StateGraphBuilder {
    signals: Vec<Signal>,
    codes: Vec<u64>,
    arcs: Vec<(StateId, Event, StateId)>,
    by_code: Option<HashMap<u64, StateId>>,
    name: String,
}

impl StateGraphBuilder {
    /// Starts a builder with the given signal declarations.
    ///
    /// # Errors
    /// Fails if there are more than 64 signals or duplicate names.
    pub fn new(name: impl Into<String>, signals: Vec<Signal>) -> Result<Self, BuildSgError> {
        Self::with_capacity(name, signals, 0, 0)
    }

    /// Like [`StateGraphBuilder::new`], pre-reserving room for `states`
    /// states and `arcs` arcs (the bulk-construction entry point used when
    /// the caller — e.g. reachability — already knows both counts).
    ///
    /// # Errors
    /// Fails if there are more than 64 signals or duplicate names.
    pub fn with_capacity(
        name: impl Into<String>,
        signals: Vec<Signal>,
        states: usize,
        arcs: usize,
    ) -> Result<Self, BuildSgError> {
        validate_signals(&signals)?;
        Ok(StateGraphBuilder {
            signals,
            codes: Vec::with_capacity(states),
            arcs: Vec::with_capacity(arcs),
            by_code: None,
            name: name.into(),
        })
    }

    /// Adds a state labeled with `code`; states with equal codes are
    /// distinct nodes (needed before CSC holds).
    pub fn add_state(&mut self, code: u64) -> StateId {
        let id = StateId(self.codes.len());
        self.codes.push(code);
        if let Some(by_code) = &mut self.by_code {
            by_code.entry(code).or_insert(id);
        }
        id
    }

    /// Bulk-appends states labeled with `codes`, in order.
    pub fn add_states(&mut self, codes: impl IntoIterator<Item = u64>) {
        for code in codes {
            self.add_state(code);
        }
    }

    /// Returns an existing state with this code or adds one. Only sensible
    /// for graphs known to satisfy unique state coding per marking.
    pub fn state_for_code(&mut self, code: u64) -> StateId {
        let by_code = self.by_code.get_or_insert_with(|| {
            let mut map = HashMap::with_capacity(self.codes.len());
            for (i, &c) in self.codes.iter().enumerate() {
                map.entry(c).or_insert(StateId(i));
            }
            map
        });
        if let Some(&id) = by_code.get(&code) {
            return id;
        }
        let id = StateId(self.codes.len());
        self.codes.push(code);
        by_code.insert(code, id);
        id
    }

    /// Adds an arc `src --event--> dst`.
    pub fn add_arc(&mut self, src: StateId, event: Event, dst: StateId) {
        self.arcs.push((src, event, dst));
    }

    /// Finishes the graph with `initial` as initial state.
    ///
    /// # Errors
    /// Fails if no state was added.
    pub fn build(self, initial: StateId) -> Result<StateGraph, BuildSgError> {
        if self.codes.is_empty() {
            return Err(BuildSgError::Empty);
        }
        let n = self.codes.len();
        let (succ_off, succ_arcs) = csr(n, &self.arcs, |&(src, ev, dst)| (src.0, (ev, dst)));
        let (pred_off, pred_arcs) = csr(n, &self.arcs, |&(src, ev, dst)| (dst.0, (ev, src)));
        Ok(StateGraph {
            signals: self.signals,
            codes: self.codes,
            succ_off,
            succ_arcs,
            pred_off,
            pred_arcs,
            initial,
            name: self.name,
        })
    }
}

/// Shared signal validation of the state-graph constructors.
fn validate_signals(signals: &[Signal]) -> Result<(), BuildSgError> {
    if signals.len() > 64 {
        return Err(BuildSgError::TooManySignals(signals.len()));
    }
    let mut seen = std::collections::HashSet::new();
    for s in signals {
        if !seen.insert(s.name.as_str()) {
            return Err(BuildSgError::DuplicateSignal(s.name.clone()));
        }
    }
    Ok(())
}

/// Sorts every CSR segment and — only when duplicates actually exist —
/// compacts them out in place (`write` never overtakes the read index,
/// so the overwriting is safe). Duplicate-free input, the common case,
/// costs the sorts alone. `visit` sees every segment right after its
/// sort, while it is cache-hot (the pred builder counts degrees there).
fn sort_and_compact(
    n: usize,
    off: Vec<usize>,
    mut flat: Vec<(Event, StateId)>,
    mut visit: impl FnMut(&[(Event, StateId)]),
) -> (Vec<usize>, Vec<(Event, StateId)>) {
    let mut has_dup = false;
    for s in 0..n {
        let seg = &mut flat[off[s]..off[s + 1]];
        if seg.len() > 1 {
            seg.sort_unstable();
            has_dup |= seg.windows(2).any(|w| w[0] == w[1]);
        }
        visit(seg);
    }
    if !has_dup {
        return (off, flat);
    }
    let mut out_off = vec![0usize; n + 1];
    let mut write = 0usize;
    for s in 0..n {
        out_off[s] = write;
        let mut prev = None;
        for i in off[s]..off[s + 1] {
            let arc = flat[i];
            if prev != Some(arc) {
                flat[write] = arc;
                write += 1;
                prev = Some(arc);
            }
        }
    }
    out_off[n] = write;
    flat.truncate(write);
    (out_off, flat)
}

/// Builds one compressed-sparse-row direction by counting sort: count
/// per-key degrees, prefix-sum into offsets, scatter, then sort and
/// deduplicate each (small) segment in place. Linear in the arc count
/// plus the per-segment sorts — no global comparison sort, no per-state
/// allocation.
fn csr(
    n: usize,
    arcs: &[(StateId, Event, StateId)],
    key: impl Fn(&(StateId, Event, StateId)) -> (usize, (Event, StateId)),
) -> (Vec<usize>, Vec<(Event, StateId)>) {
    let mut off = vec![0usize; n + 1];
    if arcs.is_empty() {
        return (off, Vec::new());
    }
    for arc in arcs {
        off[key(arc).0 + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut flat = vec![key(&arcs[0]).1; arcs.len()];
    let mut cursor = off.clone();
    for arc in arcs {
        let (k, v) = key(arc);
        flat[cursor[k]] = v;
        cursor[k] += 1;
    }
    sort_and_compact(n, off, flat, |_| ())
}

impl StateGraph {
    /// Bulk constructor for exploration front-ends: builds the graph
    /// directly from per-state codes and an arc stream **grouped by
    /// ascending source state** (the natural output order of a BFS), with
    /// no intermediate arc buffer. Produces exactly the graph the
    /// equivalent [`StateGraphBuilder`] sequence would — arcs sorted and
    /// deduplicated per state — at a fraction of the allocation traffic.
    ///
    /// # Errors
    /// The [`StateGraphBuilder::new`] validations, plus
    /// [`BuildSgError::UngroupedArcs`] when the stream violates the
    /// grouping precondition.
    pub fn from_grouped_arcs(
        name: impl Into<String>,
        signals: Vec<Signal>,
        codes: Vec<u64>,
        initial: StateId,
        arcs: impl IntoIterator<Item = (StateId, Event, StateId)>,
    ) -> Result<StateGraph, BuildSgError> {
        let arcs = arcs.into_iter();
        let n = codes.len();
        let mut succ_off = vec![0usize; n + 1];
        let mut flat: Vec<(Event, StateId)> = Vec::with_capacity(arcs.size_hint().0);
        let mut last_src = 0usize;
        let mut unsorted = false;
        flat.extend(arcs.map(|(src, ev, dst)| {
            unsorted |= src.0 < last_src;
            last_src = src.0;
            succ_off[src.0 + 1] += 1;
            (ev, dst)
        }));
        if unsorted {
            return Err(BuildSgError::UngroupedArcs);
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        Self::from_csr_parts(name, signals, codes, initial, succ_off, flat)
    }

    /// The rawest bulk constructor: per-state codes plus ready-made
    /// successor CSR parts (`succ_off[s]..succ_off[s+1]` indexing `arcs`;
    /// per-state arc order arbitrary). Sorts and deduplicates each
    /// segment and derives the predecessor direction, producing exactly
    /// the graph the equivalent [`StateGraphBuilder`] sequence would.
    ///
    /// # Errors
    /// The [`StateGraphBuilder::new`] validations, plus
    /// [`BuildSgError::UngroupedArcs`] when `succ_off` is not a monotone
    /// cover of `arcs` (wrong length, decreasing, or not ending at
    /// `arcs.len()`).
    pub fn from_csr_parts(
        name: impl Into<String>,
        signals: Vec<Signal>,
        codes: Vec<u64>,
        initial: StateId,
        succ_off: Vec<usize>,
        arcs: Vec<(Event, StateId)>,
    ) -> Result<StateGraph, BuildSgError> {
        validate_signals(&signals)?;
        if codes.is_empty() {
            return Err(BuildSgError::Empty);
        }
        let n = codes.len();
        if succ_off.len() != n + 1
            || succ_off[0] != 0
            || succ_off[n] != arcs.len()
            || succ_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(BuildSgError::UngroupedArcs);
        }
        // The successor sort pass doubles as the predecessor degree
        // count (each segment is cache-hot right after its sort).
        let before = arcs.len();
        let mut pred_off = vec![0usize; n + 1];
        let (succ_off, succ_arcs) = sort_and_compact(n, succ_off, arcs, |seg| {
            for &(_, dst) in seg {
                pred_off[dst.0 + 1] += 1;
            }
        });
        if succ_arcs.len() != before {
            // Duplicates were compacted away after the count: redo it.
            pred_off.iter_mut().for_each(|c| *c = 0);
            for &(_, dst) in &succ_arcs {
                pred_off[dst.0 + 1] += 1;
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut pred_flat = vec![(Event::rise(SignalId(0)), StateId(0)); succ_arcs.len()];
        let mut cursor = pred_off.clone();
        for s in 0..n {
            for &(ev, dst) in &succ_arcs[succ_off[s]..succ_off[s + 1]] {
                pred_flat[cursor[dst.0]] = (ev, StateId(s));
                cursor[dst.0] += 1;
            }
        }
        let (pred_off, pred_arcs) = sort_and_compact(n, pred_off, pred_flat, |_| ());

        Ok(StateGraph {
            signals,
            codes,
            succ_off,
            succ_arcs,
            pred_off,
            pred_arcs,
            initial,
            name: name.into(),
        })
    }
    /// Name of the specification.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared signals.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.codes.len()
    }

    /// All state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.codes.len()).map(StateId)
    }

    /// Number of (deduplicated) arcs.
    pub fn arc_count(&self) -> usize {
        self.succ_arcs.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The binary code labeling a state.
    pub fn code(&self, s: StateId) -> u64 {
        self.codes[s.0]
    }

    /// Value of `signal` in state `s`.
    pub fn value(&self, s: StateId, signal: SignalId) -> bool {
        self.codes[s.0] >> signal.0 & 1 == 1
    }

    /// Outgoing arcs of `s`.
    pub fn succ(&self, s: StateId) -> &[(Event, StateId)] {
        &self.succ_arcs[self.succ_off[s.0]..self.succ_off[s.0 + 1]]
    }

    /// Incoming arcs of `s`.
    pub fn pred(&self, s: StateId) -> &[(Event, StateId)] {
        &self.pred_arcs[self.pred_off[s.0]..self.pred_off[s.0 + 1]]
    }

    /// Whether `event` is enabled (has an outgoing arc) at `s`.
    pub fn enabled(&self, s: StateId, event: Event) -> bool {
        self.succ(s).iter().any(|&(e, _)| e == event)
    }

    /// The target of `event` from `s`, if enabled (deterministic graphs
    /// have at most one).
    pub fn fire(&self, s: StateId, event: Event) -> Option<StateId> {
        self.succ(s).iter().find(|&&(e, _)| e == event).map(|&(_, t)| t)
    }

    /// Whether signal `a` is *excited* at `s` (some transition of `a` is
    /// enabled).
    pub fn excited(&self, s: StateId, signal: SignalId) -> bool {
        self.succ(s).iter().any(|&(e, _)| e.signal == signal)
    }

    /// Whether signal `a` is *stable* at `s` (not excited).
    pub fn stable(&self, s: StateId, signal: SignalId) -> bool {
        !self.excited(s, signal)
    }

    /// Events enabled at `s`.
    pub fn enabled_events(&self, s: StateId) -> Vec<Event> {
        let mut evs: Vec<Event> = self.succ(s).iter().map(|&(e, _)| e).collect();
        evs.sort();
        evs.dedup();
        evs
    }

    /// Output/internal events enabled at `s` (used by the CSC check).
    pub fn enabled_non_input_events(&self, s: StateId) -> Vec<Event> {
        self.enabled_events(s)
            .into_iter()
            .filter(|e| self.signals[e.signal.0].kind.is_implementable())
            .collect()
    }

    /// Looks a signal up by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals.iter().position(|s| s.name == name).map(SignalId)
    }

    /// The ids of all signals of a given kind.
    pub fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == kind)
            .map(|(i, _)| SignalId(i))
            .collect()
    }

    /// All signals the circuit must implement (outputs + internals).
    pub fn implementable_signals(&self) -> Vec<SignalId> {
        self.signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind.is_implementable())
            .map(|(i, _)| SignalId(i))
            .collect()
    }

    /// Collects the distinct codes of all states (the reachable universe
    /// for two-level minimization).
    pub fn reachable_codes(&self) -> Vec<u64> {
        let mut codes = self.codes.clone();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// States whose code satisfies `pred`.
    pub fn states_where(&self, mut pred: impl FnMut(u64) -> bool) -> Vec<StateId> {
        self.states().filter(|&s| pred(self.code(s))).collect()
    }

    /// Renders an event with its signal name (`req+`).
    pub fn event_name(&self, e: Event) -> String {
        e.display_with(|s| self.signals[s.0].name.clone())
    }

    /// Renders a state as `name:code` with the code shown
    /// most-significant-signal first.
    pub fn state_label(&self, s: StateId) -> String {
        let code = self.code(s);
        let bits: String = (0..self.signal_count())
            .rev()
            .map(|i| if code >> i & 1 == 1 { '1' } else { '0' })
            .collect();
        format!("{}({})", s.0, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> StateGraph {
        // Two signals a (input), b (output); cycle a+ b+ a- b-.
        let mut b = StateGraphBuilder::new(
            "toy",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s00 = b.add_state(0b00);
        let s01 = b.add_state(0b01);
        let s11 = b.add_state(0b11);
        let s10 = b.add_state(0b10);
        let a = SignalId(0);
        let bb = SignalId(1);
        b.add_arc(s00, Event::rise(a), s01);
        b.add_arc(s01, Event::rise(bb), s11);
        b.add_arc(s11, Event::fall(a), s10);
        b.add_arc(s10, Event::fall(bb), s00);
        b.build(s00).unwrap()
    }

    #[test]
    fn basic_structure() {
        let g = toy();
        assert_eq!(g.state_count(), 4);
        assert_eq!(g.signal_count(), 2);
        assert_eq!(g.initial(), StateId(0));
        assert!(g.enabled(StateId(0), Event::rise(SignalId(0))));
        assert_eq!(g.fire(StateId(0), Event::rise(SignalId(0))), Some(StateId(1)));
        assert!(g.excited(StateId(1), SignalId(1)));
        assert!(g.stable(StateId(0), SignalId(1)));
    }

    #[test]
    fn signal_lookup_and_kinds() {
        let g = toy();
        assert_eq!(g.signal_by_name("b"), Some(SignalId(1)));
        assert_eq!(g.signal_by_name("zzz"), None);
        assert_eq!(g.implementable_signals(), vec![SignalId(1)]);
        assert_eq!(g.signals_of_kind(SignalKind::Input), vec![SignalId(0)]);
    }

    #[test]
    fn codes_and_values() {
        let g = toy();
        // state 1 has code 0b01: a=1, b=0.
        assert!(g.value(StateId(1), SignalId(0)));
        assert!(!g.value(StateId(1), SignalId(1)));
        assert_eq!(g.reachable_codes(), vec![0, 1, 2, 3]);
        assert_eq!(g.states_where(|c| c & 1 == 1).len(), 2);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            StateGraphBuilder::new(
                "dup",
                vec![Signal::new("x", SignalKind::Input), Signal::new("x", SignalKind::Output)]
            ),
            Err(BuildSgError::DuplicateSignal(_))
        ));
        let b = StateGraphBuilder::new("empty", vec![]).unwrap();
        assert!(matches!(b.build(StateId(0)), Err(BuildSgError::Empty)));
    }

    #[test]
    fn event_and_state_labels() {
        let g = toy();
        assert_eq!(g.event_name(Event::rise(SignalId(1))), "b+");
        assert_eq!(g.state_label(StateId(2)), "2(11)");
    }

    #[test]
    fn arc_count_counts_deduplicated_arcs() {
        let g = toy();
        assert_eq!(g.arc_count(), 4);
    }

    #[test]
    fn bulk_add_states_matches_incremental() {
        let mut b = StateGraphBuilder::with_capacity(
            "bulk",
            vec![Signal::new("a", SignalKind::Input)],
            3,
            2,
        )
        .unwrap();
        b.add_states([0b0, 0b1, 0b0]);
        b.add_arc(StateId(0), Event::rise(SignalId(0)), StateId(1));
        b.add_arc(StateId(1), Event::fall(SignalId(0)), StateId(2));
        let g = b.build(StateId(0)).unwrap();
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.code(StateId(2)), 0);
    }

    #[test]
    fn from_grouped_arcs_matches_builder() {
        let incremental = toy();
        let signals =
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)];
        let a = SignalId(0);
        let bb = SignalId(1);
        // Same graph, arcs grouped by source (per-source order arbitrary).
        let bulk = StateGraph::from_grouped_arcs(
            "toy",
            signals.clone(),
            vec![0b00, 0b01, 0b11, 0b10],
            StateId(0),
            [
                (StateId(0), Event::rise(a), StateId(1)),
                (StateId(1), Event::rise(bb), StateId(2)),
                (StateId(2), Event::fall(a), StateId(3)),
                (StateId(3), Event::fall(bb), StateId(0)),
            ],
        )
        .unwrap();
        assert_eq!(bulk.state_count(), incremental.state_count());
        assert_eq!(bulk.arc_count(), incremental.arc_count());
        for s in incremental.states() {
            assert_eq!(bulk.code(s), incremental.code(s));
            assert_eq!(bulk.succ(s), incremental.succ(s));
            assert_eq!(bulk.pred(s), incremental.pred(s));
        }

        // Arcs out of source order are rejected.
        let err = StateGraph::from_grouped_arcs(
            "bad",
            signals,
            vec![0b00, 0b01],
            StateId(0),
            [(StateId(1), Event::fall(a), StateId(0)), (StateId(0), Event::rise(a), StateId(1))],
        )
        .unwrap_err();
        assert_eq!(err, BuildSgError::UngroupedArcs);
    }

    #[test]
    fn state_for_code_sees_bulk_added_states() {
        // The lazy code index must cover states added before its first use
        // and stay consistent afterwards.
        let mut b =
            StateGraphBuilder::new("lazy", vec![Signal::new("a", SignalKind::Input)]).unwrap();
        let s0 = b.add_state(0b0);
        assert_eq!(b.state_for_code(0b0), s0, "existing state is found");
        let s1 = b.state_for_code(0b1);
        assert_eq!(b.state_for_code(0b1), s1, "new state is remembered");
        let s2 = b.add_state(0b10);
        assert_eq!(b.state_for_code(0b10), s2, "post-index additions are indexed too");
    }

    #[test]
    fn pred_mirrors_succ() {
        let g = toy();
        for s in g.states() {
            for &(e, t) in g.succ(s) {
                assert!(g.pred(t).contains(&(e, s)));
            }
        }
    }
}
