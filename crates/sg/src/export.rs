//! Graphviz (`dot`) export of state graphs, with optional region
//! highlighting — the format Fig. 1 of the paper is drawn in.

use crate::graph::{StateGraph, StateId};
use crate::regions::Region;
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Regions to highlight: ER states are filled, QR states outlined.
    pub highlight: Vec<Region>,
    /// Render codes most-significant-signal first inside each node.
    pub show_codes: bool,
}

/// Renders the state graph in Graphviz `dot` syntax.
pub fn to_dot(sg: &StateGraph, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sg.name());
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];");

    let er_of = |s: StateId| options.highlight.iter().find(|r| r.er.contains(s));
    let qr_of = |s: StateId| options.highlight.iter().find(|r| r.qr.contains(s));

    for s in sg.states() {
        let label = if options.show_codes { sg.state_label(s) } else { format!("{}", s.0) };
        let mut attrs = format!("label=\"{label}\"");
        if let Some(r) = er_of(s) {
            let _ = write!(
                attrs,
                ", style=filled, fillcolor=lightblue, tooltip=\"ER({})\"",
                sg.event_name(r.event)
            );
        } else if let Some(r) = qr_of(s) {
            let _ = write!(attrs, ", color=blue, tooltip=\"QR({})\"", sg.event_name(r.event));
        }
        if s == sg.initial() {
            attrs.push_str(", peripheries=2");
        }
        let _ = writeln!(out, "  s{} [{attrs}];", s.0);
    }
    for s in sg.states() {
        for &(e, t) in sg.succ(s) {
            let _ = writeln!(out, "  s{} -> s{} [label=\"{}\"];", s.0, t.0, sg.event_name(e));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StateGraphBuilder;
    use crate::regions::regions_of;
    use crate::signal::{Event, Signal, SignalId, SignalKind};

    fn toy() -> StateGraph {
        let mut b = StateGraphBuilder::new(
            "toy",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [b.add_state(0b00), b.add_state(0b01), b.add_state(0b11), b.add_state(0b10)];
        b.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        b.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        b.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        b.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn dot_has_all_nodes_and_edges() {
        let sg = toy();
        let dot = to_dot(&sg, &DotOptions { show_codes: true, ..Default::default() });
        assert!(dot.starts_with("digraph"));
        for s in 0..4 {
            assert!(dot.contains(&format!("s{s} [")), "missing node {s}");
        }
        assert_eq!(dot.matches(" -> ").count(), 4);
        assert!(dot.contains("label=\"a+\""));
        assert!(dot.contains("peripheries=2"), "initial state marked");
    }

    #[test]
    fn regions_are_highlighted() {
        let sg = toy();
        let regions = regions_of(&sg, Event::rise(SignalId(1)));
        let dot = to_dot(&sg, &DotOptions { highlight: regions, show_codes: false });
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("tooltip=\"ER(b+)\""));
    }
}
