//! Signals and signal transitions (events).

use std::fmt;

/// Index of a signal within a [`crate::StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub usize);

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Role of a signal in the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Driven by the environment; the circuit may never delay it.
    Input,
    /// Driven by the circuit and observed by the environment.
    Output,
    /// Driven by the circuit, invisible to the environment (e.g. signals
    /// inserted during decomposition or state encoding).
    Internal,
}

impl SignalKind {
    /// Whether the circuit must implement this signal.
    pub fn is_implementable(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

/// A named signal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signal {
    /// Human-readable name (e.g. `"req"`).
    pub name: String,
    /// Input/output/internal role.
    pub kind: SignalKind,
}

impl Signal {
    /// Creates a signal.
    pub fn new(name: impl Into<String>, kind: SignalKind) -> Self {
        Signal { name: name.into(), kind }
    }
}

/// A signal transition: `a+` (rising) or `a-` (falling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// The signal that toggles.
    pub signal: SignalId,
    /// `true` for `a+`, `false` for `a-`.
    pub rising: bool,
}

impl Event {
    /// Rising transition of `signal`.
    pub fn rise(signal: SignalId) -> Self {
        Event { signal, rising: true }
    }

    /// Falling transition of `signal`.
    pub fn fall(signal: SignalId) -> Self {
        Event { signal, rising: false }
    }

    /// The opposite transition of the same signal.
    pub fn complement(self) -> Self {
        Event { signal: self.signal, rising: !self.rising }
    }

    /// The signal value *after* this event fires.
    pub fn post_value(self) -> bool {
        self.rising
    }

    /// The signal value *before* this event fires.
    pub fn pre_value(self) -> bool {
        !self.rising
    }

    /// Renders the event using a name lookup, e.g. `req+`.
    pub fn display_with<F: Fn(SignalId) -> String>(self, name: F) -> String {
        format!("{}{}", name(self.signal), if self.rising { "+" } else { "-" })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.signal, if self.rising { "+" } else { "-" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_values() {
        let e = Event::rise(SignalId(3));
        assert!(e.post_value());
        assert!(!e.pre_value());
        assert_eq!(e.complement(), Event::fall(SignalId(3)));
        assert_eq!(e.complement().complement(), e);
    }

    #[test]
    fn kind_implementable() {
        assert!(!SignalKind::Input.is_implementable());
        assert!(SignalKind::Output.is_implementable());
        assert!(SignalKind::Internal.is_implementable());
    }

    #[test]
    fn display() {
        let e = Event::fall(SignalId(1));
        assert_eq!(format!("{e}"), "s1-");
        assert_eq!(e.display_with(|_| "ack".to_string()), "ack-");
    }
}
