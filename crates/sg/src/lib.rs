//! # simap-sg
//!
//! State Graph (SG) model for speed-independent circuit synthesis: states
//! labeled with binary signal vectors, arcs labeled with signal
//! transitions, the implementability property checks of the DATE'97 paper
//! (§2.1 — consistency, determinism, commutativity, output persistency,
//! Complete State Coding) and the region machinery of §2.2 (excitation,
//! switching and restricted quiescent regions, trigger events, state
//! diamonds).
//!
//! ```
//! use simap_sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};
//!
//! // The simplest handshake: a+ ; b+ ; a- ; b-.
//! let mut builder = StateGraphBuilder::new(
//!     "handshake",
//!     vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
//! )?;
//! let s00 = builder.add_state(0b00);
//! let s01 = builder.add_state(0b01);
//! let s11 = builder.add_state(0b11);
//! let s10 = builder.add_state(0b10);
//! builder.add_arc(s00, Event::rise(SignalId(0)), s01);
//! builder.add_arc(s01, Event::rise(SignalId(1)), s11);
//! builder.add_arc(s11, Event::fall(SignalId(0)), s10);
//! builder.add_arc(s10, Event::fall(SignalId(1)), s00);
//! let sg = builder.build(s00)?;
//! assert!(simap_sg::check_all(&sg).is_ok());
//! # Ok::<(), simap_sg::BuildSgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod graph;
pub mod properties;
pub mod regions;
pub mod signal;
pub mod stateset;

pub use export::{to_dot, DotOptions};
pub use graph::{BuildSgError, StateGraph, StateGraphBuilder, StateId};
pub use properties::{
    check_all, check_commutativity, check_consistency, check_csc, check_determinism,
    check_output_persistency, check_reachability, PropertyReport, PropertyViolation,
};
pub use regions::{connected_components, diamonds, regions_of, signal_regions, Diamond, Region};
pub use signal::{Event, Signal, SignalId, SignalKind};
pub use stateset::StateSet;
